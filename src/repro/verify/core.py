"""Rule registry, diagnostics and the engine that runs checks.

The verify framework turns the ad-hoc linter of the seed tree into a
pluggable static-analysis pass:

* a :class:`Rule` couples a stable code (``RV001``...), a human-readable
  slug, a default :class:`Severity` and a check callable;
* checks yield lightweight :class:`Finding` objects; the engine wraps
  them into :class:`Diagnostic` records, applying per-run
  :class:`VerifyConfig` policy (disable lists, severity overrides,
  subject suppressions);
* a :class:`Report` aggregates diagnostics for one or more targets and
  feeds the emitters in :mod:`repro.verify.emit`.

Rule codes are grouped by band:

======  =====================================================
band    meaning
======  =====================================================
RV0xx   generic netlist hygiene (migrated from the seed linter)
RV1xx   power-gating structure (VVDD islands, store paths...)
RV2xx   MNA structural solvability
RV3xx   SPICE-deck / text-level checks
RV4xx   the simulator's own Python source (AST checks)
RV5xx   interprocedural physical-units dataflow
RV6xx   campaign task purity (call-graph transitive)
RV7xx   hot-path performance inventory
RV8xx   array shape/dtype semantics (broadcast, demotion,
        copies, aliasing, batch-axis drift)
RV9xx   concurrency & crash safety of durable stores
        (atomic-write protocol, fsync ordering, spawn
        visibility, queue/join order, signal handlers)
======  =====================================================

RV0xx-RV4xx rules see one artifact at a time.  The RV5xx+ bands run at
``scope="project"``: their target is a
:class:`repro.verify.callgraph.ProjectModule` — one module *plus* the
whole-program symbol table, call graph and interprocedural facts.
"""

from __future__ import annotations

import enum
import fnmatch
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from ..errors import VerificationError


class Severity(enum.Enum):
    """Diagnostic severity levels, ordered most severe first."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Sort key: 0 for errors, increasing for milder severities."""
        return ("error", "warning", "info").index(self.value)

    @classmethod
    def parse(cls, value: "str | Severity") -> "Severity":
        """Coerce a string (``"error"``) or instance into a Severity."""
        if isinstance(value, Severity):
            return value
        return cls(str(value).lower())


@dataclass(frozen=True)
class SourceLocation:
    """Position of a finding inside a source deck (1-based line)."""

    line: int
    text: str = ""


@dataclass(frozen=True)
class Finding:
    """Raw output of a rule check, before policy is applied.

    Checks yield these; the engine attaches the rule code/name and the
    configured severity to produce a :class:`Diagnostic`.
    """

    subject: str
    message: str
    location: Optional[SourceLocation] = None
    #: Optional per-finding severity override (rare; most rules have a
    #: single natural severity declared on the rule itself).
    severity: Optional[Severity] = None


@dataclass(frozen=True)
class Diagnostic:
    """One fully-resolved static-analysis finding."""

    code: str               # stable rule code, e.g. "RV101"
    name: str               # rule slug, e.g. "islanded-node"
    severity: Severity
    message: str
    subject: str            # node or element name the finding anchors to
    target: str = ""        # what was analysed (deck path, bench name...)
    location: Optional[SourceLocation] = None

    def __str__(self) -> str:
        where = f":{self.location.line}" if self.location else ""
        prefix = f"{self.target}{where}: " if self.target else ""
        return (f"{prefix}[{self.severity.value}] {self.code} "
                f"{self.name}: {self.message}")

    def sort_key(self) -> Tuple:
        """Errors first, then by code and subject (stable output order)."""
        return (self.severity.rank, self.code, self.subject, self.message)


@dataclass(frozen=True)
class Rule:
    """A registered static-analysis rule.

    Attributes
    ----------
    code:
        Stable identifier (``RVnnn``); never reused once published.
    name:
        Kebab-case slug used in human output and suppression patterns.
    scope:
        ``"circuit"`` (checks a compiled :class:`repro.circuit.Circuit`),
        ``"deck"`` (checks a tokenised SPICE deck source),
        ``"source"`` (checks a parsed Python module of the simulator
        itself) or ``"project"`` (checks one module against the
        assembled whole-program call graph and facts — see
        :mod:`repro.verify.callgraph`).
    severity:
        Default severity of findings from this rule.
    description:
        One-line summary (used by ``--list-rules`` and SARIF).
    rationale:
        Why the finding matters for this project's simulations.
    check:
        Callable ``check(target) -> Iterable[Finding]``.
    """

    code: str
    name: str
    scope: str
    severity: Severity
    description: str
    check: Callable[..., Iterable[Finding]]
    rationale: str = ""


class RuleRegistry:
    """Ordered collection of rules, addressable by code or name."""

    def __init__(self) -> None:
        self._rules: Dict[str, Rule] = {}

    def register(self, rule: Rule) -> Rule:
        """Add ``rule``; codes and names must be unique."""
        if rule.code in self._rules:
            raise ValueError(f"duplicate rule code: {rule.code}")
        if any(r.name == rule.name for r in self._rules.values()):
            raise ValueError(f"duplicate rule name: {rule.name}")
        self._rules[rule.code] = rule
        return rule

    def get(self, code_or_name: str) -> Rule:
        """Look a rule up by its code or its slug."""
        rule = self._rules.get(code_or_name.upper())
        if rule is not None:
            return rule
        for r in self._rules.values():
            if r.name == code_or_name.lower():
                return r
        raise KeyError(f"no such rule: {code_or_name}")

    def rules(self, scope: Optional[str] = None) -> List[Rule]:
        """All rules (optionally restricted to one scope), in code order."""
        out = [r for r in self._rules.values()
               if scope is None or r.scope == scope]
        return sorted(out, key=lambda r: r.code)

    def __contains__(self, code: str) -> bool:
        return code in self._rules

    def __len__(self) -> int:
        return len(self._rules)


#: The process-wide registry that the ``rules_*`` modules populate.
REGISTRY = RuleRegistry()


def rule(code: str, name: str, scope: str, severity: "str | Severity",
         description: str, rationale: str = "",
         registry: RuleRegistry = REGISTRY):
    """Decorator registering a check function as a :class:`Rule`.

    >>> @rule("RV999", "example", "circuit", "warning", "demo rule")
    ... def check_example(circuit):
    ...     yield from ()
    """
    def decorate(fn: Callable[..., Iterable[Finding]]):
        registry.register(Rule(
            code=code, name=name, scope=scope,
            severity=Severity.parse(severity),
            description=description, rationale=rationale, check=fn,
        ))
        return fn
    return decorate


@dataclass(frozen=True)
class VerifyConfig:
    """Per-run policy: which rules run and how severe their findings are.

    Attributes
    ----------
    disable:
        Rule codes or names to skip entirely.
    only:
        If non-empty, run *only* these rules (codes or names).
    severity_overrides:
        Mapping of rule code/name to a replacement severity.
    suppress:
        ``"CODE:glob"`` patterns; matching findings are dropped.  The
        glob is tried against the finding's subject and against its
        target (e.g. ``"RV001:tb.*"`` silences floating-node findings
        on testbench scaffolding nodes; ``"RV404:src/repro/legacy/*"``
        silences a source rule for one subtree).
    """

    disable: frozenset = frozenset()
    only: frozenset = frozenset()
    severity_overrides: Mapping[str, Severity] = field(default_factory=dict)
    suppress: Tuple[str, ...] = ()

    @classmethod
    def from_env(cls) -> "VerifyConfig":
        """Build a config from ``REPRO_LINT_DISABLE`` (comma-separated)."""
        raw = os.environ.get("REPRO_LINT_DISABLE", "")
        disabled = frozenset(
            t.strip() for t in raw.split(",") if t.strip()
        )
        return cls(disable=disabled)

    def _matches(self, rule_: Rule, tokens: Iterable[str]) -> bool:
        wanted = {t.upper() for t in tokens} | {t.lower() for t in tokens}
        return rule_.code in wanted or rule_.name in wanted

    def rule_enabled(self, rule_: Rule) -> bool:
        """True if policy allows ``rule_`` to run."""
        if self.only and not self._matches(rule_, self.only):
            return False
        return not self._matches(rule_, self.disable)

    def severity_for(self, rule_: Rule,
                     finding: Finding) -> Severity:
        """Severity of ``finding``, after per-rule overrides."""
        for key, sev in self.severity_overrides.items():
            if key.upper() == rule_.code or key.lower() == rule_.name:
                return Severity.parse(sev)
        return finding.severity or rule_.severity

    def suppressed(self, diag: Diagnostic) -> bool:
        """True if a ``CODE:glob`` suppression matches ``diag``.

        The glob is matched against the finding's subject and its
        target, so one syntax covers netlist-node suppressions and
        per-path source-lint suppressions.
        """
        for pattern in self.suppress:
            code, _, glob = pattern.partition(":")
            if code.upper() not in (diag.code, diag.name.upper()):
                continue
            if (not glob or fnmatch.fnmatch(diag.subject, glob)
                    or (diag.target and fnmatch.fnmatch(diag.target, glob))):
                return True
        return False

    def digest(self) -> str:
        """Stable content hash of the policy, for lint-cache keying.

        Two configs with the same digest produce the same diagnostics
        for the same input, so cached results keyed on it are safe to
        reuse across runs (and are invalidated the moment a disable
        list, severity override or suppression changes).
        """
        import hashlib
        import json
        blob = json.dumps({
            "disable": sorted(self.disable),
            "only": sorted(self.only),
            "severity": {k: v.value for k, v
                         in sorted(self.severity_overrides.items())},
            "suppress": list(self.suppress),
        }, sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()[:16]

    def merge(self, other: "VerifyConfig") -> "VerifyConfig":
        """Layer ``other`` on top of this config (additive).

        Disable/only/suppress sets union; ``other``'s severity
        overrides win on conflict.  Used to stack pyproject policy,
        environment, and command-line flags.
        """
        overrides = dict(self.severity_overrides)
        overrides.update(other.severity_overrides)
        return VerifyConfig(
            disable=frozenset(self.disable) | frozenset(other.disable),
            only=frozenset(self.only) | frozenset(other.only),
            severity_overrides=overrides,
            suppress=tuple(dict.fromkeys(self.suppress + other.suppress)),
        )


@dataclass
class Report:
    """Aggregated diagnostics for one analysis run."""

    target: str = ""
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def extend(self, other: "Report") -> "Report":
        """Fold another report's diagnostics into this one."""
        self.diagnostics.extend(other.diagnostics)
        self.diagnostics.sort(key=Diagnostic.sort_key)
        return self

    def errors(self) -> List[Diagnostic]:
        """Error-severity diagnostics only."""
        return [d for d in self.diagnostics
                if d.severity is Severity.ERROR]

    def warnings(self) -> List[Diagnostic]:
        """Warning-severity diagnostics only."""
        return [d for d in self.diagnostics
                if d.severity is Severity.WARNING]

    @property
    def has_errors(self) -> bool:
        """True if any diagnostic is error-severity."""
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def counts(self) -> Dict[str, int]:
        """``{"error": n, "warning": n, "info": n}`` totals."""
        out = {s.value: 0 for s in Severity}
        for d in self.diagnostics:
            out[d.severity.value] += 1
        return out

    def raise_on_errors(self) -> None:
        """Raise :class:`~repro.errors.VerificationError` on any error."""
        errors = self.errors()
        if errors:
            raise VerificationError(
                f"static analysis of {self.target or 'netlist'} found "
                f"{len(errors)} error(s):\n"
                + "\n".join(f"  {d}" for d in errors),
                diagnostics=errors,
            )

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)


def run_rules(target_obj, scope: str, target_name: str = "",
              config: Optional[VerifyConfig] = None,
              registry: RuleRegistry = REGISTRY) -> Report:
    """Run every enabled rule of ``scope`` against ``target_obj``.

    Rules are independent: one rule crashing is a bug, not a lint
    finding, so exceptions propagate (keeping checks honest under test).
    """
    config = config or VerifyConfig()
    report = Report(target=target_name)
    for rule_ in registry.rules(scope):
        if not config.rule_enabled(rule_):
            continue
        for finding in rule_.check(target_obj):
            diag = Diagnostic(
                code=rule_.code,
                name=rule_.name,
                severity=config.severity_for(rule_, finding),
                message=finding.message,
                subject=finding.subject,
                target=target_name,
                location=finding.location,
            )
            if not config.suppressed(diag):
                report.diagnostics.append(diag)
    report.diagnostics.sort(key=Diagnostic.sort_key)
    return report
