"""Power-gating-aware structural rules (RV1xx).

These checks encode the paper's cell topologies: NVPG/NOF cells hang a
PS-FinFET + MTJ retention branch off each latch node, and every cell
sits behind a header power switch creating a virtual-VDD rail.  The
classic wiring mistakes each have a rule:

* **RV101 islanded-node** — a group of nodes with no DC conduction path
  to any rail: it floats in *every* mode, not just sleep.
* **RV102 orphan-mtj** — an MTJ that is not wired into any transistor
  store path: store currents can never be steered through it.
* **RV103 always-on-store-path** — an MTJ sitting directly on a latch
  storage node with no PS-FinFET in between: the store path loads the
  latch permanently, which defeats the NVPG separation (and burns
  store-class current during normal operation).
* **RV104 undriven-retention-gate** — a PS-FinFET whose gate is not a
  driven control line, so the store path can never be activated (or
  never deactivated).
* **RV105 pg-bypass** — an ungateable DC path from a power switch's
  supply rail into its gated domain: leakage flows around the switch,
  invalidating every shutdown-power and break-even-time figure.
"""

from __future__ import annotations

from typing import Iterator, List, Set

from ..circuit.netlist import Circuit
from ..circuit.passives import Capacitor
from ..devices.finfet import FinFET
from ..devices.mtj import MTJ
from .core import Finding, rule
from .topology import (
    GROUND,
    adjacency,
    canon,
    conduction_edges,
    finfets,
    hard_rail_nodes,
    mtjs,
    power_switches,
    reachable,
    storage_nodes,
)
from .rules_circuit import _compiles


@rule("RV101", "islanded-node", "circuit", "error",
      "A node group has no DC conduction path to any rail",
      "An island keeps no defined potential: during sleep or shutdown "
      "it drifts with leakage and gmin, and any 'energy' computed from "
      "it is noise.  Islands of one purely-capacitive node are left to "
      "RV002 (a deliberate dynamic node is only a warning).")
def check_islands(circuit: Circuit) -> Iterator[Finding]:
    """Group nodes into conduction components; flag rail-less ones."""
    if not _compiles(circuit):
        return
    rails = hard_rail_nodes(circuit)
    adj = adjacency(conduction_edges(circuit))
    nodes = [canon(n) for n in circuit.node_names()]
    seen: Set[str] = set()
    for start in nodes:
        if start in seen or start in rails:
            continue
        component = _component(start, adj)
        seen |= component
        if component & rails or GROUND in component:
            continue
        members = sorted(component)
        if len(members) == 1 and _only_capacitors(circuit, members[0]):
            continue   # RV002's case: a single dynamic node
        yield Finding(
            subject=members[0],
            message=("node" + ("s " if len(members) > 1 else " ")
                     + ", ".join(repr(m) for m in members)
                     + " have no DC path to any supply rail or ground; "
                       "the island floats in every operating mode"
                     if len(members) > 1 else
                     f"node {members[0]!r} has no DC path to any supply "
                     f"rail or ground; it floats in every operating mode"),
        )


def _component(start: str, adj) -> Set[str]:
    """Connected component of ``start`` in the conduction graph."""
    seen = {start}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        for edge in adj.get(node, ()):
            peer = edge.b if edge.a == node else edge.a
            if peer not in seen:
                seen.add(peer)
                frontier.append(peer)
    return seen


def _only_capacitors(circuit: Circuit, node: str) -> bool:
    """True when every element touching ``node`` is a capacitor."""
    touching = [e for e in circuit.elements()
                if node in (canon(n) for n in e.node_names)]
    return bool(touching) and all(isinstance(e, Capacitor)
                                  for e in touching)


@rule("RV102", "orphan-mtj", "circuit", "error",
      "An MTJ is not wired into any transistor store path",
      "The paper's store operation steers latch current through a "
      "PS-FinFET into the MTJ; an MTJ whose terminals never reach a "
      "FinFET channel can neither be written nor read back, so the cell "
      "silently loses nonvolatility.")
def check_orphan_mtjs(circuit: Circuit) -> Iterator[Finding]:
    """Flag MTJs dangling off the store path.

    The reach-a-FinFET-channel part only applies when the circuit has
    FinFETs at all: a transistor-less netlist is a device-level bench
    (MTJ driven straight by a source), not a mis-wired cell.
    """
    if not _compiles(circuit):
        return
    rails = hard_rail_nodes(circuit)
    adj = adjacency(conduction_edges(circuit))
    has_fets = bool(finfets(circuit))
    for mtj in mtjs(circuit):
        free, pinned = (canon(n) for n in mtj.node_names)
        dangling = [
            node for node in (free, pinned)
            if node != GROUND and node not in rails
            and not _has_noncap_neighbor(circuit, mtj, node)
        ]
        if dangling:
            yield Finding(
                subject=mtj.name,
                message=(f"MTJ {mtj.name} terminal node "
                         f"{dangling[0]!r} connects to nothing but "
                         "capacitors; the junction is orphaned"),
            )
            continue
        if has_fets and not _reaches_finfet_channel(mtj, (free, pinned),
                                                    adj, rails):
            yield Finding(
                subject=mtj.name,
                message=(f"MTJ {mtj.name} ({free!r} - {pinned!r}) has no "
                         "conduction path to any FinFET channel: no "
                         "PS-FinFET can steer store current through it"),
            )


def _has_noncap_neighbor(circuit: Circuit, mtj: MTJ, node: str) -> bool:
    """True if ``node`` touches an element besides ``mtj`` and caps."""
    for element in circuit.elements():
        if element is mtj or isinstance(element, Capacitor):
            continue
        if node in (canon(n) for n in element.node_names):
            return True
    return False


def _reaches_finfet_channel(mtj: MTJ, terminals, adj, rails) -> bool:
    """Does either MTJ terminal reach a FinFET channel terminal?

    The walk crosses resistors/switches but stops at rails and ground:
    a path to the latch through the testbench supply is not a store
    path.
    """
    for terminal in terminals:
        if terminal == GROUND or terminal in rails:
            # Rails host control lines (CTRL), not store paths; but a
            # FinFET channel directly on the terminal still counts.
            region = {terminal}
        else:
            region = reachable(terminal, adj, stop_at=set(rails),
                               skip_elements=(mtj,))
        for node in region:
            for edge in adj.get(node, ()):
                if edge.element is mtj:
                    continue
                if isinstance(edge.element, FinFET):
                    return True
    return False


@rule("RV103", "always-on-store-path", "circuit", "error",
      "An MTJ connects directly to a latch storage node",
      "Without a PS-FinFET separating them, the MTJ loads the bistable "
      "core in every mode: normal-operation SNM degrades and the "
      "store-energy bookkeeping of E_cyc no longer isolates the store "
      "phase — an always-on store path is exactly what NVPG's SR line "
      "exists to prevent.")
def check_always_on_store_path(circuit: Circuit) -> Iterator[Finding]:
    """Flag MTJs touching storage nodes without a PS-FinFET between."""
    if not _compiles(circuit):
        return
    latch_nodes = storage_nodes(circuit)
    for mtj in mtjs(circuit):
        for node in (canon(n) for n in mtj.node_names):
            if node in latch_nodes:
                yield Finding(
                    subject=mtj.name,
                    message=(f"MTJ {mtj.name} sits directly on storage "
                             f"node {node!r}; the store path bypasses "
                             "the PS-FinFET and is permanently on"),
                )


@rule("RV104", "undriven-retention-gate", "circuit", "warning",
      "A PS-FinFET gate is not a driven control line",
      "The SR line must switch the retention branch on for store/"
      "restore and off for normal operation; a gate left on a floating "
      "or cell-internal node cannot do either.")
def check_retention_gate(circuit: Circuit) -> Iterator[Finding]:
    """Flag PS-FinFETs (FinFETs adjacent to an MTJ) with undriven gates."""
    if not _compiles(circuit):
        return
    rails = hard_rail_nodes(circuit)
    # Adjacency is judged through non-rail terminals only: an MTJ whose
    # pinned layer sits on ground (a device bench) must not turn every
    # ground-connected pull-down into a "PS-FinFET".
    mtj_nodes = {
        canon(n) for m in mtjs(circuit) for n in m.node_names
    } - rails - {GROUND}
    if not mtj_nodes:
        return
    for fet in finfets(circuit):
        d, g, s = (canon(n) for n in fet.node_names)
        if d not in mtj_nodes and s not in mtj_nodes:
            continue
        if g not in rails and g != GROUND:
            yield Finding(
                subject=fet.name,
                message=(f"PS-FinFET {fet.name} gate node {g!r} is not a "
                         "driven control line; the store path cannot be "
                         "switched"),
            )


@rule("RV105", "pg-bypass", "circuit", "error",
      "An ungateable DC path bypasses a power switch",
      "Shutdown leakage is supposed to be throttled by the header "
      "switch; a resistive/source path from the supply rail into the "
      "gated domain keeps feeding the domain with the switch off, so "
      "measured P_shutdown and every BET derived from it are fiction.")
def check_pg_bypass(circuit: Circuit) -> Iterator[Finding]:
    """Search for non-gateable paths around each power switch."""
    if not _compiles(circuit):
        return
    rails = hard_rail_nodes(circuit)
    edges = conduction_edges(circuit)
    adj_all = adjacency(edges)
    adj_fixed = adjacency(edges, gateable_ok=False)
    for sw in power_switches(circuit, rails):
        domain = reachable(sw.virtual, adj_all, stop_at=rails,
                           skip_elements=(sw.element,))
        # Walk from the supply rail over *non-gateable* edges only,
        # skipping the switch itself; hitting the domain means leakage
        # cannot be cut off.
        region = reachable(sw.rail, adj_fixed, stop_at=set(),
                           skip_elements=(sw.element,))
        leaks = sorted((region - {sw.rail}) & domain)
        if leaks:
            yield Finding(
                subject=sw.element.name,
                message=(f"power switch {sw.element.name} "
                         f"({sw.rail!r} -> {sw.virtual!r}) is bypassed: "
                         f"an always-on DC path reaches gated node"
                         f" {leaks[0]!r} from the supply rail"),
            )
