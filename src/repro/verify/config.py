"""Shared lint policy from ``pyproject.toml`` (``[tool.repro.verify]``).

Deck lint (``repro lint``) and source lint (``repro lint-source``) honor
one config, so a rule disabled or downgraded for the project is
disabled everywhere::

    [tool.repro.verify]
    disable = ["RV104"]
    suppress = ["RV404:src/repro/legacy/*"]

    [tool.repro.verify.severity]
    RV406 = "info"

Keys
----
``disable``
    Rule codes or names skipped entirely.
``only``
    If non-empty, run only these rules.
``suppress``
    ``"CODE:glob"`` patterns; the glob matches the finding's subject
    *or* its target path (so per-path suppressions work for the
    multi-file source lint).
``severity``
    Table of rule code/name to replacement severity.

Policy layering, weakest first: ``pyproject.toml`` < environment
(``REPRO_LINT_DISABLE``) < command line (``--disable``).  All layers
are additive — a later layer can disable more, never re-enable.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

try:
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - Python < 3.11
    tomllib = None  # type: ignore[assignment]

from .core import Severity, VerifyConfig

#: Dotted table the policy lives under in pyproject.toml.
CONFIG_TABLE = ("tool", "repro", "verify")


def find_pyproject(start: Union[str, Path, None] = None) -> Optional[Path]:
    """Nearest ``pyproject.toml`` at or above ``start`` (default: cwd)."""
    here = Path(start) if start is not None else Path.cwd()
    if here.is_file():
        here = here.parent
    for candidate in [here, *here.parents]:
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def load_project_config(
        path: Union[str, Path, None] = None) -> VerifyConfig:
    """Policy from ``[tool.repro.verify]``; empty config when absent.

    ``path`` may be a ``pyproject.toml`` file or a directory to search
    upward from.  A missing file, missing table, or missing ``tomllib``
    all yield the empty (permissive) config — lint must keep working in
    trees that have no policy.
    """
    pyproject: Optional[Path]
    if path is not None and Path(path).is_file():
        pyproject = Path(path)
    else:
        pyproject = find_pyproject(path)
    if pyproject is None or tomllib is None:
        return VerifyConfig()
    try:
        data = tomllib.loads(pyproject.read_text())
    except (OSError, tomllib.TOMLDecodeError):
        return VerifyConfig()
    table = data
    for key in CONFIG_TABLE:
        table = table.get(key, {})
        if not isinstance(table, dict):
            return VerifyConfig()
    return config_from_table(table)


def config_from_table(table: dict) -> VerifyConfig:
    """Build a :class:`VerifyConfig` from a parsed policy table.

    Unknown keys are ignored (forward compatibility); malformed values
    raise — a broken policy should fail loudly, not lint permissively.
    """
    disable = frozenset(str(t) for t in table.get("disable", ()))
    only = frozenset(str(t) for t in table.get("only", ()))
    suppress = tuple(str(t) for t in table.get("suppress", ()))
    severity = {str(code): Severity.parse(level)
                for code, level in table.get("severity", {}).items()}
    return VerifyConfig(disable=disable, only=only,
                        severity_overrides=severity, suppress=suppress)


def effective_config(
        cli_disable: frozenset = frozenset(),
        project_path: Union[str, Path, None] = None) -> VerifyConfig:
    """The layered policy the CLI lint commands run with.

    ``pyproject.toml`` policy, plus ``REPRO_LINT_DISABLE`` from the
    environment, plus any ``--disable`` tokens from the command line.
    """
    config = load_project_config(project_path)
    config = config.merge(VerifyConfig.from_env())
    if cli_disable:
        config = config.merge(VerifyConfig(disable=frozenset(cli_disable)))
    return config
