"""RV5xx: physical-units dataflow checks (project scope).

The paper's headline quantities — store/restore energy ``E_cyc``,
break-even time, leakage per architecture — are only comparable if
every joule and second flows through the code with a consistent
dimension.  This band runs the forward dataflow of
:mod:`repro.verify.dataflow` over every function with *checking hooks*
attached, evaluating operand dimension-expressions against the
project-wide return-dimension facts fixpointed by
:class:`repro.verify.callgraph.SourceProject` — so a function in
``experiments`` adding a power returned by a helper in ``pg`` to an
energy is flagged even though neither module alone shows the mix.

======  ==================  =========================================
code    name                finding
======  ==================  =========================================
RV501   dimension-mix       add/sub/compare of two known, different,
                            non-dimensionless quantities (energy+power,
                            time+frequency, ...)
RV502   unit-api-mismatch   ``format_eng(x, "J")`` where the dataflow
                            proves ``x`` is not an energy
RV503   engstr-arithmetic   arithmetic on / comparison of a
                            ``format_eng`` *string* against a raw
                            quantity — formatting is presentation, not
                            a unit conversion
======  ==================  =========================================

The lattice is optimistic (see :mod:`repro.verify.dataflow`): findings
fire only when both sides are *known*, so unannotated code stays quiet
rather than noisy.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..units import dimension_name, dimension_of
from . import callgraph, dataflow
from .core import Finding, rule


def _unit_literal(node: ast.Call) -> Optional[Tuple[str, ast.AST]]:
    """The literal unit argument of a ``format_eng`` call, if any."""
    for keyword in node.keywords:
        if keyword.arg == "unit" and isinstance(keyword.value, ast.Constant):
            if isinstance(keyword.value.value, str):
                return keyword.value.value, keyword.value
    if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant) \
            and isinstance(node.args[1].value, str):
        return node.args[1].value, node.args[1]
    return None


class _UnitsChecker:
    """One DimFlow pass per function, hooks collecting findings."""

    def __init__(self, pm: "callgraph.ProjectModule"):
        self.pm = pm
        self.findings: List[Tuple[str, Finding]] = []
        self._seen: Set[Tuple[str, int, str]] = set()
        self.facts = pm.project.units_facts_for_eval()

    def run(self) -> List[Tuple[str, Finding]]:
        tree = self.pm.module.tree
        if tree is None:
            return []
        imports = callgraph._import_map(tree, self.pm.name)
        top = callgraph._module_level_names(tree)
        for qual, class_ctx, func in callgraph._collect_functions(tree):
            resolver = callgraph._Resolver(self.pm.name, imports, top)
            self._check_function(qual, class_ctx, func, resolver)
        return self.findings

    def _check_function(self, qual: str, class_ctx: str,
                        func: ast.FunctionDef,
                        resolver: "callgraph._Resolver") -> None:
        annotations = callgraph._param_annotations(func)
        param_dims: Dict[str, Tuple[int, ...]] = {}
        for arg in (list(func.args.posonlyargs) + list(func.args.args)
                    + list(func.args.kwonlyargs)):
            if arg.arg in ("self", "cls"):
                continue
            dim = (dataflow.seed_for_annotation(annotations.get(arg.arg))
                   or dataflow.seed_for_name(arg.arg))
            if dim is not None:
                param_dims[arg.arg] = dim
        subject = f"{self.pm.name}:{qual}"

        def ev(expr):
            return dataflow.eval_dim(expr, param_dims, self.facts)

        def emit(code: str, node: ast.AST, message: str) -> None:
            key = (code, getattr(node, "lineno", 0), message)
            if key in self._seen:
                return
            self._seen.add(key)
            self.findings.append((code, Finding(
                subject=subject, message=message,
                location=self.pm.module.loc(node))))

        def on_binop(node, left_expr, right_expr) -> None:
            left, right = ev(left_expr), ev(right_expr)
            if left == "engstr" or right == "engstr":
                other = right if left == "engstr" else left
                emit("RV503", node,
                     "arithmetic on a format_eng string"
                     + (f" (other operand has dimension "
                        f"{dataflow.render_dim(other)})"
                        if isinstance(other, tuple) else "")
                     + "; format the final quantity instead")
                return
            if (isinstance(left, tuple) and isinstance(right, tuple)
                    and left != right
                    and any(left) and any(right)):
                emit("RV501", node,
                     f"adding/subtracting {dimension_name(left)} and "
                     f"{dimension_name(right)} values; quantities of "
                     "different dimension cannot be summed")

        def on_compare(node, operands) -> None:
            values = [ev(op) for op in operands]
            known = [v for v in values if isinstance(v, tuple)]
            if "engstr" in values and known:
                emit("RV503", node,
                     f"comparing a format_eng string against a raw "
                     f"{dimension_name(known[0])} value; compare the "
                     "floats, format for display only")
                return
            dims = {v for v in known if any(v)}
            if len(dims) > 1:
                names = " vs ".join(sorted(dimension_name(d) for d in dims))
                emit("RV501", node,
                     f"comparing quantities of different dimension "
                     f"({names})")

        def on_call(node, name, args) -> None:
            if name is None or name.rsplit(".", 1)[-1] != "format_eng":
                return
            unit = _unit_literal(node)
            if unit is None or not node.args:
                return
            expected = dimension_of(unit[0])
            if expected is None:
                return
            actual = ev(args[0]) if args else None
            if isinstance(actual, tuple) and any(actual) \
                    and tuple(actual) != tuple(expected):
                emit("RV502", node,
                     f"format_eng(..., {unit[0]!r}) formats a "
                     f"{dimension_name(expected)} unit, but the value is "
                     f"{dataflow.render_dim(actual)}")

        flow = dataflow.DimFlow(
            callgraph._units_resolver(resolver, class_ctx),
            on_binop=on_binop, on_compare=on_compare, on_call=on_call)
        flow.run(func)


def _units_findings(pm: "callgraph.ProjectModule",
                    code: str) -> Iterator[Finding]:
    cached = getattr(pm, "_rv5_findings", None)
    if cached is None:
        cached = _UnitsChecker(pm).run()
        pm._rv5_findings = cached
    for found_code, finding in cached:
        if found_code == code:
            yield finding


@rule("RV501", "dimension-mix", "project", "warning",
      "addition or comparison of quantities with different physical "
      "dimensions",
      rationale="E_cyc and break-even comparisons are meaningless if an "
                "energy is summed with a power or a time compared to a "
                "frequency; the dataflow follows quantities across calls "
                "so the mix is caught at the offending expression.")
def check_dimension_mix(pm) -> Iterator[Finding]:
    """RV501: dimension-mixing arithmetic/comparison findings."""
    yield from _units_findings(pm, "RV501")


@rule("RV502", "unit-api-mismatch", "project", "warning",
      "format_eng called with a unit symbol that contradicts the value's "
      "inferred dimension",
      rationale="a power table rendered with 'J' labels mis-reports the "
                "paper's headline numbers even when the floats are right.")
def check_unit_api_mismatch(pm) -> Iterator[Finding]:
    """RV502: format_eng unit-symbol mismatch findings."""
    yield from _units_findings(pm, "RV502")


@rule("RV503", "engstr-arithmetic", "project", "error",
      "arithmetic on, or comparison against, a format_eng string",
      rationale="'23.40 pJ' is presentation, not a quantity; mixing it "
                "back into arithmetic silently string-concatenates or "
                "compares lexically.")
def check_engstr_arithmetic(pm) -> Iterator[Finding]:
    """RV503: arithmetic/comparison on format_eng strings."""
    yield from _units_findings(pm, "RV503")
