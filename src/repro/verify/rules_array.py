"""RV8xx: array shape/dtype semantics (project scope).

The vectorized batched solver (ROADMAP item 1) replaces scalar Python
loops with heavily-broadcast numpy code — and introduces the bug class
this band exists to catch *statically*: silent broadcasting across a
batch axis, float64→float32 demotion inside accumulations, writes that
land in fancy-indexing copies, and aliased in-place stamps.  The band
runs the :mod:`repro.verify.arrayflow` shape/dtype lattice over every
function, seeded from numpy constructors, ``"(n, n)"``-style parameter
annotations, and the project's fixpoint return-shape facts — so a
shape minted in ``repro.analysis.mna`` is checked at its call sites in
``repro.analysis.transient``.

======  ==========================  ==================================
code    name                        finding
======  ==========================  ==================================
RV800   broadcast-mismatch          provably incompatible extents in an
                                    elementwise op or matmul inner dims
RV801   dtype-demotion              accumulating/storing float64 (or
                                    complex) into a float32 array
RV802   unintended-copy             non-contiguous ``@`` operand,
                                    writes into fancy-index copies,
                                    ``np.dot`` inside hot loops
RV803   inplace-alias-hazard        ``A[ix] += v`` where ``ix`` is an
                                    integer array not provably unique
RV804   batch-axis-drift            passing a rank-(r+1) array to a
                                    function declaring rank r
======  ==========================  ==================================

Every rule here fires on *provable* facts only — both ranks known,
both extents concrete, dtype transitions explicit — and the loop
widening in the walker guarantees data-dependent shapes degrade to
unknown instead of false positives.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set, Tuple

from . import arrayflow, callgraph
from .arrayflow import AShape, dtype_rank
from .core import Finding, rule

#: Integer dtype ranks (see :data:`arrayflow.DTYPE_RANK`).
_INT_RANKS = frozenset({1, 2, 3, 4})

#: AugAssign ops where repeated fancy indices silently collapse.
_ALIAS_OPS = {ast.Add: "np.add.at", ast.Sub: "np.subtract.at",
              ast.Mult: "np.multiply.at"}


def _has_fancy(expr) -> bool:
    """True when a ShapeExpr is a fancy-index result (a numpy *copy*)."""
    if not isinstance(expr, dict) or expr.get("k") != "idx":
        return False
    return any((item[0] if isinstance(item, (list, tuple)) else item)
               == "f" for item in expr.get("spec", ()))


def _is_transposed(expr) -> bool:
    return isinstance(expr, dict) and expr.get("k") == "t"


def _fancy_index_items(spec) -> List:
    return [item for item in spec
            if isinstance(item, (list, tuple)) and item
            and item[0] == "f"]


class _ArrayScan:
    """One pass over a module's functions collecting RV8xx findings."""

    def __init__(self, pm: "callgraph.ProjectModule"):
        self.pm = pm
        self.findings: List[Tuple[str, Finding]] = []
        self._seen: Set[Tuple[str, int]] = set()

    def run(self) -> List[Tuple[str, Finding]]:
        tree = self.pm.module.tree
        if tree is None:
            return []
        imports = callgraph._import_map(tree, self.pm.name)
        top = callgraph._module_level_names(tree)
        shape_facts = self.pm.project.shape_facts_for_eval()
        for qual, class_ctx, func in callgraph._collect_functions(tree):
            resolver = callgraph._Resolver(self.pm.name, imports, top)
            self._scan_function(qual, class_ctx, func, resolver,
                                shape_facts)
        return self.findings

    def _emit(self, code: str, subject: str, node: ast.AST,
              message: str) -> None:
        line = getattr(node, "lineno", 0)
        if (code, line) in self._seen:
            return
        self._seen.add((code, line))
        self.findings.append((code, Finding(
            subject=subject, message=message,
            location=self.pm.module.loc(node))))

    # -- one function -----------------------------------------------------
    def _scan_function(self, qual: str, class_ctx: str,
                       func: ast.FunctionDef,
                       resolver: "callgraph._Resolver",
                       shape_facts) -> None:
        fid = f"{self.pm.name}:{qual}"
        numpy_of, resolve_call = callgraph._shape_callbacks(resolver,
                                                            class_ctx)
        params = callgraph._annotation_shapes(
            callgraph._param_annotations(func))

        flow = arrayflow.ShapeFlow(
            numpy_of, resolve_call, param_shapes=params,
            on_binop=lambda *a: self._on_binop(fid, flow, *a),
            on_call=lambda *a: self._on_call(fid, flow, resolver,
                                             class_ctx, *a),
            on_augassign=lambda *a: self._on_augassign(fid, flow, *a),
            on_store=lambda *a: self._on_store(fid, flow, *a),
        )
        flow._return_facts = shape_facts
        flow.run(func)

    # -- hooks ------------------------------------------------------------
    def _on_binop(self, fid, flow, node, tag, left, right) -> None:
        lval, rval = flow.eval(left), flow.eval(right)
        if tag == "mat":
            self._check_matmul(fid, node, left, right, lval, rval)
            return
        if lval is None or rval is None or lval.scalar or rval.scalar:
            return
        if lval.dims is None or rval.dims is None:
            return
        conflict = arrayflow.broadcast_conflict(lval.dims, rval.dims)
        if conflict is not None:
            self._emit(
                "RV800", fid, node,
                f"provable broadcast mismatch: {lval.render()} vs "
                f"{rval.render()} — extents {conflict[0]} and "
                f"{conflict[1]} are incompatible")

    def _check_matmul(self, fid, node, left, right, lval, rval) -> None:
        if lval is not None and rval is not None:
            conflict = arrayflow.matmul_inner_conflict(lval, rval)
            if conflict is not None:
                self._emit(
                    "RV800", fid, node,
                    f"matmul inner dimensions provably mismatch: "
                    f"{lval.render()} @ {rval.render()} "
                    f"({conflict[0]} vs {conflict[1]})")
                return
        if _is_transposed(left) or _is_transposed(right):
            self._emit(
                "RV802", fid, node,
                "matmul on a transposed view; BLAS copies the "
                "non-contiguous operand on every call — store the "
                "transposed layout instead")

    def _on_call(self, fid, flow, resolver, class_ctx, node, dotted,
                 arg_exprs) -> None:
        if dotted is None:
            return
        np_tail = flow.numpy_of(dotted)
        if np_tail in ("dot", "matmul") and len(arg_exprs) >= 2:
            lval = flow.eval(arg_exprs[0])
            rval = flow.eval(arg_exprs[1])
            if lval is not None and rval is not None:
                conflict = arrayflow.matmul_inner_conflict(lval, rval)
                if conflict is not None:
                    self._emit(
                        "RV800", fid, node,
                        f"matmul inner dimensions provably mismatch: "
                        f"{lval.render()} vs {rval.render()} "
                        f"({conflict[0]} vs {conflict[1]})")
            if np_tail == "dot" and flow.loop_depth > 0:
                self._emit(
                    "RV802", fid, node,
                    "np.dot() inside a hot loop; prefer @ on "
                    "preallocated contiguous operands (dot falls back "
                    "to copies on non-contiguous inputs)")
            return
        self._check_batch_drift(fid, flow, resolver, class_ctx, node,
                                dotted, arg_exprs)

    def _check_batch_drift(self, fid, flow, resolver, class_ctx, node,
                           dotted, arg_exprs) -> None:
        """RV804: rank of an argument vs the callee's declared rank."""
        full = resolver.resolve(dotted, class_ctx)
        if full is None:
            return
        target = self.pm.project.resolve_dotted(full)
        if target is None:
            return
        declared = self.pm.project.param_shapes(target)
        if not declared:
            return
        params = self.pm.project.functions.get(target, {}) \
            .get("signature", {}).get("params", ())
        for position, name in enumerate(params):
            decl = declared.get(name)
            if decl is None or decl.rank is None:
                continue
            if position >= len(node.args):
                break
            value = flow.eval(arg_exprs[position])
            if value is None or value.scalar or value.rank is None:
                continue
            if value.rank != decl.rank:
                drift = ("batch axis added"
                         if value.rank == decl.rank + 1
                         else "rank drift")
                self._emit(
                    "RV804", fid, node,
                    f"{target} declares parameter {name!r} as "
                    f"{decl.render()} (rank {decl.rank}) but is called "
                    f"with rank-{value.rank} {value.render()} — "
                    f"{drift}; broadcast silently or batch the callee "
                    "explicitly")

    def _on_augassign(self, fid, flow, node, base, index,
                      value) -> None:
        vval = flow.eval(value)
        bval = flow.eval(base)
        if index is None:
            # x op= v on a plain name
            if _has_fancy(base):
                self._emit(
                    "RV802", fid, node,
                    "in-place update of a fancy-indexing result; fancy "
                    "indexing returns a copy, so the source array is "
                    "not updated (use np.add.at or index once)")
            self._check_demotion(fid, node, bval, vval,
                                 what="accumulation target")
            return
        # A[ix] op= v
        self._check_demotion(fid, node, bval, vval,
                             what="indexed store target")
        alias_fix = _ALIAS_OPS.get(type(node.op))
        if alias_fix is None:
            return
        for item in _fancy_index_items(index):
            sub = flow.eval(item[1] if len(item) > 1 else None)
            if sub is None or sub.dims is None or sub.scalar:
                continue
            if sub.unique:
                continue
            if dtype_rank(sub.dtype) not in _INT_RANKS:
                continue
            self._emit(
                "RV803", fid, node,
                "in-place aliasing hazard: the integer index array is "
                "not provably duplicate-free, and repeated indices "
                f"apply only once under buffered +=; use {alias_fix}"
                "(array, index, value)")
            return

    def _on_store(self, fid, flow, node, target, base, index,
                  value) -> None:
        if _has_fancy(base):
            self._emit(
                "RV802", fid, node,
                "assignment into a fancy-indexing result; fancy "
                "indexing returns a copy, so this write does not reach "
                "the original array")
        self._check_demotion(fid, node, flow.eval(base),
                             flow.eval(value), what="store target")

    def _check_demotion(self, fid, node, store: Optional[AShape],
                        value: Optional[AShape], what: str) -> None:
        if store is None or value is None or store.scalar:
            return
        if value.scalar:
            return                  # python scalars combine weakly
        if arrayflow.is_demotion(store.dtype, value.dtype):
            self._emit(
                "RV801", fid, node,
                f"silent dtype demotion: {what} is {store.dtype} but "
                f"the value is {value.dtype}; the extra precision is "
                "dropped on every accumulation — allocate the "
                f"accumulator as {value.dtype} or cast explicitly")


def _array_findings(pm, code: str):
    cached = getattr(pm, "_rv8_findings", None)
    if cached is None:
        cached = _ArrayScan(pm).run()
        pm._rv8_findings = cached
    for found_code, finding in cached:
        if found_code == code:
            yield finding


@rule("RV800", "broadcast-mismatch", "project", "warning",
      "two arrays with provably incompatible extents are combined "
      "elementwise or via matmul",
      rationale="a broadcast mismatch the lattice can prove is a "
                "guaranteed runtime ValueError — or worse, a silent "
                "wrong-shape result once a batch axis lands.")
def check_broadcast(pm):
    """RV800: provable broadcast/matmul shape mismatches."""
    yield from _array_findings(pm, "RV800")


@rule("RV801", "dtype-demotion", "project", "warning",
      "a float64/complex value is accumulated or stored into a "
      "lower-precision array",
      rationale="MNA conditioning analysis assumes float64; a float32 "
                "accumulator silently halves the mantissa on every "
                "Newton update.")
def check_dtype_demotion(pm):
    """RV801: silent precision loss in accumulation paths."""
    yield from _array_findings(pm, "RV801")


@rule("RV802", "unintended-copy", "project", "info",
      "a pattern that makes numpy copy (transposed matmul operand, "
      "write into a fancy-index result, np.dot in a loop)",
      rationale="hidden copies dominate the profile once the batched "
                "solver lands; writes into fancy-index copies are "
                "additionally lost updates.")
def check_unintended_copy(pm):
    """RV802: unintended-copy patterns on hot paths."""
    yield from _array_findings(pm, "RV802")


@rule("RV803", "inplace-alias-hazard", "project", "warning",
      "fancy-indexed += with an index array not provably "
      "duplicate-free",
      rationale="buffered += applies each repeated index once; "
                "np.add.at accumulates — stamping a netlist with "
                "shared nodes hits exactly this.")
def check_inplace_alias(pm):
    """RV803: ``A[ix] +=`` aliasing hazards vs ``np.add.at``."""
    yield from _array_findings(pm, "RV803")


@rule("RV804", "batch-axis-drift", "project", "warning",
      "an argument's rank provably disagrees with the callee's "
      "declared parameter shape",
      rationale="the batched solver adds a leading batch axis; "
                "passing (b, n, n) into a function written for (n, n) "
                "broadcasts silently and answers the wrong question.")
def check_batch_drift(pm):
    """RV804: declared-vs-actual rank drift across calls."""
    yield from _array_findings(pm, "RV804")
