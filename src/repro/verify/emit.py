"""Report emitters: plain text, JSON, and SARIF 2.1.0.

SARIF output lets the deck linter plug into code-review tooling (GitHub
code scanning, VS Code SARIF viewers) unchanged: rule metadata comes
from the registry, physical locations from deck findings, and logical
locations (node/element names) from circuit findings.
"""

from __future__ import annotations

import json
from typing import Dict, List

from .core import REGISTRY, Diagnostic, Report, RuleRegistry, Severity

#: SARIF severity levels for each internal severity.
_SARIF_LEVEL = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")


def render_text(report: Report) -> str:
    """One diagnostic per line, plus a severity-count summary line."""
    lines = [str(d) for d in report.diagnostics]
    counts = report.counts()
    lines.append(
        f"{report.target or 'netlist'}: "
        f"{counts['error']} error(s), {counts['warning']} warning(s), "
        f"{counts['info']} info"
    )
    return "\n".join(lines)


def _diag_dict(diag: Diagnostic) -> Dict[str, object]:
    out: Dict[str, object] = {
        "code": diag.code,
        "name": diag.name,
        "severity": diag.severity.value,
        "subject": diag.subject,
        "message": diag.message,
        "target": diag.target,
    }
    if diag.location is not None:
        out["line"] = diag.location.line
        out["text"] = diag.location.text
    return out


def render_json(report: Report, indent: int = 2) -> str:
    """Machine-readable dump: target, counts and all diagnostics."""
    payload = {
        "target": report.target,
        "counts": report.counts(),
        "diagnostics": [_diag_dict(d) for d in report.diagnostics],
    }
    return json.dumps(payload, indent=indent)


def _sarif_result(diag: Diagnostic) -> Dict[str, object]:
    result: Dict[str, object] = {
        "ruleId": diag.code,
        "level": _SARIF_LEVEL[diag.severity],
        "message": {"text": diag.message},
    }
    location: Dict[str, object] = {}
    if diag.location is not None:
        location["physicalLocation"] = {
            "artifactLocation": {"uri": diag.target or "netlist"},
            "region": {
                "startLine": diag.location.line,
                "snippet": {"text": diag.location.text},
            },
        }
    if diag.subject:
        location["logicalLocations"] = [
            {"name": diag.subject, "kind": "member"}
        ]
    if not location.get("physicalLocation"):
        location["physicalLocation"] = {
            "artifactLocation": {"uri": diag.target or "netlist"}
        }
    result["locations"] = [location]
    return result


def render_sarif(report: Report, indent: int = 2,
                 registry: RuleRegistry = REGISTRY) -> str:
    """Serialise ``report`` as a SARIF 2.1.0 log."""
    rules: List[Dict[str, object]] = []
    for rule_ in registry.rules():
        rules.append({
            "id": rule_.code,
            "name": rule_.name,
            "shortDescription": {"text": rule_.description},
            "fullDescription": {"text": rule_.rationale
                                or rule_.description},
            "defaultConfiguration": {
                "level": _SARIF_LEVEL[rule_.severity],
            },
        })
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri":
                        "https://example.invalid/repro/docs/LINT.md",
                    "rules": rules,
                },
            },
            "results": [_sarif_result(d) for d in report.diagnostics],
        }],
    }
    return json.dumps(log, indent=indent)
