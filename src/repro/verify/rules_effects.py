"""RV9xx: concurrency & crash-safety of the durable-store substrate.

The multiprocess campaign engine (PR 4) and its caches survive crashes
only because a handful of hand-maintained protocols say so: stage into
``mkstemp`` → ``fsync`` → ``os.replace`` for every durable store
(:mod:`repro.exec.atomicio`), append+fsync for the journal, spawn
workers that import their task functions and share nothing.  This band
enforces those protocols statically from the per-function **effect
signatures** collected by :mod:`repro.verify.effects`, propagated
through the project call graph; :mod:`repro.verify.crashcheck` is the
dynamic cross-validator that demonstrates the torn states these rules
prevent.

======  ========================  =====================================
code    name                      finding
======  ========================  =====================================
RV900   non-atomic-durable-write  a journal/cache/baseline/bench/corpus
                                  path is written with a bare
                                  ``open(..., "w")``/``write_text``
                                  instead of the stage-then-rename
                                  protocol
RV901   fsync-ordering            a stage-then-rename writer renames
                                  before (or without) fsync, or a
                                  durable append never fsyncs
RV902   shared-file-rmw           a task-reachable function
                                  read-modify-writes a shared durable
                                  file with no lock and no atomic
                                  replace
RV903   spawn-unsafe-capture      task-reachable code reads module
                                  globals mutated post-import on the
                                  driver side (invisible under spawn),
                                  or a Process target is not module
                                  level
RV904   queue-join-deadlock       a result queue is drained only after
                                  joining its producer, or a
                                  JoinableQueue is joined with no
                                  ``task_done`` anywhere in the module
RV905   signal-handler-io         a registered signal handler performs
                                  (or calls into) buffered IO / queue
                                  ops instead of only setting flags
======  ========================  =====================================
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .core import Finding, SourceLocation, rule
from .effects import atoms_of_kind, has_write_protocol

#: Modules that *are* the sanctioned atomic-write implementation; their
#: staged writes are the protocol, not a violation.  Suffix-matched so
#: fixture trees can ship their own ``...atomicio`` helper.
PROTOCOL_SUFFIXES = ("exec.atomicio",)

#: Call tails a signal handler may make without a finding (reading the
#: signal's own metadata, monotonic time for a deadline).
_HANDLER_SAFE_HEADS = frozenset({"signal", "time", "math", "sys"})
_HANDLER_SAFE_TAILS = frozenset({"Signals", "strsignal", "getsignal",
                                 "monotonic", "perf_counter", "int",
                                 "float", "str", "len", "max", "min"})

#: Builtin / stdlib calls that are buffered or otherwise non-reentrant
#: IO — the classic source of ``RuntimeError: reentrant call`` when a
#: handler fires mid-write.
_HANDLER_IO = frozenset({"print", "input", "open"})
_HANDLER_IO_HEADS = frozenset({"logging", "warnings"})


def _loc(pm, line: int) -> SourceLocation:
    return SourceLocation(line=line, text=pm.module.line_text(line))


def _functions_here(pm) -> Iterator[Tuple[str, Dict[str, object]]]:
    for qual in sorted(pm.summary.get("functions", ())):
        fid = f"{pm.name}:{qual}"
        yield fid, pm.project.functions[fid]


def _chain_of(pm, fid: str) -> str:
    roots = pm.project.reach.get(fid) or {}
    if not roots:
        return ""
    _root, chain = sorted(roots.items())[0]
    return chain


def _is_protocol_module(name: str) -> bool:
    return name.endswith(PROTOCOL_SUFFIXES)


@rule("RV900", "non-atomic-durable-write", "project", "error",
      "a durable store path (journal/cache/baseline/bench/corpus) is "
      "written without the stage-then-rename protocol",
      rationale="a crash mid-write leaves the store torn AND destroys "
                "the previous good value; mkstemp + fsync + os.replace "
                "(repro.exec.atomicio) keeps old-or-new, never a "
                "mixture.")
def check_non_atomic_durable_write(pm) -> Iterator[Finding]:
    """RV900: bare ``open(.., 'w')``/``write_text`` to a durable path."""
    if _is_protocol_module(pm.name):
        return
    for fid, info in _functions_here(pm):
        if has_write_protocol(info):
            continue        # it *is* a stage-then-rename writer (RV901)
        for _kind, cls, line, mode in atoms_of_kind(info, "write"):
            if "a" in str(mode) and "w" not in str(mode):
                continue    # append path: fsync discipline is RV901's
            yield Finding(
                subject=fid,
                message=f"{cls} store written in place (mode "
                        f"{mode!r}) — a crash here tears the file and "
                        "loses the previous value; stage with "
                        "repro.exec.atomicio.atomic_write_text "
                        "(mkstemp + fsync + os.replace)",
                location=_loc(pm, int(line)),
            )


@rule("RV901", "fsync-ordering", "project", "error",
      "a durable writer renames before (or without) fsync, or appends "
      "without fsync",
      rationale="os.replace publishes the name immediately but the data "
                "may still be in the page cache; after a power cut the "
                "new name can point at unwritten blocks.  fsync the "
                "staged file first (and every journal append).")
def check_fsync_ordering(pm) -> Iterator[Finding]:
    """RV901: missing/misordered fsync on crash-critical writes."""
    for fid, info in _functions_here(pm):
        writes = atoms_of_kind(info, "write")
        stamps = [int(a[2]) for a in atoms_of_kind(info, "mkstemp")]
        if not writes and not stamps:
            continue
        fsyncs = [int(a[2]) for a in atoms_of_kind(info, "fsync")]
        replaces = [int(a[2]) for a in atoms_of_kind(info, "replace")]
        appends = [a for a in writes
                   if "a" in str(a[3]) and "w" not in str(a[3])]
        # A staged writer is mkstemp + replace (the write itself goes
        # through the staged fd, so there is no durable write atom) or
        # a durable write followed by a rename onto the target.
        staged_lines = stamps + [int(a[2]) for a in writes
                                 if a not in appends]
        if staged_lines and replaces:
            write_line = min(staged_lines)
            rename_line = max(replaces)
            ordered = any(write_line <= line <= rename_line
                          for line in fsyncs)
            if not ordered:
                what = ("renames before any fsync" if fsyncs
                        else "never fsyncs the staged file")
                yield Finding(
                    subject=fid,
                    message=f"stage-then-rename writer {what}: the "
                            "rename publishes data that may not be on "
                            "stable storage; fsync between write and "
                            "os.replace",
                    location=_loc(pm, rename_line),
                )
        for atom in appends:
            if not any(line >= int(atom[2]) for line in fsyncs):
                yield Finding(
                    subject=fid,
                    message=f"durable append to a {atom[1]} path "
                            "without fsync: a crash can silently drop "
                            "the tail the journal replay contract "
                            "depends on",
                    location=_loc(pm, int(atom[2])),
                )


@rule("RV902", "shared-file-rmw", "project", "error",
      "a task-reachable function read-modify-writes a shared durable "
      "file without exclusive locking or atomic replace",
      rationale="two workers interleaving load -> mutate -> store on "
                "one file silently lose updates; hold an exclusive "
                "lock or write whole values atomically (last writer "
                "wins).")
def check_shared_file_rmw(pm) -> Iterator[Finding]:
    """RV902: unlocked read-modify-write on shared durable files."""
    if _is_protocol_module(pm.name):
        return
    for fid, info in _functions_here(pm):
        chain = _chain_of(pm, fid)
        if not chain:
            continue                      # not concurrent: no race
        if has_write_protocol(info) or atoms_of_kind(info, "lock"):
            continue
        read_classes = {str(a[1]) for a in atoms_of_kind(info, "read")}
        for _kind, cls, line, mode in atoms_of_kind(info, "write"):
            if str(cls) not in read_classes:
                continue
            if "a" in str(mode) and "w" not in str(mode):
                continue                  # append-only: no lost update
            via = (f" (task entry: {chain})" if " -> " in chain
                   else " (this is a task entry point)")
            yield Finding(
                subject=fid,
                message=f"reads and rewrites the shared {cls} store "
                        "with no lock and no atomic replace — "
                        f"concurrent workers lose updates{via}",
                location=_loc(pm, int(line)),
            )


@rule("RV903", "spawn-unsafe-capture", "project", "error",
      "task-reachable code depends on module state mutated after "
      "import, or a Process target is not importable",
      rationale="spawn workers re-import modules fresh: a global the "
                "driver mutated before dispatch silently reverts to "
                "its import-time value inside the worker; nested "
                "Process targets do not pickle at all.")
def check_spawn_unsafe_capture(pm) -> Iterator[Finding]:
    """RV903: module state invisible (or unpicklable) under spawn."""
    project = pm.project
    # Names of this module's globals mutated by driver-side (non
    # task-reachable) functions, with one mutating fid each.
    mutators: Dict[str, str] = {}
    for fid, info in _functions_here(pm):
        if project.reach.get(fid):
            continue        # worker-side mutation: RV601's problem
        for atom in info.get("atoms", ()):
            kind, what = str(atom[0]), str(atom[1])
            if kind in ("global_write", "module_mutation"):
                mutators.setdefault(what.split(".", 1)[0], fid)
    for fid, info in _functions_here(pm):
        chain = _chain_of(pm, fid)
        if chain:
            for name, line in info.get("global_reads", ()):
                mutator = mutators.get(str(name))
                if mutator is None:
                    continue
                via = (f" (task entry: {chain})" if " -> " in chain
                       else " (this is a task entry point)")
                yield Finding(
                    subject=fid,
                    message=f"reads module global {name!r}, which "
                            f"{mutator} mutates outside the task "
                            "path: under spawn the worker re-imports "
                            "the module and sees the import-time "
                            f"value, not the driver's{via}",
                    location=_loc(pm, int(line)),
                )
        for _kind, target, line, detail in info.get("effects", ()):
            if _kind == "spawn_tgt" and detail == "nested":
                yield Finding(
                    subject=fid,
                    message=f"Process target {target!r} is not a "
                            "module-level function: spawn pickles "
                            "targets by import path, so this fails "
                            "(or silently captures stale closure "
                            "state) at dispatch",
                    location=_loc(pm, int(line)),
                )


@rule("RV904", "queue-join-deadlock", "project", "error",
      "a queue is drained only after joining its producer process, or "
      "a JoinableQueue is joined without task_done",
      rationale="a child blocks in put() once the queue's pipe buffer "
                "fills; join()ing it before draining deadlocks both "
                "sides.  Drain first, then join — and every get() from "
                "a joined JoinableQueue needs a task_done().")
def check_queue_join_deadlock(pm) -> Iterator[Finding]:
    """RV904: join-before-drain and task_done-less queue joins."""
    module_task_done = any(
        atoms_of_kind(info, "task_done")
        for _fid, info in _functions_here(pm))
    for fid, info in _functions_here(pm):
        joins = [int(a[2]) for a in atoms_of_kind(info, "p_join")]
        gets = atoms_of_kind(info, "q_get")
        if joins:
            first_join = min(joins)
            for _kind, recv, line, _detail in gets:
                if int(line) > first_join:
                    yield Finding(
                        subject=fid,
                        message=f"drains {recv}.get() after joining "
                                "the producer process (join at line "
                                f"{first_join}): a child blocked on a "
                                "full queue never exits and the join "
                                "never returns — drain before "
                                "joining",
                        location=_loc(pm, int(line)),
                    )
        for _kind, recv, line, _detail in atoms_of_kind(info, "q_join"):
            if not module_task_done:
                yield Finding(
                    subject=fid,
                    message=f"joins queue {recv} but nothing in this "
                            "module calls task_done(): "
                            "JoinableQueue.join() blocks until every "
                            "get is acknowledged",
                    location=_loc(pm, int(line)),
                )


def _resolve_handler(pm, registering_fid: str, name: str) -> Optional[str]:
    """Fid of a signal handler registered by name, nested-first."""
    project = pm.project
    qual = registering_fid.partition(":")[2]
    nested = f"{pm.name}:{qual}.{name}"
    if nested in project.functions:
        return nested
    top = f"{pm.name}:{name}"
    if top in project.functions:
        return top
    for fid in project.functions:
        if fid.startswith(f"{pm.name}:") and fid.endswith(f".{name}"):
            return fid
    return None


def _handler_hazards(pm, handler_fid: str) -> List[Tuple[str, int]]:
    """(description, line) for non-async-safe work under a handler."""
    project = pm.project
    hazards: List[Tuple[str, int]] = []
    seen: Set[str] = set()
    queue: List[str] = [handler_fid]
    while queue:
        fid = queue.pop(0)
        if fid in seen:
            continue
        seen.add(fid)
        info = project.functions.get(fid, {})
        here = fid == handler_fid
        for atom in atoms_of_kind(info, "write", "read", "q_put",
                                  "q_get", "replace", "fsync"):
            line = int(atom[2]) if here else int(
                project.functions[handler_fid].get("line", 0))
            hazards.append((f"performs {atom[0]} IO via {fid}", line))
        for call in info.get("calls", ()):
            dotted, line = str(call[0]), int(call[1])
            head = dotted.split(".", 1)[0]
            tail = dotted.rsplit(".", 1)[-1]
            if dotted in _HANDLER_IO or head in _HANDLER_IO_HEADS:
                hazards.append(
                    (f"calls {dotted} (buffered/non-reentrant IO)",
                     line if here else int(info.get("line", 0))))
                continue
            resolved = project.resolve_dotted(dotted)
            if resolved is not None:
                queue.append(resolved)
                continue
            if not here:
                continue
            if head in _HANDLER_SAFE_HEADS \
                    or tail in _HANDLER_SAFE_TAILS:
                continue
            if "." not in dotted:
                continue    # local helpers/builtins: give the benefit
            hazards.append(
                (f"calls {dotted}, which cannot be proven "
                 "async-signal-safe", line))
    return hazards


@rule("RV905", "signal-handler-io", "project", "error",
      "a registered signal handler performs buffered IO or other "
      "non-reentrant work",
      rationale="Python handlers run between bytecodes inside whatever "
                "the main thread was doing; printing or writing from "
                "one mid-write raises 'reentrant call' or corrupts the "
                "stream.  Handlers set flags; the main loop does the "
                "work.")
def check_signal_handler_io(pm) -> Iterator[Finding]:
    """RV905: signal handlers that do more than set flags."""
    for fid, info in _functions_here(pm):
        for _kind, name, line, signame in atoms_of_kind(info, "sig_reg"):
            if name == "<lambda>":
                yield Finding(
                    subject=fid,
                    message=f"registers a lambda for {signame}: keep "
                            "handlers to named flag-setters so their "
                            "async-safety is checkable",
                    location=_loc(pm, int(line)),
                )
                continue
            handler_fid = _resolve_handler(pm, fid, str(name))
            if handler_fid is None:
                continue        # dynamic value: nothing to analyse
            for description, hline in _handler_hazards(pm, handler_fid):
                yield Finding(
                    subject=handler_fid,
                    message=f"signal handler (for {signame}, "
                            f"registered in {fid}) {description}; "
                            "set a flag and do the work in the main "
                            "loop",
                    location=_loc(pm, int(hline) or int(line)),
                )
