"""Incremental result cache for the whole-program source lint.

The interprocedural bands make ``lint-source`` a whole-program
analysis; without caching every invocation would reparse and re-check
all ~100 modules.  This cache stores, per module, everything the warm
path needs so an unchanged module is never parsed again:

* the **module summary** (:func:`repro.verify.callgraph.summarize_module`)
  — plain JSON, enough to rebuild the project symbol table, call graph
  and interprocedural facts with no AST;
* its **source-scope diagnostics** (RV4xx), already pragma-filtered;
* its **project-scope diagnostics** (RV5xx-RV7xx) together with the
  ``facts digest`` they were computed under — the content hash of the
  slice of project facts this module's findings depend on (callee
  return dimensions, task-root reachability, loop-call context).

Invalidation is therefore two-level and dependency-aware: the entry key
hashes the module's own text (plus lint config and schema versions), so
an edited module misses outright; and when a *callee* changes, the
edited module's new summary shifts its callers' facts digests, so only
the callers whose relevant facts actually moved are re-checked — the
rest reuse their cached project diagnostics.

Entries reuse the hardened integrity envelope of
:mod:`repro.characterize.cache` — ``{"schema", "sha256", "payload"}``
with quarantine-on-corruption and warn-once on unwritable directories —
so a truncated write or bit-flip is detected, never deserialised.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from pathlib import Path
from typing import Any, Dict, Optional, Set

from ..exec.atomicio import atomic_write_text

#: Bump when summary or diagnostic serialisation changes shape.
#: v2: summary schema 2 (shape returns, nonloop allocs) + RV8xx band.
#: v3: summary schema 3 (effect signatures, global reads) + RV9xx band.
#: v4: spawn_tgt atoms are Process-only (Thread targets stay local).
CACHE_SCHEMA_VERSION = 4

CORRUPT_SUBDIR = "corrupt"

_UNWRITABLE: Set[str] = set()


def default_lint_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` (or ``~/.cache/repro-nvsram``) + ``lint/``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    base = Path(env) if env else Path.home() / ".cache" / "repro-nvsram"
    return base / "lint"


def entry_key(text: str, config_digest: str) -> str:
    """Cache key for one module: its text, the policy, the schemas."""
    blob = hashlib.sha256()
    blob.update(text.encode())
    blob.update(b"\0")
    blob.update(config_digest.encode())
    blob.update(f"\0schema={CACHE_SCHEMA_VERSION}".encode())
    return blob.hexdigest()[:24]


def _payload_checksum(payload: Dict[str, Any]) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()


def _quarantine(path: Path, reason: str) -> None:
    target = path.parent / CORRUPT_SUBDIR / path.name
    moved = ""
    try:
        target.parent.mkdir(parents=True, exist_ok=True)
        os.replace(path, target)
        moved = f"; moved to {target}"
    except OSError:
        pass    # read-only cache: leave it in place, still warn
    warnings.warn(
        f"discarding lint cache entry {path.name}: {reason}{moved} "
        "(the module will be re-linted)",
        RuntimeWarning,
        stacklevel=3,
    )


def load(cache_dir: Optional[Path], key: str) -> Optional[Dict[str, Any]]:
    """Fetch one module's cached lint entry, or None.

    The payload is ``{"summary": ..., "source_diags": [...],
    "project": {"facts_digest": ..., "diags": [...]} | None}``.
    """
    if cache_dir is None:
        return None
    path = Path(cache_dir) / f"{key}.json"
    try:
        text = path.read_text()
    except FileNotFoundError:
        return None
    except OSError as err:
        warnings.warn(f"cannot read lint cache entry {path}: {err}",
                      RuntimeWarning, stacklevel=2)
        return None
    try:
        envelope = json.loads(text)
    except json.JSONDecodeError as err:
        _quarantine(path, f"unparseable JSON ({err})")
        return None
    if not isinstance(envelope, dict) or "payload" not in envelope:
        _quarantine(path, "not an integrity envelope")
        return None
    if envelope.get("schema") != CACHE_SCHEMA_VERSION:
        _quarantine(path, f"schema {envelope.get('schema')!r} != "
                          f"{CACHE_SCHEMA_VERSION}")
        return None
    payload = envelope["payload"]
    expected = envelope.get("sha256")
    if not isinstance(payload, dict) or not isinstance(expected, str):
        _quarantine(path, "malformed envelope fields")
        return None
    actual = _payload_checksum(payload)
    if actual != expected:
        _quarantine(path, f"checksum mismatch (stored {expected[:12]}..., "
                          f"computed {actual[:12]}...)")
        return None
    return payload


def _warn_unwritable(directory: Path, err: OSError) -> None:
    marker = str(directory)
    if marker in _UNWRITABLE:
        return
    _UNWRITABLE.add(marker)
    warnings.warn(
        f"lint cache directory {directory} is not writable ({err}); "
        "continuing with caching disabled for this directory",
        RuntimeWarning,
        stacklevel=3,
    )


def store(cache_dir: Optional[Path], key: str,
          payload: Dict[str, Any]) -> None:
    """Persist one module's lint entry (atomic, degrade-don't-raise)."""
    if cache_dir is None:
        return
    directory = Path(cache_dir)
    if str(directory) in _UNWRITABLE:
        return
    envelope = json.dumps(
        {"schema": CACHE_SCHEMA_VERSION,
         "sha256": _payload_checksum(payload),
         "payload": payload},
        sort_keys=True,
    )
    path = directory / f"{key}.json"
    try:
        directory.mkdir(parents=True, exist_ok=True)
        atomic_write_text(path, envelope)
    except OSError as err:
        _warn_unwritable(directory, err)
