"""Finding-driven codemods: mechanical fixes for RV702/RV703/RV803.

The RV7xx/RV8xx bands *inventory* the vectorization refactor's work;
this module closes the loop for the mechanical subset.  ``python -m
repro fix`` re-runs the source linter, keeps the findings a codemod
can prove safe, and rewrites them:

* **RV702** (dense allocation in a loop): a ``name = np.zeros(n)``
  style statement whose constructor arguments are loop-invariant is
  hoisted.  If ``name`` is never mutated in the loop the statement
  simply moves above it (*pure hoist*); if it is filled in place
  (``name[j] = ...``) the allocation becomes a pre-loop buffer and the
  in-loop statement becomes ``name = name_buf; name.fill(0.0)``
  (*buffer hoist*) — byte-for-byte the same values every iteration,
  zero per-iteration allocations.
* **RV703** (topology-invariant call in a loop): ``recv.elements()``
  et al. are evaluated once before the loop into a fresh local and the
  in-loop call site is replaced by that name.
* **RV803** (repeated-index in-place update): ``base[ix] += v`` with a
  potentially duplicated integer index becomes
  ``np.add.at(base, ix, v)`` (NumPy's documented unbuffered form).
* **RV900** (non-atomic durable write): a bare statement-level
  ``path.write_text(text)`` against a durable store becomes
  ``atomic_write_text(path, text)`` — the shared
  ``repro.exec.atomicio`` stage-fsync-rename helper — with the import
  inserted once per module.  ``open(..., "w")`` forms are inventoried
  but skipped: rewriting a with-block is not a span-local edit.

Everything else is *skipped with a reason* — the planner never guesses.
Edits are computed on original-file coordinates and applied
bottom-up, so a run is byte-exact and **idempotent**: once applied the
findings disappear, and a second run produces no diff.

Safety model: each fix only fires when the local proof obligations
hold (invariant arguments, no rebinding, no aliasing, no retention of
the hoisted array by non-NumPy/SciPy calls).  One documented
assumption remains — NumPy/SciPy routines the array is passed to do
not retain references (view-returning routines are blocklisted).  The
CLI therefore gates ``--apply`` behind the solver-equivalence suite
(``repro equiv run``) whenever a tier-1-relevant module was rewritten,
reverting the tree if the gate fails.
"""

from __future__ import annotations

import ast
import difflib
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from . import callgraph, dataflow
from .core import Diagnostic, Report

#: Rule codes this engine knows how to rewrite.
FIXABLE_RULES = ("RV702", "RV703", "RV803", "RV900")

#: Dense constructors a loop-allocation hoist understands.  ``arange``
#: and friends are deliberately absent: their *contents* usually depend
#: on loop state even when hoisting would parse.
_HOIST_CTORS = {"zeros": "0.0", "ones": "1.0", "empty": None, "full": ""}

#: NumPy/SciPy routines that may return a *view* of an argument; an
#: array passed to one of these must not be turned into a reused
#: buffer (a later ``fill`` would corrupt the view).
_VIEW_TAILS = frozenset({
    "ravel", "reshape", "transpose", "asarray", "asanyarray",
    "atleast_1d", "atleast_2d", "atleast_3d", "broadcast_to",
    "squeeze", "swapaxes", "moveaxis", "expand_dims", "view",
})

#: Builtins that read a value without retaining it.
_SAFE_BUILTINS = frozenset({
    "float", "int", "bool", "complex", "len", "abs", "min", "max",
    "sum", "round", "repr", "str", "print", "range", "enumerate",
    "zip", "sorted", "reversed", "any", "all", "isinstance",
})

#: ``AugAssign`` operators with an unbuffered ``ufunc.at`` form.
_AT_FUNCS = {ast.Add: "add", ast.Sub: "subtract", ast.Mult: "multiply"}

#: Same set the RV703 rule recognises (kept in one place there).
_INVARIANT_TAILS = frozenset({"compile", "stamp_pattern", "row_labels",
                              "elements"})

#: RV703 tails whose return value survives being bound once and reused
#: across iterations in *any* context.  Everything else (notably
#: ``elements()``, which returns a one-shot iterator) is only hoistable
#: when the call is the iterable of a ``for`` statement, where a
#: ``list(...)`` wrapper materialises it safely.
_STABLE_VALUE_TAILS = frozenset({"compile", "stamp_pattern",
                                 "row_labels"})


@dataclass(frozen=True)
class Edit:
    """One textual change, in original-file coordinates.

    ``insert-before`` inserts ``text`` lines before ``line``;
    ``replace-lines`` replaces lines ``line..end_line`` (inclusive)
    with ``text``; ``replace-span`` replaces ``[col, end_col)`` on the
    single line ``line`` with ``span_text``.
    """

    kind: str
    line: int
    end_line: int = 0
    text: Tuple[str, ...] = ()
    col: int = -1
    end_col: int = -1
    span_text: str = ""


@dataclass
class FixPlan:
    """One finding's disposition: a concrete rewrite, or a reason not."""

    code: str
    path: str
    line: int
    message: str
    fixable: bool
    description: str = ""
    reason: str = ""
    edits: List[Edit] = field(default_factory=list)

    def render(self) -> str:
        verdict = self.description if self.fixable \
            else f"skipped: {self.reason}"
        return f"{self.path}:{self.line}: {self.code} — {verdict}"


def apply_edits(text: str, edits: Sequence[Edit]) -> str:
    """Apply ``edits`` (original-file coordinates) to ``text``.

    Span edits never change line numbering, so they go first; line
    edits are then applied bottom-up so earlier anchors stay valid.
    """
    trailing_newline = text.endswith("\n")
    lines = text.split("\n")
    if trailing_newline:
        lines = lines[:-1]
    for edit in [e for e in edits if e.kind == "replace-span"]:
        row = lines[edit.line - 1]
        lines[edit.line - 1] = (row[:edit.col] + edit.span_text
                                + row[edit.end_col:])
    line_edits = sorted((e for e in edits if e.kind != "replace-span"),
                        key=lambda e: e.line, reverse=True)
    for edit in line_edits:
        if edit.kind == "insert-before":
            lines[edit.line - 1:edit.line - 1] = list(edit.text)
        elif edit.kind == "replace-lines":
            lines[edit.line - 1:edit.end_line] = list(edit.text)
        else:                    # pragma: no cover - enum is closed
            raise ValueError(f"unknown edit kind {edit.kind!r}")
    out = "\n".join(lines)
    return out + "\n" if trailing_newline else out


def unified_diff(path: str, before: str, after: str) -> str:
    """Unified diff (``a/``/``b/`` prefixes) between two texts."""
    return "".join(difflib.unified_diff(
        before.splitlines(keepends=True), after.splitlines(keepends=True),
        fromfile=f"a/{path}", tofile=f"b/{path}"))


# ---------------------------------------------------------------------------
# Per-module planning context


class _ModuleCtx:
    """Parsed module plus the resolver scaffolding the planners need."""

    def __init__(self, path: str, text: str):
        self.path = path
        self.text = text
        self.lines = text.split("\n")
        self.tree = ast.parse(text)
        name = re.sub(r"\.py$", "", path).replace("\\", "/")
        name = re.sub(r"^.*?src/", "", name).replace("/", ".")
        self.module_name = name
        self._imports = callgraph._import_map(self.tree, name)
        self._top = callgraph._module_level_names(self.tree)
        self.functions = list(callgraph._collect_functions(self.tree))

    def resolver(self) -> "callgraph._Resolver":
        return callgraph._Resolver(self.module_name, self._imports,
                                   self._top)

    def numpy_alias(self) -> Optional[str]:
        """The name ``import numpy as np`` bound, if any."""
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        return alias.asname or "numpy"
        return None

    def segment(self, node: ast.AST) -> Optional[str]:
        return ast.get_source_segment(self.text, node)

    def find(self, line: int, kinds) -> Iterable[Tuple[ast.AST, tuple,
                                                       ast.AST, str]]:
        """``(node, enclosing_loops, func, class_ctx)`` at ``line``."""
        for _qual, class_ctx, func in self.functions:
            for node, loops in callgraph.body_nodes(func):
                if isinstance(node, kinds) \
                        and getattr(node, "lineno", None) == line:
                    yield node, loops, func, class_ctx

    def indent_of(self, node: ast.AST) -> Optional[str]:
        """Leading whitespace of the statement's first line — ``None``
        when the statement does not start the line (one-liner suites
        are not safe insertion anchors)."""
        row = self.lines[node.lineno - 1]
        prefix = row[:node.col_offset]
        return prefix if prefix.strip() == "" else None

    def fresh_name(self, func: ast.AST, stem: str) -> str:
        taken = {n.id for n in ast.walk(func) if isinstance(n, ast.Name)}
        taken |= {a.arg for a in ast.walk(func)
                  if isinstance(a, ast.arg)}
        name = stem
        bump = 2
        while name in taken:
            name = f"{stem}{bump}"
            bump += 1
        return name


def _stored_names(node: ast.AST) -> Set[str]:
    return {n.id for n in ast.walk(node)
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Store)}


def _loaded_names(node: ast.AST) -> Set[str]:
    return {n.id for n in ast.walk(node)
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)}


def _is_name(node: ast.AST, name: str) -> bool:
    return isinstance(node, ast.Name) and node.id == name


# ---------------------------------------------------------------------------
# RV702: hoist a loop-invariant dense allocation


def _retention_reason(ctx: _ModuleCtx, loop: ast.AST, name: str,
                      alloc: ast.Assign,
                      resolver: "callgraph._Resolver",
                      class_ctx: str) -> Optional[str]:
    """Why ``name`` cannot become a reused pre-loop buffer, if any."""
    for node in ast.walk(loop):
        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            value = getattr(node, "value", None)
            if value is not None and name in _loaded_names(value):
                return f"{name} escapes the loop via return/yield"
        if isinstance(node, ast.Assign) and node is not alloc:
            if any(_is_name(t, name) for t in node.targets):
                return f"{name} is rebound elsewhere in the loop"
            if _is_name(node.value, name):
                return f"{name} is aliased inside the loop"
            for target in node.targets:
                if not isinstance(target, ast.Name) \
                        and name in _loaded_names(node.value):
                    return (f"{name} is stored into a container or "
                            "attribute inside the loop")
        if isinstance(node, ast.Call):
            args = list(node.args) + [kw.value for kw in node.keywords]
            if not any(_is_name(a, name) for a in args):
                continue
            dotted = dataflow._call_target(node)
            tail = dotted.rsplit(".", 1)[-1] if dotted else ""
            if tail in _VIEW_TAILS:
                return (f"{name} is passed to {tail}(), which may "
                        "return a view of it")
            if tail in _SAFE_BUILTINS:
                continue
            resolved = resolver.resolve(dotted, class_ctx) \
                if dotted else None
            if not (resolved or "").startswith(("numpy.", "scipy.")):
                return (f"{name} is passed to "
                        f"{dotted or 'a call'}(), which may retain it")
    return None


def _fill_value(ctx: _ModuleCtx, call: ast.Call,
                tail: str) -> Tuple[bool, Optional[str]]:
    """``(ok, fill source or None)`` — ``None`` means no fill needed."""
    spec = _HOIST_CTORS[tail]
    if spec is None:
        return True, None                         # empty: garbage anyway
    if spec:
        return True, spec                         # zeros / ones
    if len(call.args) >= 2:                       # full(shape, value)
        return True, ctx.segment(call.args[1])
    for kw in call.keywords:
        if kw.arg == "fill_value":
            return True, ctx.segment(kw.value)
    return False, None


def _mutated_in(loop: ast.AST, name: str) -> bool:
    """True when ``name[...]`` is written to anywhere in ``loop``."""
    for sub in ast.walk(loop):
        targets = []
        if isinstance(sub, ast.Assign):
            targets = sub.targets
        elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
            targets = [sub.target]
        for target in targets:
            if isinstance(target, ast.Subscript) \
                    and _is_name(target.value, name):
                return True
        if isinstance(sub, ast.Call) \
                and isinstance(sub.func, ast.Attribute) \
                and _is_name(sub.func.value, name) \
                and sub.func.attr in ("fill", "sort", "resize", "put",
                                      "setfield", "itemset"):
            return True
    return False


def _plan_rv702(ctx: _ModuleCtx, diag: Diagnostic) -> FixPlan:
    line = diag.location.line
    plan = FixPlan(code="RV702", path=ctx.path, line=line,
                   message=diag.message, fixable=False)
    if diag.message.startswith("loop calls"):
        plan.reason = ("the allocation lives in a callee; hoist it "
                       "there or thread a buffer through the call")
        return plan
    hit = None
    for node, loops, func, class_ctx in ctx.find(line, ast.Assign):
        if loops and isinstance(node.value, ast.Call):
            hit = (node, loops, func, class_ctx)
            break
    if hit is None:
        plan.reason = ("allocation is not a simple "
                       "`name = ctor(...)` statement")
        return plan
    node, loops, func, class_ctx = hit
    call = node.value
    dotted = dataflow._call_target(call) or ""
    tail = dotted.rsplit(".", 1)[-1]
    if tail not in _HOIST_CTORS:
        plan.reason = (f"{tail}() is not a mechanically hoistable "
                       "constructor (zeros/ones/empty/full)")
        return plan
    if len(node.targets) != 1 \
            or not isinstance(node.targets[0], ast.Name):
        plan.reason = "allocation target is not a single local name"
        return plan
    name = node.targets[0].id
    loop = loops[-1]
    loop_stores = _stored_names(loop)
    varying = sorted(_loaded_names(call) & loop_stores)
    if varying:
        plan.reason = ("constructor arguments depend on loop-varying "
                       + "/".join(varying))
        return plan
    indent = ctx.indent_of(loop)
    stmt_indent = ctx.indent_of(node)
    if indent is None or stmt_indent is None:
        plan.reason = "loop or allocation shares its line (one-liner)"
        return plan
    ctor_src = ctx.segment(call)
    if ctor_src is None or node.lineno != getattr(node, "end_lineno",
                                                  node.lineno):
        plan.reason = "allocation statement spans multiple lines"
        return plan
    resolver = ctx.resolver()
    target_node = node.targets[0]
    rebound = any(
        n is not target_node and isinstance(n, ast.Name)
        and n.id == name and isinstance(n.ctx, ast.Store)
        for n in ast.walk(loop))
    if not _mutated_in(loop, name) and not rebound:
        # Pure hoist: the array is read-only in the loop — the very
        # same object can simply be built once, above it.
        plan.fixable = True
        plan.description = (f"hoist `{name} = {ctor_src}` above the "
                            f"loop at line {loop.lineno} (read-only in "
                            "the loop)")
        plan.edits = [
            Edit(kind="insert-before", line=loop.lineno,
                 text=(f"{indent}{name} = {ctor_src}",)),
            Edit(kind="replace-lines", line=node.lineno,
                 end_line=node.lineno, text=()),
        ]
        return plan
    reason = _retention_reason(ctx, loop, name, node, resolver,
                               class_ctx)
    if reason is not None:
        plan.reason = reason
        return plan
    ok, fill = _fill_value(ctx, call, tail)
    if not ok:
        plan.reason = "cannot determine the fill value"
        return plan
    buf = ctx.fresh_name(func, f"{name}_buf")
    body = [f"{stmt_indent}{name} = {buf}"]
    if fill is not None:
        body.append(f"{stmt_indent}{name}.fill({fill})")
    plan.fixable = True
    plan.description = (f"preallocate `{buf} = {ctor_src}` above the "
                        f"loop at line {loop.lineno}; reset it in "
                        "place each iteration")
    plan.edits = [
        Edit(kind="insert-before", line=loop.lineno,
             text=(f"{indent}{buf} = {ctor_src}",)),
        Edit(kind="replace-lines", line=node.lineno,
             end_line=node.lineno, text=tuple(body)),
    ]
    return plan


# ---------------------------------------------------------------------------
# RV703: hoist a topology-invariant call out of the loop


def _plan_rv703(ctx: _ModuleCtx, diag: Diagnostic) -> FixPlan:
    line = diag.location.line
    plan = FixPlan(code="RV703", path=ctx.path, line=line,
                   message=diag.message, fixable=False)
    hit = None
    for node, loops, func, class_ctx in ctx.find(line, ast.Call):
        if loops and isinstance(node.func, ast.Attribute) \
                and node.func.attr in _INVARIANT_TAILS:
            hit = (node, loops, func)
            break
    if hit is None:
        plan.reason = "no invariant call found at the reported line"
        return plan
    node, loops, func = hit
    tail = node.func.attr
    if node.args or node.keywords:
        plan.reason = f".{tail}() call has arguments"
        return plan
    recv = node.func.value
    probe = recv
    while isinstance(probe, ast.Attribute):
        probe = probe.value
    if not isinstance(probe, ast.Name):
        plan.reason = "receiver is not a simple name or dotted name"
        return plan
    loop = loops[-1]
    if probe.id in _stored_names(loop):
        plan.reason = (f"receiver {probe.id} is reassigned inside "
                       "the loop")
        return plan
    indent = ctx.indent_of(loop)
    if indent is None:
        plan.reason = "loop shares its line (one-liner)"
        return plan
    if node.lineno != getattr(node, "end_lineno", node.lineno):
        plan.reason = "call spans multiple lines"
        return plan
    # A hoisted value is consumed N times instead of once, so the call
    # must either be the iterable of a ``for`` statement (materialise
    # with ``list(...)`` — exhaustible iterators like ``elements()``
    # stay correct) or come from a tail known to return a stable value.
    for_stmt = next((f for f in ast.walk(func)
                     if isinstance(f, ast.For) and f.iter is node), None)
    if for_stmt is None and tail not in _STABLE_VALUE_TAILS:
        plan.reason = (f".{tail}() may return a one-shot iterator; "
                       "only hoistable as a for-loop iterable")
        return plan
    recv_src = ctx.segment(recv)
    call_src = f"{recv_src}.{tail}()"
    hoist_src = f"list({call_src})" if for_stmt is not None else call_src
    stem = re.sub(r"\W+", "_", recv_src or probe.id) + f"_{tail}"
    fresh = ctx.fresh_name(func, stem)
    plan.fixable = True
    plan.description = (f"evaluate `{fresh} = {hoist_src}` "
                        f"once above the loop at line {loop.lineno}")
    plan.edits = [
        Edit(kind="insert-before", line=loop.lineno,
             text=(f"{indent}{fresh} = {hoist_src}",)),
        Edit(kind="replace-span", line=node.lineno,
             col=node.col_offset, end_col=node.end_col_offset,
             span_text=fresh),
    ]
    return plan


# ---------------------------------------------------------------------------
# RV803: repeated-index += to the unbuffered ufunc.at form


def _plan_rv803(ctx: _ModuleCtx, diag: Diagnostic) -> FixPlan:
    line = diag.location.line
    plan = FixPlan(code="RV803", path=ctx.path, line=line,
                   message=diag.message, fixable=False)
    hit = None
    for node, _loops, _func, _cls in ctx.find(line, ast.AugAssign):
        if isinstance(node.target, ast.Subscript):
            hit = node
            break
    if hit is None:
        plan.reason = "no subscripted augmented assignment at the line"
        return plan
    func_name = _AT_FUNCS.get(type(hit.op))
    if func_name is None:
        plan.reason = (f"operator {type(hit.op).__name__} has no "
                       "ufunc.at form")
        return plan
    if hit.lineno != getattr(hit, "end_lineno", hit.lineno):
        plan.reason = "statement spans multiple lines"
        return plan
    alias = ctx.numpy_alias()
    if alias is None:
        plan.reason = "module does not import numpy"
        return plan
    base = ctx.segment(hit.target.value)
    index = ctx.segment(hit.target.slice)
    value = ctx.segment(hit.value)
    if None in (base, index, value):
        plan.reason = "cannot recover source text for the statement"
        return plan
    rewritten = f"{alias}.{func_name}.at({base}, {index}, {value})"
    plan.fixable = True
    plan.description = f"rewrite to `{rewritten}` (unbuffered update)"
    plan.edits = [
        Edit(kind="replace-span", line=hit.lineno, col=hit.col_offset,
             end_col=hit.end_col_offset, span_text=rewritten),
    ]
    return plan


# ---------------------------------------------------------------------------
# RV900: bare durable write_text to the shared atomic-write helper


_ATOMIC_IMPORT = "from repro.exec.atomicio import atomic_write_text"


def _has_atomic_import(ctx: _ModuleCtx) -> bool:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom) \
                and (node.module or "").endswith("exec.atomicio") \
                and any(a.name == "atomic_write_text"
                        for a in node.names):
            return True
    return False


def _import_anchor(ctx: _ModuleCtx) -> Tuple[int, str]:
    """``(line, indent)`` where a module-level import can be inserted.

    After the last top-level import when there is one (the idiomatic
    spot), else before the first non-docstring statement.
    """
    last_import = None
    for node in ctx.tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            last_import = node
    if last_import is not None:
        end = getattr(last_import, "end_lineno", last_import.lineno)
        return end + 1, ""
    for node in ctx.tree.body:
        if isinstance(node, ast.Expr) \
                and isinstance(node.value, ast.Constant) \
                and isinstance(node.value.value, str):
            continue                              # module docstring
        return node.lineno, ""
    return 1, ""


def _plan_rv900(ctx: _ModuleCtx, diag: Diagnostic) -> FixPlan:
    line = diag.location.line
    plan = FixPlan(code="RV900", path=ctx.path, line=line,
                   message=diag.message, fixable=False)
    hit = None
    for node, _loops, _func, _cls in ctx.find(line, ast.Expr):
        call = node.value
        if isinstance(call, ast.Call) \
                and isinstance(call.func, ast.Attribute) \
                and call.func.attr == "write_text":
            hit = (node, call)
            break
    if hit is None:
        plan.reason = ("write is not a bare statement-level "
                       "`path.write_text(...)` (open()-based writers "
                       "need a structural rewrite)")
        return plan
    node, call = hit
    if node.lineno != getattr(node, "end_lineno", node.lineno):
        plan.reason = "statement spans multiple lines"
        return plan
    if len(call.args) not in (1, 2):
        plan.reason = "write_text call has an unexpected arity"
        return plan
    if any(kw.arg not in ("encoding",) for kw in call.keywords):
        plan.reason = ("write_text keywords beyond `encoding` have no "
                       "atomic_write_text equivalent")
        return plan
    recv = ctx.segment(call.func.value)
    text_src = ctx.segment(call.args[0])
    if recv is None or text_src is None:
        plan.reason = "cannot recover source text for the call"
        return plan
    pieces = [recv, text_src]
    if len(call.args) == 2:                       # write_text(t, enc)
        enc = ctx.segment(call.args[1])
        pieces.append(f"encoding={enc}")
    for kw in call.keywords:
        pieces.append(f"encoding={ctx.segment(kw.value)}")
    rewritten = f"atomic_write_text({', '.join(pieces)})"
    plan.fixable = True
    plan.description = (f"rewrite to `{rewritten}` (stage + fsync + "
                        "rename via repro.exec.atomicio)")
    plan.edits = [
        Edit(kind="replace-span", line=call.lineno,
             col=call.col_offset, end_col=call.end_col_offset,
             span_text=rewritten),
    ]
    if not _has_atomic_import(ctx):
        anchor, indent = _import_anchor(ctx)
        plan.edits.append(
            Edit(kind="insert-before", line=anchor,
                 text=(f"{indent}{_ATOMIC_IMPORT}",)))
    return plan


# ---------------------------------------------------------------------------
# Driver


_PLANNERS = {"RV702": _plan_rv702, "RV703": _plan_rv703,
             "RV803": _plan_rv803, "RV900": _plan_rv900}


def plan_fixes(report: Report,
               rules: Optional[Iterable[str]] = None) -> List[FixPlan]:
    """Turn a lint report into per-finding fix plans.

    Only :data:`FIXABLE_RULES` are considered (optionally narrowed by
    ``rules``); every matching finding yields exactly one
    :class:`FixPlan` — fixable with edits, or skipped with a reason.
    Findings without a source location (or whose file cannot be
    re-parsed) are skipped, never guessed at.
    """
    wanted = set(rules) if rules is not None else set(FIXABLE_RULES)
    wanted &= set(FIXABLE_RULES)
    per_file: Dict[str, List[Diagnostic]] = {}
    for diag in report.diagnostics:
        if diag.code in wanted and diag.location is not None \
                and diag.target:
            per_file.setdefault(diag.target, []).append(diag)
    plans: List[FixPlan] = []
    for path in sorted(per_file):
        try:
            ctx = _ModuleCtx(path, open(path, encoding="utf-8").read())
        except (OSError, SyntaxError) as err:
            for diag in per_file[path]:
                plans.append(FixPlan(
                    code=diag.code, path=path, line=diag.location.line,
                    message=diag.message, fixable=False,
                    reason=f"cannot re-analyse module: {err}"))
            continue
        for diag in sorted(per_file[path],
                           key=lambda d: (d.location.line, d.code)):
            plans.append(_PLANNERS[diag.code](ctx, diag))
    return _dedupe_inserts(plans)


def _dedupe_inserts(plans: List[FixPlan]) -> List[FixPlan]:
    """Drop byte-identical insert-before edits across plans.

    Two findings in one loop can both hoist the same invariant line
    (e.g. the same ``recv.elements()`` flagged twice); keeping one
    insertion keeps the rewrite idempotent and collision-free.
    """
    seen: Set[Tuple[str, int, Tuple[str, ...]]] = set()
    for plan in plans:
        kept = []
        for edit in plan.edits:
            if edit.kind == "insert-before":
                key = (plan.path, edit.line, edit.text)
                if key in seen:
                    continue
                seen.add(key)
            kept.append(edit)
        plan.edits = kept
    return plans


def rewritten_texts(plans: Sequence[FixPlan]) -> Dict[str, Tuple[str,
                                                                 str]]:
    """``{path: (before, after)}`` for every path a plan changes."""
    per_file: Dict[str, List[Edit]] = {}
    for plan in plans:
        if plan.fixable:
            per_file.setdefault(plan.path, []).extend(plan.edits)
    out: Dict[str, Tuple[str, str]] = {}
    for path, edits in sorted(per_file.items()):
        before = open(path, encoding="utf-8").read()
        after = apply_edits(before, edits)
        if after != before:
            out[path] = (before, after)
    return out
