"""Crash-injection cross-validator for the RV9xx band (RV900/RV901).

Static rules claim *"this write pattern tears on a crash"*; this
harness demonstrates it.  ``python -m repro chaos --crashpoints`` runs
each durable-write pattern in a **real child process** that is killed
(``os._exit``) at every instrumented boundary of the
:mod:`repro.exec.atomicio` protocol — ``post-write``, ``pre-fsync``,
``pre-rename``, ``post-rename`` — and then checks the survivor's view
of the file:

* **bare-overwrite** — the RV900 *pre-fix* pattern (``open(path,
  "w")`` over live data).  The kill mid-write must leave a torn or
  truncated file: the hazard the rule reports, demonstrated.
* **atomic-replace** — the fixed pattern
  (:func:`repro.exec.atomicio.atomic_write_text`).  At every
  crashpoint the reader must see *either* the complete old value or
  the complete new value — never a mixture.
* **journal-append** — a child is killed halfway through appending a
  record; :meth:`repro.exec.journal.Journal.replay` must recover every
  fully-appended record and drop at most the torn tail.

Process death does **not** empty the OS page cache, so the RV901
fsync-ordering hazard (rename durable, data blocks not) cannot be
shown by killing a child.  The two ``*-rename`` scenarios instead use
an explicit *disk model*: data written without ``fsync`` is treated as
lost on power failure (the file's blocks are truncated after the
rename), data written with ``fsync`` as durable.  This emulates the
journalled-metadata/unflushed-data state a machine crash leaves behind
— the standard crash-consistency failure mode — and is labelled
``emulated`` in the report.

The harness fails (exit 1) if a *fixed* pattern loses data **or** a
*pre-fix* pattern fails to demonstrate its hazard — either direction
means the static rules and reality have drifted apart.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from ..exec import atomicio
from ..exec.journal import Journal

#: Child exit status at an armed crashpoint — distinguishable from a
#: normal exit (0) and from an import/usage failure (1/2).
CRASH_EXIT = 9

OLD_PAYLOAD = {"value": "old", "rev": 1}
NEW_PAYLOAD = {"value": "new", "rev": 2}

#: ``python -c`` crash vehicle.  The child loads ``atomicio`` straight
#: from its file (no package import: the vehicle must stay stdlib-light
#: and die only where it is told to), arms the crash hook, and runs one
#: writer.  argv: atomicio_path scenario crashpoint target payload.
_CHILD_SCRIPT = r"""
import importlib.util, json, os, sys
atomicio_path, scenario, point, target, payload = sys.argv[1:6]
spec = importlib.util.spec_from_file_location("_atomicio", atomicio_path)
atomicio = importlib.util.module_from_spec(spec)
spec.loader.exec_module(atomicio)

def die(at):
    if at == point:
        os._exit(9)

if scenario == "bare-overwrite":
    with open(target, "w", encoding="utf-8") as fh:
        fh.write(payload[: len(payload) // 2])
        fh.flush()
        die("post-write")          # torn: half the new, none of the old
        fh.write(payload[len(payload) // 2:])
elif scenario == "atomic-replace":
    atomicio._CRASH_HOOK = die
    atomicio.atomic_write_text(target, payload)
elif scenario == "journal-append":
    line = json.dumps({"event": "torn", "seq": 99}) + "\n"
    with open(target, "a", encoding="utf-8") as fh:
        fh.write(line[: len(line) // 2])
        fh.flush()
        die("post-write")
else:
    sys.exit(2)
sys.exit(0)
"""


def _spawn_child(scenario: str, point: str, target: Path,
                 payload: str) -> int:
    """Run one crash vehicle to its armed crashpoint; return exit code."""
    argv = [sys.executable, "-c", _CHILD_SCRIPT, atomicio.__file__,
            scenario, point, str(target), payload]
    return subprocess.run(argv, capture_output=True,
                          timeout=60).returncode


def _classify(target: Path) -> str:
    """Reader-side view: ``old`` / ``new`` / ``missing`` / ``torn``."""
    try:
        payload = json.loads(target.read_text(encoding="utf-8"))
    except FileNotFoundError:
        return "missing"
    except (json.JSONDecodeError, OSError):
        return "torn"
    if payload == OLD_PAYLOAD:
        return "old"
    if payload == NEW_PAYLOAD:
        return "new"
    return "torn"


def _result(scenario: str, point: str, state: str, expected: str,
            ok: bool, *, emulated: bool = False,
            detail: str = "") -> Dict[str, Any]:
    return {"scenario": scenario, "crashpoint": point, "state": state,
            "expected": expected, "ok": ok, "emulated": emulated,
            "detail": detail}


def _check_bare_overwrite(scratch: Path) -> List[Dict[str, Any]]:
    """RV900 pre-fix pattern: the kill must destroy the old value."""
    target = scratch / "bare.json"
    atomicio.atomic_write_text(target, json.dumps(OLD_PAYLOAD))
    code = _spawn_child("bare-overwrite", "post-write", target,
                        json.dumps(NEW_PAYLOAD))
    state = _classify(target)
    ok = code == CRASH_EXIT and state == "torn"
    return [_result(
        "bare-overwrite", "post-write", state, "torn", ok,
        detail="open('w') truncates before writing: the old value is "
               "gone the moment the crash lands")]


def _check_atomic_replace(scratch: Path) -> List[Dict[str, Any]]:
    """Fixed pattern: old-or-new at every protocol boundary."""
    results = []
    for point in atomicio.CRASHPOINTS:
        target = scratch / f"atomic-{point}.json"
        atomicio.atomic_write_text(target, json.dumps(OLD_PAYLOAD))
        code = _spawn_child("atomic-replace", point, target,
                            json.dumps(NEW_PAYLOAD))
        state = _classify(target)
        expected = "new" if point == "post-rename" else "old"
        ok = code == CRASH_EXIT and state == expected
        results.append(_result("atomic-replace", point, state,
                               expected, ok))
    return results


def _check_journal_append(scratch: Path) -> List[Dict[str, Any]]:
    """Torn append: replay keeps every complete record, drops the tail."""
    path = scratch / "crash.journal"
    journal = Journal(path)
    journal.append({"event": "begin", "seq": 1})
    journal.append({"event": "task_end", "seq": 2})
    code = _spawn_child("journal-append", "post-write", path, "")
    records = journal.replay()
    seqs = [r.get("seq") for r in records]
    ok = code == CRASH_EXIT and seqs == [1, 2]
    return [_result(
        "journal-append", "post-write",
        f"{len(records)} records", "2 records", ok,
        detail="crash mid-append loses at most the torn record")]


def _disk_model_rename(scratch: Path, *, fsync: bool) -> Dict[str, Any]:
    """RV901 disk model: stage + rename, power lost right after.

    The rename itself is treated as durable (journalled metadata); the
    staged file's *data blocks* survive only if they were fsynced
    before the rename.  Without the fsync the reader finds the new
    name pointing at zero-length contents — the torn state RV901
    reports.
    """
    name = "fsync-rename" if fsync else "nofsync-rename"
    target = scratch / f"{name}.json"
    fd, tmp = tempfile.mkstemp(dir=scratch)
    with os.fdopen(fd, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(NEW_PAYLOAD))
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
    os.replace(tmp, target)
    if not fsync:                   # power failure: unflushed data lost
        with open(target, "r+b") as handle:
            handle.truncate(0)
    state = _classify(target)
    expected = "new" if fsync else "torn"
    return _result(name, "post-rename", state, expected,
                   state == expected, emulated=True,
                   detail="machine-crash page-cache drop (emulated)")


def run_crashpoints(scratch: Optional[str] = None,
                    progress: Optional[Callable[[str], None]] = None,
                    ) -> Dict[str, Any]:
    """Run every scenario; return a JSON-ready report.

    ``ok`` is true only when the fixed patterns survive **and** the
    pre-fix patterns demonstrably fail — both directions are asserted.
    """
    root = Path(scratch or tempfile.mkdtemp(prefix="repro-crashcheck-"))
    root.mkdir(parents=True, exist_ok=True)
    results: List[Dict[str, Any]] = []
    for step in (_check_bare_overwrite, _check_atomic_replace,
                 _check_journal_append):
        chunk = step(root)
        results.extend(chunk)
        if progress is not None:
            for entry in chunk:
                progress(f"  {entry['scenario']}@{entry['crashpoint']}"
                         f": {entry['state']}")
    for fsync in (False, True):
        entry = _disk_model_rename(root, fsync=fsync)
        results.append(entry)
        if progress is not None:
            progress(f"  {entry['scenario']}@{entry['crashpoint']}"
                     f": {entry['state']}")
    return {
        "ok": all(r["ok"] for r in results),
        "crashpoints": list(atomicio.CRASHPOINTS),
        "results": results,
        "scratch": str(root),
    }


def render_crashpoints(report: Dict[str, Any]) -> str:
    """Human-readable scenario table."""
    lines = ["crashpoint cross-validation "
             f"({'PASS' if report['ok'] else 'FAIL'})"]
    for entry in report["results"]:
        flag = "ok " if entry["ok"] else "BAD"
        tag = " [emulated]" if entry.get("emulated") else ""
        lines.append(
            f"  {flag} {entry['scenario']:16s} "
            f"@{entry['crashpoint']:<11s} -> {entry['state']:<10s} "
            f"(want {entry['expected']}){tag}")
    lines.append(
        "  pre-fix patterns must tear; atomicio/journal must not")
    return "\n".join(lines)
