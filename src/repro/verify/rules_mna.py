"""Structural MNA solvability check (RV2xx).

A Newton-Raphson iteration can only work if the DC Jacobian admits a
perfect matching between equations (matrix rows) and unknowns (columns)
— a *structural* property of where elements stamp, independent of
operating point.  This module rebuilds that zero/nonzero pattern from
each element's :meth:`~repro.circuit.netlist.Element.stamp_pattern` and
runs Kuhn's augmenting-path algorithm for maximum bipartite matching; an
unmatched row or column pinpoints the equation/unknown that makes the
matrix singular for *every* parameter value (the Dulmage-Mendelsohn
"structurally deficient" part), long before the solver wastes
iterations discovering it as a numerical blow-up.

Classic triggers in this codebase's domain:

* a node touched only by current sources (no element determines its
  voltage — its KCL row is empty);
* a floating FinFET gate (zero gate current means the FinFET contributes
  no row for the gate node; something else must pin it);
* a voltage source whose branch current appears in no KCL row because
  both terminals are ground aliases.

Nodes connected only to capacitors are *excluded* from the test: at DC
they are singular by design and the solver's gmin handles them — rule
RV002 already reports them as warnings.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set

from ..circuit.netlist import Circuit
from ..circuit.passives import Capacitor
from .core import Finding, rule
from .rules_circuit import _compiles


def stamp_incidence(circuit: Circuit, mode: str = "dc") -> Dict[int, Set[int]]:
    """Row -> columns map of possible MNA matrix entries.

    Ground rows/columns (index -1) are dropped; the circuit must be
    compiled (callers go through :func:`structural_deficiency` or
    compile themselves).
    """
    incidence: Dict[int, Set[int]] = {}
    for element in circuit.elements():
        for row, col in element.stamp_pattern(mode):
            if row >= 0 and col >= 0:
                incidence.setdefault(row, set()).add(col)
    return incidence


def _maximum_matching(rows: List[int],
                      incidence: Dict[int, Set[int]],
                      allowed_cols: Set[int]) -> Dict[int, int]:
    """Kuhn's algorithm: maximum matching row -> column.

    Iterative augmenting-path search (explicit stack) so deep
    alternating paths in large arrays cannot hit the recursion limit.
    Returns the ``row -> col`` matching.
    """
    match_col: Dict[int, int] = {}   # col -> row
    match_row: Dict[int, int] = {}   # row -> col

    def neighbours(r: int) -> List[int]:
        return sorted(c for c in incidence.get(r, ()) if c in allowed_cols)

    for start in rows:
        if start in match_row:
            continue
        # DFS over alternating paths from the free row `start`.
        stack = [(start, iter(neighbours(start)))]
        parent: Dict[int, int] = {}     # col -> row that discovered it
        visited: Set[int] = set()
        while stack:
            r, it = stack[-1]
            for col in it:
                if col in visited:
                    continue
                visited.add(col)
                parent[col] = r
                owner = match_col.get(col)
                if owner is None:
                    # Free column: flip the alternating path end-to-end.
                    cur: int | None = col
                    while cur is not None:
                        claimer = parent[cur]
                        nxt = match_row.get(claimer)
                        match_col[cur] = claimer
                        match_row[claimer] = cur
                        cur = nxt
                    stack.clear()
                else:
                    stack.append((owner, iter(neighbours(owner))))
                break
            else:
                stack.pop()
    return match_row


def _capacitor_only_indices(circuit: Circuit) -> Set[int]:
    """MNA indices of nodes whose every connection is a capacitor."""
    out: Set[int] = set()
    for node in circuit.node_names():
        touching = circuit.nodes_touching(node)
        if touching and all(isinstance(e, Capacitor) for e in touching):
            out.add(circuit.index_of(node))
    return out


def _unknown_name(circuit: Circuit, index: int):
    """(subject, description) of MNA unknown ``index``."""
    names = circuit.node_names()
    if 0 <= index < len(names):
        return names[index], f"node {names[index]!r}"
    for element in circuit.elements():
        if index in element.branch_index:
            return element.name, f"the branch current of {element.name}"
    return str(index), f"unknown #{index}"   # pragma: no cover - defensive


def structural_deficiency(circuit: Circuit,
                          mode: str = "dc") -> List[int]:
    """Indices of MNA rows/columns left unmatched by a maximum matching.

    Empty list means the matrix is structurally nonsingular; parameter
    cancellations can still make it *numerically* singular at specific
    values.  The converse subsumes the voltage-source topology errors:
    source loops and parallel sources (RV004/RV005) are structurally
    deficient too, so they additionally surface here — RV004/RV005
    remain the actionable diagnosis, RV201 the generic backstop.
    Capacitor-only nodes are exempted (gmin territory, see module
    docstring).
    """
    circuit.compile()
    exempt = _capacitor_only_indices(circuit) if mode == "dc" else set()
    active = [i for i in range(circuit.size) if i not in exempt]
    allowed = set(active)
    incidence = {
        row: cols for row, cols in stamp_incidence(circuit, mode).items()
        if row in allowed
    }
    match_row = _maximum_matching(active, incidence, allowed)
    unmatched_rows = [i for i in active if i not in match_row]
    matched_cols = set(match_row.values())
    unmatched_cols = [i for i in active if i not in matched_cols]
    return sorted(set(unmatched_rows) | set(unmatched_cols))


@rule("RV201", "structural-singularity", "circuit", "error",
      "The DC MNA matrix is structurally singular",
      "When no perfect row/column matching exists, the Jacobian is "
      "singular at every operating point: Newton-Raphson cannot even "
      "start, and the failure surfaces as an opaque linear-algebra or "
      "convergence error deep inside the solver.  Flagging the exact "
      "equation/unknown here turns that into an actionable netlist fix.")
def check_structural_singularity(circuit: Circuit) -> Iterator[Finding]:
    """Bipartite-matching rank test on the DC stamp pattern."""
    if not _compiles(circuit):
        return
    deficient = structural_deficiency(circuit, mode="dc")
    for index in deficient:
        subject, what = _unknown_name(circuit, index)
        yield Finding(
            subject=subject,
            message=(f"no MNA equation can determine {what}: the DC "
                     "Jacobian is structurally singular (check for "
                     "current-source-only nodes or floating FinFET "
                     "gates)"),
        )
