"""Fig. 8 — E_cyc vs t_SD and the break-even-time crossover.

* (a) E_cyc(t_SD) for the three architectures at fixed n_RW: straight
  lines whose slopes are the standby static powers; the NVPG/OSR crossing
  is the BET.
* (b) E_cyc normalised by OSR for n_RW = 10, 100, 1000: the BET is where
  a curve crosses 1.0.  The closed-form BET of :mod:`repro.pg.bet` is
  reported next to the numerically extracted crossing as a consistency
  check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cells import PowerDomain
from ..pg.bet import BetResult, bet_curve_crossing, break_even_time
from ..pg.sequences import Architecture, BenchmarkSpec
from ..units import format_eng
from .context import ExperimentContext
from .report import render_table

ARCHES = (Architecture.OSR, Architecture.NVPG, Architecture.NOF)


@dataclass
class Fig8Curve:
    """One normalised E_cyc(t_SD) family member."""

    architecture: Architecture
    n_rw: int
    t_sd: np.ndarray
    e_cyc: np.ndarray
    e_cyc_normalised: np.ndarray
    bet_numeric: Optional[float]
    bet_closed_form: BetResult


@dataclass
class Fig8Result:
    t_sd: np.ndarray
    absolute: Dict[str, np.ndarray]   # panel (a): arch -> E_cyc at n_rw_a
    n_rw_panel_a: int
    curves: List[Fig8Curve]           # panel (b)

    def render(self) -> str:
        rows_a = [
            (format_eng(float(t), "s"),) + tuple(
                float(self.absolute[a.value][i]) for a in ARCHES
            )
            for i, t in enumerate(self.t_sd)
        ]
        parts = [render_table(
            ("t_SD", "OSR [J]", "NVPG [J]", "NOF [J]"),
            rows_a,
            title=f"Fig. 8(a): E_cyc vs t_SD (n_RW = {self.n_rw_panel_a})",
        )]
        rows_b = []
        for c in self.curves:
            rows_b.append((
                c.architecture.value, c.n_rw,
                format_eng(c.bet_closed_form.bet, "s"),
                "-" if c.bet_numeric is None else format_eng(c.bet_numeric, "s"),
            ))
        parts.append(render_table(
            ("arch", "n_RW", "BET (closed form)", "BET (curve crossing)"),
            rows_b,
            title="Fig. 8(b): break-even times",
        ))
        return "\n\n".join(parts)


def run_fig8(ctx: Optional[ExperimentContext] = None,
             domain: Optional[PowerDomain] = None,
             n_rw_values: Sequence[int] = (10, 100, 1000),
             t_sl: float = 100e-9,
             t_sd_points: int = 61,
             t_sd_max: float = 100e-3,
             workers: Optional[int] = None,
             journal=None) -> Fig8Result:
    """Regenerate Fig. 8.

    ``workers`` prewarms the cell characterisations through a
    fault-tolerant :mod:`repro.exec` campaign; the assembly is serial
    either way, so the numbers are identical.
    """
    ctx = ctx or ExperimentContext()
    domain = domain or PowerDomain()
    if workers is not None:
        ctx.prewarm([(domain, None, None)], workers=workers,
                    journal=journal, name="fig8")
    model = ctx.energy_model(domain)
    t_sd = np.logspace(-6, np.log10(t_sd_max), t_sd_points)

    def curve(arch: Architecture, n_rw: int) -> np.ndarray:
        return np.array([
            model.e_cyc(BenchmarkSpec(architecture=arch, n_rw=n_rw,
                                      t_sl=t_sl, t_sd=float(t)))
            for t in t_sd
        ])

    n_rw_a = n_rw_values[0]
    absolute = {a.value: curve(a, n_rw_a) for a in ARCHES}

    curves: List[Fig8Curve] = []
    for n_rw in n_rw_values:
        e_osr = curve(Architecture.OSR, n_rw)
        for arch in (Architecture.NVPG, Architecture.NOF):
            e_arch = curve(arch, n_rw)
            curves.append(Fig8Curve(
                architecture=arch,
                n_rw=n_rw,
                t_sd=t_sd,
                e_cyc=e_arch,
                e_cyc_normalised=e_arch / e_osr,
                bet_numeric=bet_curve_crossing(t_sd, e_arch, e_osr),
                bet_closed_form=break_even_time(model, arch, n_rw=n_rw,
                                                t_sl=t_sl),
            ))
    return Fig8Result(
        t_sd=t_sd,
        absolute=absolute,
        n_rw_panel_a=n_rw_a,
        curves=curves,
    )
