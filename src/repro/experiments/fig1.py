"""Fig. 1 — time evolution of power dissipation: NVPG vs NOF.

The paper's Fig. 1 is a conceptual staircase; this experiment draws the
same picture from *simulated* numbers: the per-mode powers of the
characterised cell laid out along the Fig. 5 schedules, rendered as a
piecewise-constant power timeline (and an ASCII staircase for the
report).  NVPG shows long active plateaus with one store spike before a
deep shutdown; NOF shows an off-baseline punctuated by access+store
bursts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..cells import PowerDomain
from ..pg.modes import Mode, OperatingConditions
from ..pg.sequences import Architecture, BenchmarkSpec, benchmark_sequence
from ..units import format_eng
from .context import ExperimentContext


@dataclass
class PowerTimeline:
    """A piecewise-constant power profile: level per schedule window."""

    architecture: Architecture
    times: np.ndarray       # window start times, plus the final end time
    levels: np.ndarray      # one power level per window (W per cell)
    labels: List[str]

    @property
    def duration(self) -> float:
        return float(self.times[-1])

    def average_power(self) -> float:
        widths = np.diff(self.times)
        return float(np.sum(widths * self.levels) / self.duration)


@dataclass
class Fig1Result:
    timelines: List[PowerTimeline]

    def render(self, width: int = 68, height: int = 10) -> str:
        parts = []
        for tl in self.timelines:
            parts.append(
                f"Fig. 1 power timeline [{tl.architecture.value.upper()}]: "
                f"{format_eng(tl.duration, 's')} total, "
                f"avg {format_eng(tl.average_power(), 'W')} per cell"
            )
            parts.append(_ascii_staircase(tl, width, height))
        return "\n\n".join(parts)


def _mode_power(char, mode: Mode, cond: OperatingConditions) -> float:
    """Average per-cell power of one schedule window."""
    t_cyc = cond.t_cycle
    if mode is Mode.READ:
        return char.e_read / t_cyc
    if mode is Mode.WRITE:
        return char.e_write / t_cyc
    if mode is Mode.STANDBY:
        return char.p_normal
    if mode is Mode.SLEEP:
        return char.p_sleep
    if mode in (Mode.STORE_H, Mode.STORE_L):
        return char.e_store / max(char.t_store, 1e-12)
    if mode is Mode.SHUTDOWN:
        return char.p_shutdown
    if mode is Mode.RESTORE:
        return char.e_restore / max(char.t_restore, 1e-12)
    raise ValueError(f"unknown mode {mode}")


def run_fig1(ctx: Optional[ExperimentContext] = None,
             domain: Optional[PowerDomain] = None,
             n_rw: int = 3,
             t_sl: float = 30e-9,
             t_sd: float = 60e-9) -> Fig1Result:
    """Build the NVPG and NOF power timelines of Fig. 1."""
    ctx = ctx or ExperimentContext()
    domain = domain or PowerDomain()
    timelines = []
    for arch in (Architecture.NVPG, Architecture.NOF):
        char = ctx.characterization("nv", domain)
        spec = BenchmarkSpec(architecture=arch, n_rw=n_rw, t_sl=t_sl,
                             t_sd=t_sd)
        schedule = benchmark_sequence(spec, ctx.cond)
        windows = schedule.windows()
        times = np.array([w.t_start for w in windows]
                         + [windows[-1].t_end])
        levels = np.array([
            _mode_power(char, w.mode, ctx.cond) for w in windows
        ])
        timelines.append(PowerTimeline(
            architecture=arch,
            times=times,
            levels=levels,
            labels=[w.mode.value for w in windows],
        ))
    return Fig1Result(timelines=timelines)


def _ascii_staircase(tl: PowerTimeline, width: int, height: int) -> str:
    """Log-power staircase plot, one character column per time bin."""
    floor = max(tl.levels[tl.levels > 0].min() / 3, 1e-12)
    log_levels = np.log10(np.maximum(tl.levels, floor))
    lo, hi = np.log10(floor), log_levels.max()
    span = max(hi - lo, 1e-9)

    grid = [[" "] * width for _ in range(height)]
    for col in range(width):
        t = (col + 0.5) / width * tl.duration
        idx = int(np.searchsorted(tl.times, t, side="right") - 1)
        idx = min(max(idx, 0), len(tl.levels) - 1)
        frac = (log_levels[idx] - lo) / span
        row_top = int(round((1.0 - frac) * (height - 1)))
        grid[row_top][col] = "_" if frac < 1.0 else "#"
        for row in range(row_top + 1, height):
            grid[row][col] = "|" if grid[row][col] == " " else grid[row][col]
    axis = (f"0 {'-' * (width - 14)} "
            f"{format_eng(tl.duration, 's')}")
    return "\n".join("".join(row) for row in grid) + "\n" + axis
