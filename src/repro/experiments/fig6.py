"""Fig. 6 — time-resolved power traces and per-mode static power.

* (a)/(b): a full benchmark-sequence transient of the single cell for
  each architecture (OSR on the 6T cell; NVPG/NOF on the NV-SRAM cell),
  with instantaneous total delivered power sampled over time.  The NVPG
  trace shows read/write activity identical to the 6T cell, a 2 x 10 ns
  store burst and a shutdown plateau; the NOF trace shows the per-cycle
  wake/store overhead that degrades its effective cycle time.
* (c): the static-power comparison of the 6T and NV cells in the normal,
  sleep and shutdown modes (nominal gate drive vs super cutoff).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..analysis import transient
from ..analysis.transient import TransientOptions
from ..cells import PowerDomain
from ..pg.modes import Mode, OperatingConditions
from ..pg.sequences import Architecture, BenchmarkSpec, benchmark_sequence
from ..characterize.testbench import SUPPLY_SOURCES, build_cell_testbench
from .context import ExperimentContext
from .report import render_table
from ..units import format_eng


@dataclass
class PowerTrace:
    """One architecture's power-vs-time series."""

    architecture: Architecture
    time: np.ndarray
    power: np.ndarray
    total_energy: float
    events: List[Tuple[float, str, str]]

    def peak_power(self) -> float:
        return float(np.max(self.power))


@dataclass
class Fig6Result:
    traces: Dict[str, PowerTrace]
    static_rows: List[Tuple[str, str, str]]
    effective_cycle: Dict[str, float]

    def render(self) -> str:
        parts = []
        for name, trace in self.traces.items():
            parts.append(
                f"Fig. 6(a) trace [{name}]: "
                f"{len(trace.time)} samples over "
                f"{format_eng(float(trace.time[-1]), 's')}, "
                f"E_total = {format_eng(trace.total_energy, 'J')}, "
                f"peak P = {format_eng(trace.peak_power(), 'W')}, "
                f"MTJ events = {len(trace.events)}"
            )
        parts.append(render_table(
            ("mode", "6T cell", "NV-SRAM cell"),
            self.static_rows,
            title="Fig. 6(c): static power per mode",
        ))
        cyc = self.effective_cycle
        parts.append(
            "Effective read/write cycle time: "
            + ", ".join(
                f"{k} = {format_eng(v, 's')}" for k, v in cyc.items()
            )
            + "  (NOF pays per-cycle wake-up + write-back)"
        )
        return "\n\n".join(parts)


def run_fig6(ctx: Optional[ExperimentContext] = None,
             domain: Optional[PowerDomain] = None,
             n_rw: int = 2,
             t_sl: float = 20e-9,
             t_sd: float = 40e-9,
             max_samples: int = 2000) -> Fig6Result:
    """Regenerate Fig. 6: run the three benchmark transients and collect
    the static-power table."""
    ctx = ctx or ExperimentContext()
    domain = domain or PowerDomain()
    cond = ctx.cond

    traces: Dict[str, PowerTrace] = {}
    for arch in (Architecture.OSR, Architecture.NVPG, Architecture.NOF):
        spec = BenchmarkSpec(architecture=arch, n_rw=n_rw, t_sl=t_sl,
                             t_sd=t_sd)
        schedule = benchmark_sequence(spec, cond)
        kind = "6t" if arch.is_volatile else "nv"
        tb = build_cell_testbench(kind, cond, domain, nfet=ctx.nfet,
                                  pfet=ctx.pfet, mtj_params=ctx.mtj_params)
        tb.apply_waveforms(schedule.line_waveforms())
        if kind == "nv":
            tb.set_mtj_data(False)
        options = TransientOptions(
            dt_initial=min(20e-12, cond.t_cycle / 200.0),
            dt_max=schedule.total_duration / 50.0,
        )
        result = transient(tb.circuit, schedule.total_duration,
                           ic=tb.initial_conditions(True), options=options)
        power = result.delivered_power(SUPPLY_SOURCES)
        time, power = _downsample(result.time, power, max_samples)
        traces[arch.value] = PowerTrace(
            architecture=arch,
            time=time,
            power=power,
            total_energy=result.energy(SUPPLY_SOURCES),
            events=result.events,
        )

    # panel (c): static powers from the characterisations.
    nv = ctx.characterization("nv", domain)
    vt = ctx.characterization("6t", domain)
    static_rows = [
        ("normal", format_eng(vt.p_normal, "W"), format_eng(nv.p_normal, "W")),
        ("sleep (0.7 V)", format_eng(vt.p_sleep, "W"),
         format_eng(nv.p_sleep, "W")),
        ("shutdown (V_PG = VDD)", "n/a",
         format_eng(nv.p_shutdown_nominal, "W")),
        ("shutdown (super cutoff)", "n/a", format_eng(nv.p_shutdown, "W")),
    ]

    model = ctx.energy_model(domain)
    effective_cycle = {
        "6T/OSR": cond.t_cycle,
        "NVPG": model.effective_cycle_time(Architecture.NVPG),
        "NOF": model.effective_cycle_time(Architecture.NOF),
    }
    return Fig6Result(traces=traces, static_rows=static_rows,
                      effective_cycle=effective_cycle)


def _downsample(time: np.ndarray, values: np.ndarray,
                max_samples: int) -> Tuple[np.ndarray, np.ndarray]:
    if len(time) <= max_samples:
        return time, values
    idx = np.linspace(0, len(time) - 1, max_samples).astype(int)
    return time[idx], values[idx]
