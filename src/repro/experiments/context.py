"""Shared experiment context: characterisation + energy-model factory.

The figure sweeps need a :class:`~repro.pg.energy.CellEnergyModel` for
many (conditions, domain) combinations; this context memoises the
underlying cell characterisations (in memory per process, and on disk via
the characterisation cache) so that, e.g., Fig. 7(b)'s seven domain
depths and Fig. 9's N-sweep do not re-simulate anything twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple

from ..cells import PowerDomain
from ..characterize import cache as char_cache
from ..characterize.data import CellCharacterization
from ..characterize.runner import characterize_cell
from ..devices.finfet import FinFETParams
from ..devices.mtj import MTJParams, MTJ_TABLE1
from ..devices.ptm20 import NFET_20NM_HP, PFET_20NM_HP
from ..pg.energy import CellEnergyModel
from ..pg.modes import OperatingConditions


@dataclass
class ExperimentContext:
    """Characterisation/memoisation hub for experiment runs.

    Parameters
    ----------
    cond:
        Baseline operating conditions (Table I defaults).
    mtj_params:
        MTJ card (Table I; Fig. 9(b) swaps in the low-Jc card).
    cache_dir:
        Disk cache for characterisations; ``None`` disables it.
    """

    cond: OperatingConditions = field(default_factory=OperatingConditions)
    nfet: FinFETParams = NFET_20NM_HP
    pfet: FinFETParams = PFET_20NM_HP
    mtj_params: MTJParams = MTJ_TABLE1
    cache_dir: Optional[Path] = field(
        default_factory=char_cache.default_cache_dir
    )  # resolved at context creation; honours REPRO_CACHE_DIR
    _memo: Dict[Tuple, CellCharacterization] = field(
        default_factory=dict, repr=False
    )

    def characterization(self, kind: str,
                         domain: PowerDomain,
                         cond: Optional[OperatingConditions] = None,
                         mtj_params: Optional[MTJParams] = None,
                         ) -> CellCharacterization:
        """Memoised cell characterisation."""
        cond = cond or self.cond
        mtj_params = mtj_params or self.mtj_params
        key = (kind, domain.n_wordlines, domain.word_bits, cond, mtj_params)
        if key not in self._memo:
            self._memo[key] = characterize_cell(
                kind, cond, domain,
                nfet=self.nfet, pfet=self.pfet, mtj_params=mtj_params,
                cache_dir=self.cache_dir,
            )
        return self._memo[key]

    def energy_model(self, domain: PowerDomain,
                     cond: Optional[OperatingConditions] = None,
                     mtj_params: Optional[MTJParams] = None,
                     ) -> CellEnergyModel:
        """Energy model backed by memoised characterisations."""
        cond = cond or self.cond
        nv = self.characterization("nv", domain, cond, mtj_params)
        volatile = self.characterization("6t", domain, cond, mtj_params)
        return CellEnergyModel(nv, volatile, cond, domain)

    def prewarm_campaign(self, points, name: str = "prewarm"):
        """Characterisation campaign covering ``points``.

        ``points`` is an iterable of ``(domain, cond, mtj_params)``
        tuples (``cond``/``mtj_params`` may be ``None`` for the context
        defaults).  Each point needs both the "nv" and "6t" cell
        characterised (that is what :meth:`energy_model` consumes);
        duplicate combinations collapse to one task via the
        content-derived task id.
        """
        from ..exec import Campaign, make_task
        from ..exec.tasks import characterize_params

        tasks: Dict[str, object] = {}
        meta: Dict[str, Tuple] = {}
        for domain, cond, mtj_params in points:
            cond = cond or self.cond
            mtj_params = mtj_params or self.mtj_params
            for kind in ("nv", "6t"):
                task = make_task(
                    characterize_params(kind, cond, domain, self.nfet,
                                        self.pfet, mtj_params,
                                        self.cache_dir),
                    label=f"{kind} N={domain.n_wordlines}"
                          f"x{domain.word_bits}",
                )
                if task.task_id not in tasks:
                    tasks[task.task_id] = task
                    meta[task.task_id] = (kind, domain, cond, mtj_params)
        campaign = Campaign(name=name,
                            fn="repro.exec.tasks:characterize_task",
                            tasks=list(tasks.values()))
        return campaign, meta

    def prewarm(self, points, workers: int = 2, journal=None,
                name: str = "prewarm"):
        """Characterise ``points`` through a fault-tolerant campaign.

        Completed characterisations are folded into this context's
        in-memory memo (and were already written through the shared disk
        cache by the workers), so the serial figure-assembly pass that
        follows never re-simulates them — which is what makes a
        campaign-accelerated figure identical to the serial one by
        construction.  Failed points are simply *not* folded; the serial
        pass re-attempts them and surfaces the real error.

        Returns the :class:`~repro.exec.CampaignResult`.
        """
        from ..characterize.data import CellCharacterization
        from ..exec import COMPLETED, CampaignOptions, run_campaign

        campaign, meta = self.prewarm_campaign(points, name=name)
        options = CampaignOptions(workers=workers,
                                  resume=journal is not None)
        result = run_campaign(campaign, journal=journal, options=options)
        for task_id, (kind, domain, cond, mtj_params) in meta.items():
            outcome = result.outcome(task_id)
            if (outcome is not None and outcome.status == COMPLETED
                    and outcome.result):
                key = (kind, domain.n_wordlines, domain.word_bits, cond,
                       mtj_params)
                self._memo[key] = CellCharacterization(**outcome.result)
        return result
