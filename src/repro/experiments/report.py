"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows/series the paper plots;
these helpers keep that output aligned and unit-annotated.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..units import format_eng


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width table with a header rule."""
    materialised: List[List[str]] = [
        [_cell(v) for v in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in materialised:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in materialised)
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def eng(value: float, unit: str) -> str:
    """Engineering-notation cell (e.g. ``'23.4 pJ'``)."""
    return format_eng(value, unit)


def series_block(name: str, xs: Sequence[float], ys: Sequence[float],
                 x_unit: str = "", y_unit: str = "") -> str:
    """A labelled two-column series, one line per point."""
    lines = [f"# {name}"]
    for x, y in zip(xs, ys):
        lines.append(f"  {format_eng(float(x), x_unit):>14}  "
                     f"{format_eng(float(y), y_unit):>14}")
    return "\n".join(lines)
