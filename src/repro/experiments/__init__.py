"""Experiment regeneration: one module per table/figure of the paper.

Every module exposes a ``run_*`` function returning a result dataclass
with ``rows()`` (the numeric series) and ``render()`` (a printable table
mirroring what the paper plots).  The benchmark harness under
``benchmarks/`` simply calls these.

===========  ==========================================================
Module        Paper artefact
===========  ==========================================================
``table1``    Table I — device & circuit parameters (and realised card)
``fig1``      Fig. 1 — conceptual power-vs-time of NVPG vs NOF
``fig3``      Fig. 3(a)-(c) — leakage and store-current bias sweeps
``fig4``      Fig. 4 — virtual-VDD vs power-switch fin number
``fig5``      Fig. 5 — benchmark sequence timelines (textual)
``fig6``      Fig. 6(a)-(c) — power traces and per-mode static power
``fig7``      Fig. 7(a)-(c) — E_cyc vs n_RW sweeps
``fig8``      Fig. 8(a)-(b) — E_cyc vs t_SD and normalised crossover
``fig9``      Fig. 9(a)-(b) — BET vs domain depth N
===========  ==========================================================
"""

from .context import ExperimentContext
from .table1 import run_table1
from .fig1 import run_fig1
from .fig3 import run_fig3
from .fig4 import run_fig4
from .fig5 import run_fig5
from .fig6 import run_fig6
from .fig7 import run_fig7a, run_fig7b, run_fig7c
from .fig8 import run_fig8
from .fig9 import run_fig9
from .summary import run_summary, SummaryResult

__all__ = [
    "ExperimentContext",
    "run_table1",
    "run_fig1",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7a",
    "run_fig7b",
    "run_fig7c",
    "run_fig8",
    "run_fig9",
    "run_summary",
    "SummaryResult",
]
