"""Table I — device and circuit parameters, plus realised card figures.

Regenerates the paper's parameter table from the library's configuration
objects, so a drift between documentation and code is impossible, and
appends the *realised* characteristics of the FinFET card (Ion, Ioff,
subthreshold swing) and of the MTJ model (R_P, R_AP(0), Ic) that the
paper's Table I quotes as derived values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..devices.mtj import MTJParams, MTJ_TABLE1
from ..devices.ptm20 import (
    CHANNEL_LENGTH,
    FIN_HEIGHT,
    FIN_WIDTH,
    technology_summary,
)
from ..pg.modes import OperatingConditions
from ..units import format_eng
from .report import render_table


@dataclass
class Table1Result:
    """The regenerated Table I rows."""

    rows: List[Tuple[str, str]] = field(default_factory=list)

    def render(self) -> str:
        return render_table(
            ("parameter", "value"), self.rows,
            title="Table I: device and circuit parameters",
        )


def run_table1(cond: OperatingConditions = OperatingConditions(),
               mtj: MTJParams = MTJ_TABLE1) -> Table1Result:
    """Regenerate Table I."""
    tech = technology_summary(cond.vdd)
    rows: List[Tuple[str, str]] = [
        ("FinFET channel length L", format_eng(CHANNEL_LENGTH, "m")),
        ("Supply voltage VDD", f"{cond.vdd:g} V"),
        ("Fin width", format_eng(FIN_WIDTH, "m")),
        ("Fin height", format_eng(FIN_HEIGHT, "m")),
        ("Fin numbers (load, driver, access, PS)", "(1, 1, 1, 1)"),
        ("V_SR", f"{cond.v_sr:g} V"),
        ("V_CTRL (store)", f"{cond.v_ctrl_store:g} V"),
        ("Read/write speed", format_eng(cond.frequency, "Hz")),
        ("MTJ TMR", f"{mtj.tmr0 * 100:.0f} %"),
        ("MTJ RA product (P)", format_eng(mtj.ra_product * 1e12, "ohm.um^2")),
        ("MTJ V at half-max TMR", f"{mtj.v_half:g} V"),
        ("MTJ Jc", format_eng(mtj.jc * 1e-4, "A/cm^2")),
        ("MTJ diameter", format_eng(mtj.diameter, "m")),
        ("MTJ Ic = Jc*A", format_eng(mtj.critical_current, "A")),
        ("MTJ R_P(0)", format_eng(mtj.r_parallel, "ohm")),
        ("MTJ R_AP(0)", format_eng(mtj.r_antiparallel_zero_bias, "ohm")),
        ("-- realised FinFET card --", ""),
        ("Ion (n) per fin", format_eng(tech["ion_n_per_fin"], "A")),
        ("Ion (p) per fin", format_eng(tech["ion_p_per_fin"], "A")),
        ("Ioff (n) per fin", format_eng(tech["ioff_n_per_fin"], "A")),
        ("Ioff (p) per fin", format_eng(tech["ioff_p_per_fin"], "A")),
        ("Subthreshold swing (n)", f"{tech['ss_n_mv_per_dec']:.1f} mV/dec"),
        ("Subthreshold swing (p)", f"{tech['ss_p_mv_per_dec']:.1f} mV/dec"),
        ("DIBL (n)", f"{tech['dibl_n_mv_per_v']:.0f} mV/V"),
        ("DIBL (p)", f"{tech['dibl_p_mv_per_v']:.0f} mV/V"),
    ]
    return Table1Result(rows=rows)
