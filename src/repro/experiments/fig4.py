"""Fig. 4 — virtual-VDD voltage vs power-switch fin number N_FSW.

Reproduces the sizing argument for the header switch: the store mode
loads the virtual rail hardest (the MTJs connect to the bistable core),
so VV_DD sags with shrinking N_FSW; N_FSW = 7 retains ~97 % of VDD.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..cells import PowerDomain
from ..characterize.vvdd import VvddSweep, vvdd_vs_nfsw
from ..pg.modes import OperatingConditions
from .report import render_table

#: Retention fraction the paper quotes for its chosen N_FSW = 7.
PAPER_RETENTION_TARGET = 0.97


@dataclass
class Fig4Result:
    sweep: VvddSweep
    nfsw_for_target: Optional[int]

    def render(self) -> str:
        table = render_table(
            ("N_FSW", "VVDD normal [V]", "VVDD store [V]", "store VVDD/VDD"),
            [
                (n, vn, vs, vs / self.sweep.vdd)
                for n, vn, vs in self.sweep.rows()
            ],
            title="Fig. 4: virtual-VDD vs power-switch fin number",
        )
        if self.nfsw_for_target is None:
            note = (
                f"  -> {PAPER_RETENTION_TARGET:.0%} retention not reached "
                "in the swept range"
            )
        else:
            note = (
                f"  -> smallest N_FSW with store-mode VVDD >= "
                f"{PAPER_RETENTION_TARGET:.0%} of VDD: {self.nfsw_for_target} "
                "(paper chooses 7)"
            )
        if self.sweep.skips:
            skipped = "\n".join(
                f"     {record.render()}" for record in self.sweep.skips)
            note += (f"\n  !! {len(self.sweep.skips)} point(s) skipped "
                     f"after recovery-ladder exhaustion:\n{skipped}")
        return table + "\n" + note


def run_fig4(cond: Optional[OperatingConditions] = None,
             domain: Optional[PowerDomain] = None,
             nfsw_values: Sequence[int] = tuple(range(1, 11))) -> Fig4Result:
    """Regenerate Fig. 4."""
    cond = cond or OperatingConditions()
    domain = domain or PowerDomain()
    sweep = vvdd_vs_nfsw(cond, domain, nfsw_values)
    return Fig4Result(
        sweep=sweep,
        nfsw_for_target=sweep.smallest_nfsw_for(PAPER_RETENTION_TARGET),
    )
