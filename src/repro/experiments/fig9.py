"""Fig. 9 — BET as a function of the domain depth N.

* (a) base configuration (300 MHz, Jc = 5e6 A/cm^2): BET vs N for
  n_RW in {10, 100, 1000}, with and without store-free shutdown.  BET
  grows with N and n_RW (the leakage of the prolonged normal-operation
  phase dominates); store-free shutdown removes the store energy and cuts
  BET to a few microseconds.
* (b) fast configuration (1 GHz read/write, Jc = 1e6 A/cm^2): much
  shorter BET and larger feasible domain even without store-free.  The
  store biases for this card are re-derived from the Fig. 3 sweeps (the
  paper's methodology) so the store current scales down with the relaxed
  critical current — that is where the store-energy reduction comes from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cells import PowerDomain
from ..devices.mtj import MTJParams, MTJ_FIG9B
from ..pg.bet import break_even_time
from ..pg.modes import OperatingConditions
from ..pg.sequences import Architecture
from ..units import format_eng
from .context import ExperimentContext
from .report import render_table


@dataclass
class BetVsN:
    """BET(N) for one (n_RW, store_free) series."""

    label: str
    n_rw: int
    store_free: bool
    n_values: np.ndarray
    bet: np.ndarray

    def rows(self) -> List[Tuple[int, float]]:
        return [(int(n), float(b)) for n, b in zip(self.n_values, self.bet)]


@dataclass
class Fig9Result:
    panel: str
    series: List[BetVsN]

    def render(self) -> str:
        headers = ["N"] + [s.label for s in self.series]
        n_values = self.series[0].n_values
        rows = []
        for i, n in enumerate(n_values):
            rows.append((int(n),) + tuple(
                format_eng(float(s.bet[i]), "s") for s in self.series
            ))
        return render_table(
            headers, rows,
            title=f"Fig. 9({self.panel}): BET vs domain depth N",
        )


def _bet_series(ctx: ExperimentContext,
                cond: OperatingConditions,
                mtj: Optional[MTJParams],
                n_values: Sequence[int],
                n_rw: int,
                store_free: bool,
                word_bits: int,
                t_sl: float) -> BetVsN:
    bets = []
    for n in n_values:
        domain = PowerDomain(n_wordlines=int(n), word_bits=word_bits)
        model = ctx.energy_model(domain, cond=cond, mtj_params=mtj)
        result = break_even_time(model, Architecture.NVPG, n_rw=n_rw,
                                 t_sl=t_sl, store_free=store_free)
        bets.append(result.bet)
    suffix = " (store-free)" if store_free else ""
    return BetVsN(
        label=f"n_RW={n_rw}{suffix}",
        n_rw=n_rw,
        store_free=store_free,
        n_values=np.asarray(list(n_values), dtype=int),
        bet=np.asarray(bets),
    )


def run_fig9(ctx: Optional[ExperimentContext] = None,
             panel: str = "a",
             n_values: Sequence[int] = (32, 64, 128, 256, 512, 1024, 2048),
             n_rw_values: Sequence[int] = (10, 100, 1000),
             word_bits: int = 32,
             t_sl: float = 100e-9,
             workers: Optional[int] = None,
             journal=None) -> Fig9Result:
    """Regenerate Fig. 9(a) or 9(b).

    Panel "a" uses the Table I configuration with and without store-free
    shutdown; panel "b" switches to 1 GHz operation and the relaxed
    Jc = 1e6 A/cm^2 MTJ card (store-free not needed).

    ``workers`` prewarms the per-depth characterisations as a
    fault-tolerant :mod:`repro.exec` campaign (the store-bias derivation
    for panel "b" stays serial — it is one sweep, not a grid); figure
    assembly is serial either way, so the numbers are identical.
    """
    ctx = ctx or ExperimentContext()
    if panel == "a":
        cond = ctx.cond
        mtj = None
        store_free_options = (False, True)
    elif panel == "b":
        from ..characterize.store import derive_store_biases

        mtj = MTJ_FIG9B
        cond = derive_store_biases(
            ctx.cond.fast_variant(),
            PowerDomain(n_wordlines=int(n_values[0]), word_bits=word_bits),
            nfet=ctx.nfet, pfet=ctx.pfet, mtj_params=mtj,
        )
        store_free_options = (False,)
    else:
        raise ValueError(f"unknown Fig. 9 panel: {panel!r}")

    if workers is not None:
        domains = [PowerDomain(n_wordlines=int(n), word_bits=word_bits)
                   for n in n_values]
        ctx.prewarm([(d, cond, mtj) for d in domains], workers=workers,
                    journal=journal, name=f"fig9{panel}")
    series = [
        _bet_series(ctx, cond, mtj, n_values, n_rw, store_free,
                    word_bits, t_sl)
        for store_free in store_free_options
        for n_rw in n_rw_values
    ]
    return Fig9Result(panel=panel, series=series)
