"""Fig. 7 — E_cyc per cell as a function of n_RW.

Three panels:

* (a) t_SD = 0, t_SL swept from 0 to 1 us: NVPG approaches OSR
  asymptotically while NOF grows away from it; NVPG ~ NOF at n_RW = 1.
* (b) M = 32, N swept 32..2048 (128 B .. 8 kB domains), t_SL = 100 ns:
  the serialised store phase penalises NVPG at very small n_RW for large
  N, recovering by n_RW ~ 10.
* (c) t_SD swept 10 us .. 10 ms: the shutdown leakage term separates the
  architectures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cells import PowerDomain
from ..pg.sequences import Architecture, BenchmarkSpec
from .context import ExperimentContext
from .report import render_table

#: Default n_RW grid (log-spaced, matching the paper's log axis).
DEFAULT_N_RW = (1, 2, 3, 5, 10, 20, 30, 50, 100, 200, 300, 500, 1000,
                2000, 3000, 5000, 10000)

ARCHES = (Architecture.OSR, Architecture.NVPG, Architecture.NOF)


@dataclass
class EcycSweep:
    """E_cyc(n_RW) for the three architectures at one parameter point."""

    label: str
    n_rw: np.ndarray
    e_cyc: Dict[str, np.ndarray]   # architecture value -> joules per cell

    def rows(self) -> List[Tuple]:
        out = []
        for i, n in enumerate(self.n_rw):
            out.append((int(n),) + tuple(
                float(self.e_cyc[a.value][i]) for a in ARCHES
            ))
        return out

    def render(self) -> str:
        return render_table(
            ("n_RW", "OSR [J]", "NVPG [J]", "NOF [J]"),
            self.rows(),
            title=f"E_cyc vs n_RW — {self.label}",
        )


@dataclass
class Fig7Result:
    sweeps: List[EcycSweep]

    def render(self) -> str:
        return "\n\n".join(s.render() for s in self.sweeps)


def _sweep(ctx: ExperimentContext, domain: PowerDomain, label: str,
           n_rw_values: Sequence[int], t_sl: float,
           t_sd: float) -> EcycSweep:
    model = ctx.energy_model(domain)
    n_rw = np.asarray(list(n_rw_values), dtype=int)
    e_cyc = {a.value: np.empty(len(n_rw)) for a in ARCHES}
    for i, n in enumerate(n_rw):
        for arch in ARCHES:
            spec = BenchmarkSpec(architecture=arch, n_rw=int(n),
                                 t_sl=t_sl, t_sd=t_sd)
            e_cyc[arch.value][i] = model.e_cyc(spec)
    return EcycSweep(label=label, n_rw=n_rw, e_cyc=e_cyc)


def run_fig7a(ctx: Optional[ExperimentContext] = None,
              domain: Optional[PowerDomain] = None,
              n_rw_values: Sequence[int] = DEFAULT_N_RW,
              t_sl_values: Sequence[float] = (0.0, 10e-9, 100e-9, 1e-6),
              workers: Optional[int] = None,
              journal=None) -> Fig7Result:
    """Fig. 7(a): t_SD = 0, t_SL varied from 0 to 1 us.

    With ``workers``, the underlying cell characterisations are
    prewarmed through a fault-tolerant :mod:`repro.exec` campaign
    (optionally checkpointed via ``journal``); the figure assembly stays
    serial, so the numbers are identical either way.
    """
    ctx = ctx or ExperimentContext()
    domain = domain or PowerDomain()
    if workers is not None:
        ctx.prewarm([(domain, None, None)], workers=workers,
                    journal=journal, name="fig7a")
    sweeps = [
        _sweep(ctx, domain, f"t_SL = {t_sl * 1e9:g} ns, t_SD = 0",
               n_rw_values, t_sl, 0.0)
        for t_sl in t_sl_values
    ]
    return Fig7Result(sweeps=sweeps)


def run_fig7b(ctx: Optional[ExperimentContext] = None,
              n_values: Sequence[int] = (32, 64, 128, 256, 512, 1024, 2048),
              word_bits: int = 32,
              n_rw_values: Sequence[int] = DEFAULT_N_RW,
              t_sl: float = 100e-9,
              workers: Optional[int] = None,
              journal=None) -> Fig7Result:
    """Fig. 7(b): M = 32, N varied 32..2048 (128 B .. 8 kB domains).

    The seven domain depths are independent characterisation points —
    the sweep that benefits most from a parallel ``workers`` campaign.
    """
    ctx = ctx or ExperimentContext()
    domains = [PowerDomain(n_wordlines=int(n), word_bits=word_bits)
               for n in n_values]
    if workers is not None:
        ctx.prewarm([(d, None, None) for d in domains], workers=workers,
                    journal=journal, name="fig7b")
    sweeps = []
    for n, domain in zip(n_values, domains):
        label = (
            f"N = {n} ({domain.size_bytes:.0f} B), "
            f"t_SL = {t_sl * 1e9:g} ns, t_SD = 0"
        )
        sweeps.append(_sweep(ctx, domain, label, n_rw_values, t_sl, 0.0))
    return Fig7Result(sweeps=sweeps)


def run_fig7c(ctx: Optional[ExperimentContext] = None,
              domain: Optional[PowerDomain] = None,
              n_rw_values: Sequence[int] = DEFAULT_N_RW,
              t_sd_values: Sequence[float] = (10e-6, 100e-6, 1e-3, 10e-3),
              t_sl: float = 100e-9,
              workers: Optional[int] = None,
              journal=None) -> Fig7Result:
    """Fig. 7(c): t_SD varied from 10 us to 10 ms."""
    ctx = ctx or ExperimentContext()
    domain = domain or PowerDomain()
    if workers is not None:
        ctx.prewarm([(domain, None, None)], workers=workers,
                    journal=journal, name="fig7c")
    sweeps = [
        _sweep(ctx, domain,
               f"t_SD = {t_sd * 1e6:g} us, t_SL = {t_sl * 1e9:g} ns",
               n_rw_values, t_sl, t_sd)
        for t_sd in t_sd_values
    ]
    return Fig7Result(sweeps=sweeps)
