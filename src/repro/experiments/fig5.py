"""Fig. 5 — benchmark sequence diagrams (textual rendering).

The paper's Fig. 5 is a timing diagram of the three benchmark sequences;
this experiment renders the same timelines from the actual
:class:`~repro.pg.scheduler.Schedule` objects that drive the simulations,
so the documentation and the executed waveforms cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..pg.modes import OperatingConditions
from ..pg.sequences import (
    Architecture,
    BenchmarkSpec,
    benchmark_sequence,
    describe_sequence,
)


@dataclass
class Fig5Result:
    timelines: List[str]
    durations: List[float]

    def render(self) -> str:
        return "\n\n".join(self.timelines)


def run_fig5(cond: Optional[OperatingConditions] = None,
             n_rw: int = 2,
             t_sl: float = 20e-9,
             t_sd: float = 50e-9) -> Fig5Result:
    """Render the three Fig. 5 sequence diagrams."""
    cond = cond or OperatingConditions()
    timelines = []
    durations = []
    for arch in (Architecture.OSR, Architecture.NVPG, Architecture.NOF):
        spec = BenchmarkSpec(architecture=arch, n_rw=n_rw, t_sl=t_sl,
                             t_sd=t_sd)
        timelines.append(describe_sequence(spec, cond))
        durations.append(benchmark_sequence(spec, cond).total_duration)
    return Fig5Result(timelines=timelines, durations=durations)
