"""One-shot reproduction report: every artefact, one document.

:func:`run_summary` regenerates Table I and Figs. 1-9 (at configurable
resolution), checks each of the paper's headline claims against the
fresh numbers, and renders a single consolidated report — the
"reproduce the paper" button (``python -m repro all``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..cells import PowerDomain
from ..pg.bet import break_even_time
from ..pg.sequences import Architecture, BenchmarkSpec
from ..units import format_eng
from .context import ExperimentContext
from .fig1 import run_fig1
from .fig3 import run_fig3
from .fig4 import run_fig4
from .fig5 import run_fig5
from .fig7 import run_fig7a, run_fig7b
from .fig8 import run_fig8
from .fig9 import run_fig9
from .report import render_table
from .table1 import run_table1


@dataclass
class ClaimCheck:
    """One verified headline claim."""

    claim: str
    measured: str
    passed: bool


@dataclass
class SummaryResult:
    """The consolidated reproduction report."""

    claims: List[ClaimCheck]
    sections: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def all_passed(self) -> bool:
        return all(c.passed for c in self.claims)

    def render(self) -> str:
        rows = [
            ("PASS" if c.passed else "FAIL", c.claim, c.measured)
            for c in self.claims
        ]
        parts = [render_table(
            ("", "paper claim", "measured"), rows,
            title="Headline-claim scorecard",
        )]
        for title, body in self.sections:
            parts.append(f"{'=' * 72}\n{title}\n{'=' * 72}\n{body}")
        return "\n\n".join(parts)


def run_summary(ctx: Optional[ExperimentContext] = None,
                include_figures: bool = True) -> SummaryResult:
    """Regenerate everything and score the paper's claims.

    ``include_figures=False`` skips the per-figure section bodies and
    only produces the scorecard (faster; the claims still evaluate on
    freshly computed numbers).
    """
    ctx = ctx or ExperimentContext()
    domain = PowerDomain(512, 32)
    model = ctx.energy_model(domain)
    nv, vt = model.nv, model.volatile

    def e(arch, n_rw, **kw):
        return model.e_cyc(BenchmarkSpec(arch, n_rw=n_rw, t_sl=100e-9,
                                         **kw))

    claims: List[ClaimCheck] = []

    ratio_1 = e(Architecture.NVPG, 1) / e(Architecture.OSR, 1)
    ratio_1e4 = e(Architecture.NVPG, 10000) / e(Architecture.OSR, 10000)
    claims.append(ClaimCheck(
        "E_cyc(NVPG) -> E_cyc(OSR) asymptotically with n_RW",
        f"ratio {ratio_1:.2f} -> {ratio_1e4:.3f} (n_RW 1 -> 1e4)",
        ratio_1e4 < 1.1 < ratio_1,
    ))
    nof_ratio = e(Architecture.NOF, 1000) / e(Architecture.OSR, 1000)
    claims.append(ClaimCheck(
        "E_cyc(NOF) much higher than OSR at large n_RW",
        f"NOF/OSR = {nof_ratio:.1f} at n_RW = 1000",
        nof_ratio > 2.0,
    ))
    claims.append(ClaimCheck(
        "NVPG read/write speed equals the 6T cell's",
        f"{format_eng(model.effective_cycle_time(Architecture.NVPG), 's')}"
        f" vs {format_eng(model.effective_cycle_time(Architecture.OSR), 's')}",
        model.effective_cycle_time(Architecture.NVPG)
        == model.effective_cycle_time(Architecture.OSR),
    ))
    nof_cycle = model.effective_cycle_time(Architecture.NOF)
    claims.append(ClaimCheck(
        "NOF suffers severe cycle-speed degradation",
        f"{format_eng(nof_cycle, 's')} effective cycle "
        f"({nof_cycle / model.cond.t_cycle:.1f}x)",
        nof_cycle > 3 * model.cond.t_cycle,
    ))
    claims.append(ClaimCheck(
        "super cutoff dramatically reduces shutdown static power",
        f"{format_eng(nv.p_shutdown_nominal, 'W')} -> "
        f"{format_eng(nv.p_shutdown, 'W')}",
        nv.p_shutdown < nv.p_shutdown_nominal / 5,
    ))
    bet10 = break_even_time(model, Architecture.NVPG, n_rw=10,
                            t_sl=100e-9).bet
    claims.append(ClaimCheck(
        "BET(NVPG) ~ several tens of microseconds",
        format_eng(bet10, "s"),
        1e-5 < bet10 < 5e-4,
    ))
    bet_nof = break_even_time(model, Architecture.NOF, n_rw=10,
                              t_sl=100e-9).bet
    claims.append(ClaimCheck(
        "BET(NOF) much longer than BET(NVPG)",
        f"{format_eng(bet_nof, 's')} ({bet_nof / bet10:.1f}x)",
        bet_nof > 3 * bet10,
    ))
    bet_free = break_even_time(model, Architecture.NVPG, n_rw=10,
                               t_sl=100e-9, store_free=True).bet
    claims.append(ClaimCheck(
        "store-free shutdown cuts BET to several microseconds",
        format_eng(bet_free, "s"),
        bet_free < bet10 / 3 and bet_free < 5e-5,
    ))
    small = ctx.energy_model(PowerDomain(32, 32))
    large = ctx.energy_model(PowerDomain(2048, 32))
    bet_small = break_even_time(small, Architecture.NVPG, n_rw=10,
                                t_sl=100e-9).bet
    bet_large = break_even_time(large, Architecture.NVPG, n_rw=10,
                                t_sl=100e-9).bet
    claims.append(ClaimCheck(
        "BET grows with the domain depth N",
        f"{format_eng(bet_small, 's')} (N=32) -> "
        f"{format_eng(bet_large, 's')} (N=2048)",
        bet_large > bet_small,
    ))

    result = SummaryResult(claims=claims)
    if include_figures:
        result.sections = [
            ("Table I", run_table1(ctx.cond).render()),
            ("Fig. 1", run_fig1(ctx, domain).render()),
            ("Fig. 3", run_fig3(ctx.cond, domain, points=13).render()),
            ("Fig. 4", run_fig4(ctx.cond, domain).render()),
            ("Fig. 5", run_fig5(ctx.cond).render()),
            ("Fig. 7(a)", run_fig7a(
                ctx, domain, n_rw_values=(1, 10, 100, 1000, 10000),
                t_sl_values=(100e-9,)).render()),
            ("Fig. 7(b)", run_fig7b(
                ctx, n_values=(32, 256, 2048),
                n_rw_values=(1, 10, 100)).render()),
            ("Fig. 8", run_fig8(ctx, domain, t_sd_points=25).render()),
            ("Fig. 9(a)", run_fig9(ctx, panel="a").render()),
            ("Fig. 9(b)", run_fig9(ctx, panel="b").render()),
        ]
    return result
