"""Fig. 3 — leakage control and store-current design curves.

* (a) normal-mode leakage I_L^NV vs V_CTRL, with the 6T reference I_L^V;
* (b) H-store current I_MTJ(P->AP) vs V_SR;
* (c) L-store current I_MTJ(AP->P) vs V_CTRL at the chosen V_SR.

The run also extracts the paper's design decisions: the leakage-optimal
V_CTRL (paper: 0.07 V) and the biases required for the 1.5 x Ic store
margin (paper: V_SR = 0.65 V, V_CTRL = 0.5 V).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cells import PowerDomain
from ..characterize.leakage import LeakageSweep, leakage_vs_vctrl
from ..characterize.store import (
    StoreCurrentSweep,
    store_current_vs_vctrl,
    store_current_vs_vsr,
)
from ..pg.modes import OperatingConditions
from ..units import format_eng
from .report import render_table


@dataclass
class Fig3Result:
    """All three panels of Fig. 3."""

    leakage: LeakageSweep          # panel (a)
    store_h: StoreCurrentSweep     # panel (b)
    store_l: StoreCurrentSweep     # panel (c)

    def render(self) -> str:
        parts = [
            render_table(
                ("V_CTRL [V]", "I_L^NV [A]", "I_L^V (6T) [A]"),
                self.leakage.rows(),
                title="Fig. 3(a): leakage vs V_CTRL (normal mode)",
            ),
            (
                f"  -> optimal V_CTRL = {self.leakage.v_ctrl_optimal:.3f} V, "
                f"min leakage = {format_eng(self.leakage.i_leak_nv_min, 'A')} "
                f"(6T reference {format_eng(self.leakage.i_leak_6t, 'A')})"
            ),
            render_table(
                ("V_SR [V]", "I_MTJ P->AP [A]"),
                self.store_h.rows(),
                title="Fig. 3(b): H-store current vs V_SR",
            ),
            _margin_line(self.store_h),
            render_table(
                ("V_CTRL [V]", "I_MTJ AP->P [A]"),
                self.store_l.rows(),
                title="Fig. 3(c): L-store current vs V_CTRL",
            ),
            _margin_line(self.store_l),
        ]
        skipped = (self.leakage.skips + self.store_h.skips
                   + self.store_l.skips)
        if skipped:
            lines = [f"  !! {len(skipped)} sweep point(s) skipped after "
                     "recovery-ladder exhaustion (NaN in the tables):"]
            lines.extend(f"     {record.render()}" for record in skipped)
            parts.append("\n".join(lines))
        return "\n\n".join(parts)


def _margin_line(sweep: StoreCurrentSweep) -> str:
    if sweep.bias_at_margin is None:
        return (
            f"  -> {sweep.margin:g} x Ic = "
            f"{format_eng(sweep.i_required, 'A')} not reached in range"
        )
    return (
        f"  -> {sweep.margin:g} x Ic = {format_eng(sweep.i_required, 'A')} "
        f"reached at {sweep.bias_name} = {sweep.bias_at_margin:.3f} V"
    )


def run_fig3(cond: Optional[OperatingConditions] = None,
             domain: Optional[PowerDomain] = None,
             points: int = 31) -> Fig3Result:
    """Regenerate all panels of Fig. 3."""
    import numpy as np

    cond = cond or OperatingConditions()
    domain = domain or PowerDomain()
    return Fig3Result(
        leakage=leakage_vs_vctrl(
            cond, domain, v_ctrl_values=np.linspace(0.0, 0.3, points)
        ),
        store_h=store_current_vs_vsr(
            cond, domain, v_sr_values=np.linspace(0.0, 0.9, points)
        ),
        store_l=store_current_vs_vctrl(
            cond, domain, v_ctrl_values=np.linspace(0.0, 0.9, points)
        ),
    )
