"""``python -m repro`` entry point.

The ``__main__`` guard is load-bearing: ``repro.exec`` spawns worker
processes with the ``spawn`` start method, and each worker re-imports
the parent's main module during bootstrap.  Without the guard every
worker would re-run the CLI (and try to launch its own campaign).
"""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
