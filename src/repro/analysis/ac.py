"""Small-signal AC analysis.

Linearises the circuit at a DC operating point and solves the complex
MNA system ``(G + j w C) x = b_ac`` across a frequency grid:

* ``G`` is the resistive Jacobian — exactly what the nonlinear elements
  already stamp at the operating point (their equivalent current sources
  land in the DC RHS, which AC discards);
* ``C`` collects the capacitor stamps at ``j w C``;
* the stimulus comes from voltage sources with a non-zero ``ac``
  magnitude (set ``VoltageSource(..., ac=1.0)`` for a unit drive).

Useful here for bitline time constants, sense-amp input bandwidth and
small-signal gain checks of the cell's inverters; it also rounds out the
simulator feature set for deck-level reuse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..errors import AnalysisError
from ..circuit.passives import Capacitor
from ..circuit.sources import VoltageSource
from .dc import OperatingPointOptions, operating_point
from .mna import Context, Stamper
from .results import Solution
from .solver import GMIN_FLOOR


@dataclass
class ACResult:
    """Complex node responses across the frequency grid.

    Attributes
    ----------
    frequencies:
        The analysis grid (hertz).
    states:
        Complex array, one row per frequency, columns = MNA unknowns.
    op:
        The DC operating point the circuit was linearised at.
    """

    circuit: object
    frequencies: np.ndarray
    states: np.ndarray
    op: Solution

    def response(self, node: str) -> np.ndarray:
        """Complex voltage phasor of ``node`` across the grid."""
        index = self.circuit.index_of(node)
        if index < 0:
            return np.zeros(len(self.frequencies), dtype=complex)
        return self.states[:, index]

    def magnitude(self, node: str) -> np.ndarray:
        return np.abs(self.response(node))

    def magnitude_db(self, node: str) -> np.ndarray:
        mag = self.magnitude(node)
        return 20.0 * np.log10(np.maximum(mag, 1e-300))

    def phase_deg(self, node: str) -> np.ndarray:
        return np.degrees(np.angle(self.response(node)))

    def corner_frequency(self, node: str,
                         drop_db: float = 3.0) -> Optional[float]:
        """First frequency where the response falls ``drop_db`` below its
        low-frequency value (interpolated); None if it never does."""
        mag_db = self.magnitude_db(node)
        target = mag_db[0] - drop_db
        below = np.nonzero(mag_db <= target)[0]
        if below.size == 0:
            return None
        k = int(below[0])
        if k == 0:
            return float(self.frequencies[0])
        # Interpolate in log-frequency for log-spaced grids.
        f0, f1 = self.frequencies[k - 1], self.frequencies[k]
        m0, m1 = mag_db[k - 1], mag_db[k]
        frac = (m0 - target) / (m0 - m1)
        return float(f0 * (f1 / f0) ** frac)


def ac_analysis(
    circuit,
    frequencies: Sequence[float],
    ic: Optional[Dict[str, float]] = None,
    op_options: Optional[OperatingPointOptions] = None,
) -> ACResult:
    """Run an AC sweep over ``frequencies``.

    Parameters
    ----------
    frequencies:
        Analysis grid in hertz (all positive).
    ic:
        Optional basin selector for the underlying operating point.
    """
    freqs = np.asarray(list(frequencies), dtype=float)
    if freqs.size == 0 or np.any(freqs <= 0):
        raise AnalysisError("ac_analysis needs positive frequencies")
    circuit.compile()
    op = operating_point(circuit, ic=ic, options=op_options)

    size = circuit.size
    num_nodes = circuit.num_nodes

    # Resistive Jacobian at the operating point (DC-mode stamps).
    ctx = Context(mode="dc", time=0.0, x=op.x)
    g_stamper = Stamper(size)
    capacitors = []
    sources = []
    for element in circuit.elements():
        if isinstance(element, Capacitor):
            capacitors.append(element)
            continue
        element.stamp(g_stamper, ctx)
        if isinstance(element, VoltageSource):
            sources.append(element)
    G = g_stamper.A.astype(complex)
    if num_nodes:
        idx = np.arange(num_nodes)
        G[idx, idx] += GMIN_FLOOR

    # Capacitance pattern (stamped once, scaled by jw per point).
    c_stamper = Stamper(size)
    for cap in capacitors:
        p, n = cap.node_index
        c_stamper.conductance(p, n, cap.capacitance)
    C = c_stamper.A

    # AC stimulus vector: voltage-source branch rows carry the magnitude.
    b = np.zeros(size, dtype=complex)
    if not any(src.ac != 0.0 for src in sources):
        raise AnalysisError(
            "no AC stimulus: set ac= on at least one voltage source"
        )
    for src in sources:
        if src.ac != 0.0:
            (k,) = src.branch_index
            b[k] = src.ac

    states = np.empty((freqs.size, size), dtype=complex)
    for i, f in enumerate(freqs):
        omega = 2.0 * np.pi * f
        states[i] = np.linalg.solve(G + 1j * omega * C, b)
    return ACResult(circuit=circuit, frequencies=freqs, states=states,
                    op=op)
