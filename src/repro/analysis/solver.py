"""Damped Newton-Raphson solver for the nonlinear MNA equations.

Each iteration re-stamps the linearised system ``A(x) x' = b(x)`` and
solves it directly (dense LU via ``numpy.linalg.solve``).  Damping limits
the per-iteration change of node voltages, which is essential for the
exponential subthreshold characteristics of the FinFET model.

A small ``gmin`` conductance from every node to ground keeps the matrix
non-singular when devices are fully cut off; homotopy strategies in
:mod:`repro.analysis.dc` and the escalation ladder in
:mod:`repro.recovery` raise it temporarily to walk difficult operating
points in.

On failure the raised :class:`~repro.errors.ConvergenceError` carries the
true KCL residual ``‖A(x)·x − b(x)‖∞`` (amps) re-evaluated at the final
iterate, the worst-offending equations by name, and the consecutive-damped
-step count, so callers (and ``repro diagnose``) see *which nodes* failed
to balance rather than just a voltage-delta norm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..errors import ConvergenceError, StampError
from .mna import Context, Stamper
from .trust import (
    TrustOptions,
    certify,
    describe_offenders,
    equilibrated_solve,
    locate_nonfinite_stamps,
    onenorm_condest,
)

#: Extra per-node conductance to ground, always present (siemens).
GMIN_FLOOR = 1e-12

#: How many worst-offending equations a failure report names.
_WORST_NODE_COUNT = 5


@dataclass
class NewtonOptions:
    """Tuning knobs for the Newton iteration."""

    max_iterations: int = 150
    #: Absolute node-voltage convergence tolerance (volts).
    vntol: float = 1e-7
    #: Relative convergence tolerance.
    reltol: float = 1e-5
    #: Absolute branch-current convergence tolerance (amps).
    abstol: float = 1e-11
    #: Maximum node-voltage change applied per iteration (volts).
    damping: float = 0.4
    #: Extra conductance from each node to ground (homotopy knob).
    gmin: float = GMIN_FLOOR
    #: Certification / conditioning-defense policy (see analysis.trust).
    trust: TrustOptions = field(default_factory=TrustOptions)


def row_labels(circuit) -> List[str]:
    """Human-readable label of every MNA equation row.

    Node rows carry the node name; branch rows are labelled
    ``I(<element>)`` after the element owning the branch unknown.
    """
    circuit.compile()
    labels = list(circuit.node_names())
    labels.extend(f"branch:{k}" for k in range(circuit.num_branches))
    for element in circuit.elements():
        for k, row in enumerate(element.branch_index):
            suffix = f"[{k}]" if len(element.branch_index) > 1 else ""
            labels[row] = f"I({element.name}){suffix}"
    return labels


def _restamp(circuit, ctx: Context, stamper: Stamper, x: np.ndarray,
             gmin: float,
             extra_stamps: Optional[Callable[[Stamper, Context], None]]) -> None:
    """Assemble the linearised system at the iterate ``x`` in place."""
    ctx.x = x
    stamper.clear()
    for element in circuit.elements():
        element.stamp(stamper, ctx)
    if extra_stamps is not None:
        extra_stamps(stamper, ctx)
    num_nodes = circuit.num_nodes
    if num_nodes:
        idx = np.arange(num_nodes)
        stamper.A[idx, idx] += gmin


def kcl_residual(circuit, ctx: Context, x: np.ndarray,
                 gmin: float = GMIN_FLOOR,
                 extra_stamps: Optional[Callable[[Stamper, Context], None]]
                 = None) -> np.ndarray:
    """True KCL residual ``A(x)·x − b(x)`` at the point ``x``.

    For node rows the entries are current imbalances in amps (devices are
    stamped as Norton companion pairs, so the linearised ``A·x − b`` *is*
    the sum of device currents into each node); branch rows are
    constraint violations in volts.
    """
    circuit.compile()
    stamper = Stamper(circuit.size)
    _restamp(circuit, ctx, stamper, x, max(gmin, GMIN_FLOOR), extra_stamps)
    return stamper.A @ x - stamper.b


def worst_offenders(circuit, residual: np.ndarray,
                    count: int = _WORST_NODE_COUNT) -> List[Tuple[str, float]]:
    """The ``count`` largest-|residual| equations as ``(label, value)``."""
    labels = row_labels(circuit)
    magnitude = np.abs(np.nan_to_num(residual, nan=np.inf,
                                     posinf=np.inf, neginf=np.inf))
    order = np.argsort(-magnitude)[:count]
    return [(labels[i], float(residual[i])) for i in order]


def _convergence_failure(message: str, circuit, ctx: Context,
                         stamper: Stamper, x: np.ndarray, gmin: float,
                         extra_stamps, iterations: int,
                         damped_streak: int) -> ConvergenceError:
    """Build a fully-forensic ConvergenceError at the final iterate."""
    residual_vec: Optional[np.ndarray] = None
    residual = float("nan")
    cond_estimate = float("nan")
    worst: List[Tuple[str, float]] = []
    try:
        if np.all(np.isfinite(x)):
            _restamp(circuit, ctx, stamper, x, gmin, extra_stamps)
            residual_vec = stamper.A @ x - stamper.b
            if residual_vec.size and np.all(np.isfinite(residual_vec)):
                residual = float(np.max(np.abs(residual_vec)))
            worst = worst_offenders(circuit, residual_vec)
            if np.all(np.isfinite(stamper.A)):
                cond_estimate = onenorm_condest(stamper.A)
    except Exception:   # lint: skip=RV405 - forensics must never mask the error
        residual_vec = None
    if damped_streak:
        message += (f" ({damped_streak} consecutive damped steps at exit"
                    + ("; damping-starved" if damped_streak >= iterations
                       else "") + ")")
    return ConvergenceError(
        message,
        iterations=iterations,
        residual=residual,
        residual_vector=None if residual_vec is None else list(residual_vec),
        worst_nodes=worst,
        time=ctx.time,
        mode=ctx.mode,
        damped_streak=damped_streak,
        x=list(x) if np.all(np.isfinite(x)) else None,
        cond_estimate=cond_estimate,
    )


def _reject_nonfinite_stamp(circuit, ctx: Context, x: np.ndarray,
                            gmin: float, extra_stamps, iteration: int,
                            stamper: Stamper, damped_streak: int) -> None:
    """Fail-fast stamp guard: never hand NaN/Inf to ``np.linalg.solve``.

    A non-finite entry on the *first* DC stamp (at the caller's own
    initial point) means the deck itself is broken — NaN device
    parameters, an Inf source level — and no recovery rung can fix
    that: raise a :class:`~repro.errors.StampError` naming the
    offending element(s) and equation row(s).  At a later iterate it is
    (over)flow of a diverging Newton walk, and in transient mode even an
    iteration-0 failure can be time-local (a device going bad past some
    breakpoint), so those stay :class:`~repro.errors.ConvergenceError`
    and the recovery ladder / timestep control own the retreat.
    """
    offenders = locate_nonfinite_stamps(circuit, ctx, gmin, extra_stamps)
    summary = describe_offenders(offenders)
    if iteration == 0 and ctx.mode == "dc":
        raise StampError(
            f"non-finite MNA stamp rejected before solve: {summary}",
            offenders=offenders, mode=ctx.mode, time=ctx.time,
        )
    raise _convergence_failure(
        f"non-finite MNA stamp at iteration {iteration} ({summary})",
        circuit, ctx, stamper, x, gmin, extra_stamps,
        iterations=iteration, damped_streak=damped_streak,
    )


def newton_solve(
    circuit,
    ctx: Context,
    x0: np.ndarray,
    options: Optional[NewtonOptions] = None,
    extra_stamps: Optional[Callable[[Stamper, Context], None]] = None,
) -> np.ndarray:
    """Solve the MNA system at the point described by ``ctx``.

    Parameters
    ----------
    circuit:
        A compiled :class:`~repro.circuit.netlist.Circuit`.
    ctx:
        Evaluation context (mode, time, integration method).  ``ctx.x`` is
        overwritten with each iterate.
    x0:
        Initial guess.
    extra_stamps:
        Optional callback adding testbench stamps (e.g. the stiff
        initial-condition clamps used by the operating-point analysis).

    Returns the converged solution vector.

    Raises
    ------
    ConvergenceError
        If the iteration does not meet tolerance within the allowed number
        of iterations, or the matrix becomes singular.  The error carries
        the KCL residual forensics described in the module docstring.
    """
    opts = options or NewtonOptions()
    circuit.compile()
    size = circuit.size
    num_nodes = circuit.num_nodes
    stamper = Stamper(size)
    x = np.array(x0, dtype=float, copy=True)
    if x.shape != (size,):
        raise ConvergenceError(
            f"initial guess has wrong size {x.shape}, expected ({size},)"
        )
    if not np.all(np.isfinite(x)):
        raise ConvergenceError("non-finite initial guess")

    gmin = max(opts.gmin, GMIN_FLOOR)
    trust = opts.trust
    #: Consecutive damped steps; an undamped step resets it.
    damped_streak = 0
    #: Iterations that needed the equilibrated fallback solve.
    defended_iterations = 0

    for iteration in range(opts.max_iterations):
        _restamp(circuit, ctx, stamper, x, gmin, extra_stamps)
        if not (np.isfinite(stamper.A).all() and np.isfinite(stamper.b).all()):
            _reject_nonfinite_stamp(circuit, ctx, x, gmin, extra_stamps,
                                    iteration, stamper, damped_streak)
        try:
            if trust.always_equilibrate:
                x_new = equilibrated_solve(stamper.A, stamper.b)
            else:
                x_new = np.linalg.solve(stamper.A, stamper.b)
        except np.linalg.LinAlgError:
            x_new = None
            if trust.defenses and not trust.always_equilibrate:
                # Conditioning defense: LU refused the raw system — retry
                # through exact power-of-two row/column equilibration
                # before declaring the matrix singular.
                try:
                    x_new = equilibrated_solve(stamper.A, stamper.b)
                    defended_iterations += 1
                except np.linalg.LinAlgError:
                    x_new = None
            if x_new is None:
                raise _convergence_failure(
                    f"singular MNA matrix at iteration {iteration}",
                    circuit, ctx, stamper, x, gmin, extra_stamps,
                    iterations=iteration, damped_streak=damped_streak,
                ) from None
        if not np.all(np.isfinite(x_new)):
            raise _convergence_failure(
                f"non-finite solution at iteration {iteration}",
                circuit, ctx, stamper, x, gmin, extra_stamps,
                iterations=iteration, damped_streak=damped_streak,
            )

        dx = x_new - x
        # Damp node voltages only; branch currents may legitimately jump.
        dv = dx[:num_nodes]
        max_dv = float(np.max(np.abs(dv))) if num_nodes else 0.0
        if max_dv > opts.damping:
            dx = dx * (opts.damping / max_dv)
            x = x + dx
            damped_streak += 1
            continue  # a damped step cannot be judged converged
        damped_streak = 0
        x = x_new

        v_err = max_dv
        i_err = float(np.max(np.abs(dx[num_nodes:]))) if size > num_nodes else 0.0
        v_scale = float(np.max(np.abs(x[:num_nodes]))) if num_nodes else 0.0
        if v_err <= opts.vntol + opts.reltol * v_scale and i_err <= max(
            opts.abstol, opts.reltol * (np.max(np.abs(x[num_nodes:])) if size > num_nodes else 0.0)
        ):
            # Certify the accepted solve against the final assembled
            # system; past-threshold residual/rcond triggers the
            # equilibration + iterative-refinement defenses (trust.py).
            x, cert = certify(stamper.A, stamper.b, x, trust)
            if trust.always_equilibrate or defended_iterations:
                cert.equilibrated = True
            ctx.cert = cert
            ctx.x = x
            return x

    raise _convergence_failure(
        f"Newton failed to converge in {opts.max_iterations} iterations",
        circuit, ctx, stamper, x, gmin, extra_stamps,
        iterations=opts.max_iterations, damped_streak=damped_streak,
    )
