"""Damped Newton-Raphson solver for the nonlinear MNA equations.

Each iteration re-stamps the linearised system ``A(x) x' = b(x)`` and
solves it directly (dense LU via ``numpy.linalg.solve``).  Damping limits
the per-iteration change of node voltages, which is essential for the
exponential subthreshold characteristics of the FinFET model.

A small ``gmin`` conductance from every node to ground keeps the matrix
non-singular when devices are fully cut off; homotopy strategies in
:mod:`repro.analysis.dc` raise it temporarily to walk difficult operating
points in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..errors import ConvergenceError
from .mna import Context, Stamper

#: Extra per-node conductance to ground, always present (siemens).
GMIN_FLOOR = 1e-12


@dataclass
class NewtonOptions:
    """Tuning knobs for the Newton iteration."""

    max_iterations: int = 150
    #: Absolute node-voltage convergence tolerance (volts).
    vntol: float = 1e-7
    #: Relative convergence tolerance.
    reltol: float = 1e-5
    #: Absolute branch-current convergence tolerance (amps).
    abstol: float = 1e-11
    #: Maximum node-voltage change applied per iteration (volts).
    damping: float = 0.4
    #: Extra conductance from each node to ground (homotopy knob).
    gmin: float = GMIN_FLOOR


def newton_solve(
    circuit,
    ctx: Context,
    x0: np.ndarray,
    options: Optional[NewtonOptions] = None,
    extra_stamps: Optional[Callable[[Stamper, Context], None]] = None,
) -> np.ndarray:
    """Solve the MNA system at the point described by ``ctx``.

    Parameters
    ----------
    circuit:
        A compiled :class:`~repro.circuit.netlist.Circuit`.
    ctx:
        Evaluation context (mode, time, integration method).  ``ctx.x`` is
        overwritten with each iterate.
    x0:
        Initial guess.
    extra_stamps:
        Optional callback adding testbench stamps (e.g. the stiff
        initial-condition clamps used by the operating-point analysis).

    Returns the converged solution vector.

    Raises
    ------
    ConvergenceError
        If the iteration does not meet tolerance within the allowed number
        of iterations, or the matrix becomes singular.
    """
    opts = options or NewtonOptions()
    circuit.compile()
    size = circuit.size
    num_nodes = circuit.num_nodes
    stamper = Stamper(size)
    x = np.array(x0, dtype=float, copy=True)
    if x.shape != (size,):
        raise ConvergenceError(
            f"initial guess has wrong size {x.shape}, expected ({size},)"
        )

    elements = list(circuit.elements())
    gmin = max(opts.gmin, GMIN_FLOOR)

    for iteration in range(opts.max_iterations):
        ctx.x = x
        stamper.clear()
        for element in elements:
            element.stamp(stamper, ctx)
        if extra_stamps is not None:
            extra_stamps(stamper, ctx)
        if num_nodes:
            idx = np.arange(num_nodes)
            stamper.A[idx, idx] += gmin
        try:
            x_new = np.linalg.solve(stamper.A, stamper.b)
        except np.linalg.LinAlgError:
            raise ConvergenceError(
                f"singular MNA matrix at iteration {iteration}",
                iterations=iteration,
            ) from None
        if not np.all(np.isfinite(x_new)):
            raise ConvergenceError(
                f"non-finite solution at iteration {iteration}",
                iterations=iteration,
            )

        dx = x_new - x
        # Damp node voltages only; branch currents may legitimately jump.
        dv = dx[:num_nodes]
        max_dv = float(np.max(np.abs(dv))) if num_nodes else 0.0
        if max_dv > opts.damping:
            dx = dx * (opts.damping / max_dv)
            x = x + dx
            continue  # a damped step cannot be judged converged
        x = x_new

        v_err = max_dv
        i_err = float(np.max(np.abs(dx[num_nodes:]))) if size > num_nodes else 0.0
        v_scale = float(np.max(np.abs(x[:num_nodes]))) if num_nodes else 0.0
        if v_err <= opts.vntol + opts.reltol * v_scale and i_err <= max(
            opts.abstol, opts.reltol * (np.max(np.abs(x[num_nodes:])) if size > num_nodes else 0.0)
        ):
            ctx.x = x
            return x

    raise ConvergenceError(
        f"Newton failed to converge in {opts.max_iterations} iterations",
        iterations=opts.max_iterations,
        residual=float(np.max(np.abs(dx))) if "dx" in locals() else float("nan"),
    )
