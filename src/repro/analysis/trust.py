"""Numerical-trust layer: solve certification and conditioning defenses.

The power-gating corners this repo simulates are numerically hostile by
construction: when the virtual-VDD rail floats behind a cut-off power
switch, the MNA matrix mixes on-FinFET conductances (~mS), MTJ branches
(~mS), subthreshold leakage (~pS) and the gmin floor (1e-12 S) in one
system — 9 to 15 decades of spread.  ``np.linalg.solve`` happily returns
*something* for such systems; nothing in the seed code said whether that
something could be trusted.

This module makes every accepted solve carry a :class:`Certificate`:

* ``residual_norm`` — the KCL residual ``‖A·x − b‖∞`` of the final
  linearised MNA system at the returned iterate (amps on node rows;
  devices are stamped as Norton companion pairs, so node rows are true
  current imbalances, and at Newton convergence this equals the
  nonlinear KCL residual to first order);
* ``cond_estimate`` — a cheap 1-norm condition estimate (Hager/Higham
  power iteration on ``A⁻¹``, a handful of O(n³-small) solves, no
  explicit inverse);
* ``refined`` / ``equilibrated`` — which conditioning defenses fired.

The defenses are *automatic*: when ``rcond`` or the residual crosses the
:class:`TrustOptions` thresholds, the final system is re-solved with
row/column equilibration (powers of two, so the scaling itself is
exact) and polished with iterative refinement.  Clean solves pay one
matvec and a few tiny dense solves — ≈0 against the Python-loop stamp
assembly that dominates every Newton iteration (measured in
``BENCH_engine.json``).

The same machinery backs the *fail-fast stamp guard*: a non-finite
matrix entry is rejected before ``np.linalg.solve`` can propagate
garbage, with per-element provenance (:func:`locate_nonfinite_stamps`)
naming the device that produced it instead of an opaque
``LinAlgError``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.linalg import lu_factor, lu_solve

#: Hager 1-norm estimator iteration cap; 2-3 almost always converges.
_CONDEST_MAX_ITER = 5

#: Below this order the exact 1-norm via the explicit inverse is used:
#: one LAPACK call beats the estimator's five, and LAPACK-call overhead
#: (not flops) dominates dense linear algebra on cell-sized systems.
_CONDEST_EXACT_N = 64


@dataclass
class TrustOptions:
    """Certification / conditioning-defense knobs (see module docstring).

    Attributes
    ----------
    certify:
        Master switch.  Off means solves return uncertified (all
        certificate fields NaN) — only useful for benchmarking the
        certification overhead itself.
    condest:
        Also estimate the 1-norm condition number.  The estimate costs
        one LU factorisation plus a few triangular solves per accepted
        solve; disable in extremely hot loops if profiling says so.
    condest_reuse_rtol:
        Condition-estimate reuse tolerance for slowly-varying systems
        (transient steps, Newton continuations).  When the matrix has
        drifted by less than this relative 1-norm amount since the last
        *healthy* estimate (rcond comfortably above ``rcond_threshold``),
        the cached estimate is reused instead of re-running Hager's
        iteration.  Conditioning is a slowly-varying property of these
        decks, and the residual threshold independently backs the
        defense trigger, so the reuse only ever affects the advisory
        annotation.  0 disables reuse.
    residual_threshold:
        KCL residual (amps) above which the conditioning defenses kick
        in.  The default is far above a healthy solve (~1e-12 A) and far
        below device currents (~1e-6 A).
    rcond_threshold:
        Reciprocal condition estimate below which the defenses kick in.
        1e-13 leaves the routine power-gating corners (~1e9..1e12
        condition) alone and catches the genuinely degenerate systems.
    defenses:
        Allow equilibration + iterative refinement at all.
    always_equilibrate:
        Equilibrate every solve instead of only past-threshold ones
        (what the recovery ladder's rung 0.5 forces).
    max_refinements:
        Iterative-refinement rounds per defended solve.
    """

    certify: bool = True
    condest: bool = True
    condest_reuse_rtol: float = 0.1
    residual_threshold: float = 1e-6
    rcond_threshold: float = 1e-13
    defenses: bool = True
    always_equilibrate: bool = False
    max_refinements: int = 1
    #: Runtime condest-reuse cache (managed by :func:`certify`, not a knob).
    _condest_cache: Optional["_CondestCache"] = field(
        default=None, repr=False, compare=False)


@dataclass
class Certificate:
    """Numerical-trust annotation of one accepted solve.

    All fields are plain data; :meth:`to_dict` is JSON-safe so the
    certificate travels through campaign journals and result caches.
    """

    residual_norm: float = float("nan")
    cond_estimate: float = float("nan")
    refined: bool = False
    equilibrated: bool = False
    #: Refinement rounds actually applied.
    refinement_rounds: int = 0
    #: Residual before the defenses fired (== residual_norm when clean).
    residual_before: float = float("nan")

    @property
    def rcond(self) -> float:
        """Reciprocal condition estimate (NaN when not estimated)."""
        cond = self.cond_estimate
        if not np.isfinite(cond) or cond <= 0.0:
            return float("nan")
        return 1.0 / cond

    def defended(self) -> bool:
        return self.refined or self.equilibrated

    def to_dict(self) -> dict:
        return {
            "residual_norm": float(self.residual_norm),
            "cond_estimate": float(self.cond_estimate),
            "refined": bool(self.refined),
            "equilibrated": bool(self.equilibrated),
            "refinement_rounds": int(self.refinement_rounds),
            "residual_before": float(self.residual_before),
        }


def onenorm_condest(A: np.ndarray) -> float:
    """Cheap 1-norm condition estimate ``‖A‖₁ · est(‖A⁻¹‖₁)``.

    Small systems (order ≤ ``_CONDEST_EXACT_N``, which covers every
    single-cell testbench in this repo) get the *exact* 1-norm through
    the explicit inverse — at that size one LAPACK call is cheaper than
    an estimator's five.  Larger systems use Hager's power iteration on
    ``A⁻¹`` (Higham's Algorithm 4.1): each step solves ``A·y = x`` and
    ``Aᵀ·z = sign(y)`` — no explicit inverse.  ``A`` is LU-factorised
    *once*; all forward and transposed solves reuse the factors
    (``lu_solve(..., trans=1)``), so the whole estimate costs one O(n³)
    factorisation plus a few O(n²) triangular sweeps.  Returns ``inf``
    for a singular matrix and ``nan`` when the estimate itself broke
    down (non-finite intermediates).
    """
    n = A.shape[0]
    if n == 0:
        return 1.0
    norm_a = float(np.linalg.norm(A, 1))
    if norm_a == 0.0:
        return float("inf")
    if n <= _CONDEST_EXACT_N:
        try:
            with np.errstate(all="ignore"):
                inv = np.linalg.inv(A)
        except np.linalg.LinAlgError:
            return float("inf")
        if not np.all(np.isfinite(inv)):
            return float("inf")
        return norm_a * float(np.max(np.sum(np.abs(inv), axis=0)))
    try:
        with warnings.catch_warnings():
            # scipy warns (LinAlgWarning) on exactly-singular input; the
            # non-finite checks below already turn that into ``inf``.
            warnings.simplefilter("ignore")
            factors = lu_factor(A, check_finite=False)
            x = np.full(n, 1.0 / n)
            estimate = 0.0
            x_buf = np.zeros(n)
            for _ in range(_CONDEST_MAX_ITER):
                y = lu_solve(factors, x, check_finite=False)
                if not np.all(np.isfinite(y)):
                    return float("inf")
                new_estimate = float(np.linalg.norm(y, 1))
                sign = np.where(y >= 0.0, 1.0, -1.0)
                z = lu_solve(factors, sign, trans=1, check_finite=False)
                if not np.all(np.isfinite(z)):
                    return float("inf")
                j = int(np.argmax(np.abs(z)))
                # Converged when the new unit vector would repeat (standard
                # Hager termination: |z|_inf <= z.x) or the estimate stalls.
                if (float(np.abs(z[j])) <= float(z @ x)
                        or new_estimate <= estimate):
                    estimate = max(estimate, new_estimate)
                    break
                estimate = new_estimate
                x = x_buf
                x.fill(0.0)
                x[j] = 1.0
        return norm_a * estimate
    except (np.linalg.LinAlgError, ValueError):
        return float("inf")


@dataclass
class _CondestCache:
    """Last healthy condition estimate, keyed on a matrix snapshot."""

    snapshot: np.ndarray
    norm: float
    estimate: float
    #: Scratch matrix for the drift check (avoids a per-solve alloc).
    scratch: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self):
        if self.scratch is None:
            self.scratch = np.empty_like(self.snapshot)


def _condest_with_reuse(A: np.ndarray, opts: "TrustOptions") -> float:
    """Condition estimate with reuse across slowly-varying systems.

    Transient stepping and Newton continuations certify a long sequence
    of matrices that differ only in companion-model and linearisation
    terms; their conditioning drifts far more slowly than their entries.
    When the drift since the last estimate is below
    ``condest_reuse_rtol`` *and* that estimate was comfortably healthy
    (rcond above ``1e4 × rcond_threshold``, so reuse can never mask a
    defense trigger), the cached value is returned without any solve.

    The drift test bounds the 1-norm through the Frobenius norm
    (``‖M‖₁ ≤ √n·‖M‖_F``) because the Frobenius norm of the difference
    is one BLAS dot — the check must stay negligible against the
    Python-loop stamp assembly or the cache defeats its own purpose.
    """
    cache = opts._condest_cache
    rtol = opts.condest_reuse_rtol
    n = A.shape[0]
    if (rtol > 0.0 and cache is not None
            and cache.snapshot.shape == A.shape
            and np.isfinite(cache.estimate) and cache.estimate > 0.0
            and 1.0 / cache.estimate > 1e4 * opts.rcond_threshold):
        np.subtract(A, cache.snapshot, out=cache.scratch)
        flat = cache.scratch.ravel()
        fro_sq = float(np.dot(flat, flat))
        if fro_sq * n <= (rtol * cache.norm) ** 2:
            return cache.estimate
    estimate = onenorm_condest(A)
    norm_a = float(np.linalg.norm(A, 1)) if A.size else 0.0
    opts._condest_cache = _CondestCache(A.copy(), norm_a, estimate)
    return estimate


def equilibration_scales(A: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Row/column equilibration scalings for ``A``, as powers of two.

    Mirrors LAPACK ``dgeequ``: rows are scaled by the reciprocal of
    their largest magnitude, then columns of the row-scaled matrix
    likewise.  Rounding each scale to a power of two makes the scaling
    itself exact in floating point, so equilibration can never *add*
    rounding error.  All-zero rows/columns get scale 1 (the solve will
    report singularity on its own).
    """
    with np.errstate(divide="ignore", over="ignore"):
        row_max = np.max(np.abs(A), axis=1)
        r = np.where(row_max > 0.0, 1.0 / row_max, 1.0)
        r = np.exp2(np.round(np.log2(r)))
        col_max = np.max(np.abs(A) * r[:, None], axis=0)
        c = np.where(col_max > 0.0, 1.0 / col_max, 1.0)
        c = np.exp2(np.round(np.log2(c)))
    return r, c


def equilibrated_solve(A: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``A·x = b`` through the row/column-equilibrated system.

    Solves ``(R·A·C)·y = R·b`` and returns ``x = C·y`` where R and C are
    exact power-of-two scalings.  Raises ``numpy.linalg.LinAlgError``
    exactly when the scaled system is singular.
    """
    r, c = equilibration_scales(A)
    y = np.linalg.solve(A * r[:, None] * c[None, :], b * r)
    return c * y


def refine(A: np.ndarray, b: np.ndarray, x: np.ndarray,
           rounds: int = 1, equilibrate: bool = False) -> Tuple[np.ndarray, int]:
    """Iterative refinement of ``x`` toward ``A·x = b``.

    Each round computes the residual ``r = b − A·x`` and adds the
    correction ``A⁻¹·r``; a round that does not reduce the residual
    inf-norm is rolled back and refinement stops.  Returns the refined
    vector and the number of rounds actually applied.
    """
    applied = 0
    best = float(np.max(np.abs(A @ x - b))) if x.size else 0.0
    for _ in range(max(rounds, 0)):
        residual = b - A @ x
        try:
            if equilibrate:
                correction = equilibrated_solve(A, residual)
            else:
                correction = np.linalg.solve(A, residual)
        except np.linalg.LinAlgError:
            break
        candidate = x + correction
        if not np.all(np.isfinite(candidate)):
            break
        new_norm = float(np.max(np.abs(A @ candidate - b)))
        if new_norm >= best:
            break
        x = candidate
        best = new_norm
        applied += 1
    return x, applied


def residual_inf_norm(A: np.ndarray, b: np.ndarray, x: np.ndarray) -> float:
    """``‖A·x − b‖∞`` (amps on MNA node rows)."""
    if x.size == 0:
        return 0.0
    return float(np.max(np.abs(A @ x - b)))


def certify(A: np.ndarray, b: np.ndarray, x: np.ndarray,
            options: Optional[TrustOptions] = None) -> Tuple[np.ndarray, Certificate]:
    """Certify an accepted solve, applying conditioning defenses if needed.

    Returns the (possibly refined) solution and its :class:`Certificate`.
    The caller hands in the final assembled system and the solution the
    plain solve produced; when ``residual_norm`` or ``rcond`` crosses
    the thresholds (or ``always_equilibrate`` is set), the system is
    re-solved through exact power-of-two row/column equilibration and
    polished with iterative refinement.
    """
    opts = options or TrustOptions()
    cert = Certificate()
    if not opts.certify:
        return x, cert
    cert.residual_norm = residual_inf_norm(A, b, x)
    cert.residual_before = cert.residual_norm
    if opts.condest:
        cert.cond_estimate = _condest_with_reuse(A, opts)

    if not opts.defenses:
        return x, cert
    rcond = cert.rcond
    suspect = (
        opts.always_equilibrate
        or cert.residual_norm > opts.residual_threshold
        or not np.isfinite(cert.residual_norm)
        or (np.isfinite(rcond) and rcond < opts.rcond_threshold)
        or (opts.condest and not np.isfinite(cert.cond_estimate))
    )
    if not suspect:
        return x, cert

    defended = x
    try:
        candidate = equilibrated_solve(A, b)
        if np.all(np.isfinite(candidate)):
            # Past the rcond threshold a small residual does not imply a
            # small *error*, so prefer the solution computed through the
            # better-conditioned scaled system whenever its residual is
            # comparable (within a few ulp-scale factors) — not only when
            # it is strictly no worse.
            if (residual_inf_norm(A, b, candidate)
                    <= 4.0 * max(cert.residual_norm, 0.0)
                    or not np.isfinite(cert.residual_norm)):
                defended = candidate
                cert.equilibrated = True
    except np.linalg.LinAlgError:
        pass
    defended, rounds = refine(A, b, defended, rounds=opts.max_refinements,
                              equilibrate=True)
    cert.refinement_rounds = rounds
    cert.refined = rounds > 0
    cert.residual_norm = residual_inf_norm(A, b, defended)
    return defended, cert


# ---------------------------------------------------------------------------
# non-finite stamp provenance
# ---------------------------------------------------------------------------

def locate_nonfinite_stamps(circuit, ctx, gmin: float = 0.0,
                            extra_stamps=None) -> List[Dict[str, object]]:
    """Name the elements (and rows) stamping non-finite entries.

    Re-stamps each element in isolation at the context's iterate and
    reports every element whose own contribution contains NaN/Inf,
    together with the offending equation rows (by MNA row label).  Used
    by the solver's fail-fast stamp guard — this is a cold diagnostic
    path that only runs when a solve is already doomed.
    """
    from .mna import Stamper
    from .solver import row_labels

    labels = row_labels(circuit)
    offenders: List[Dict[str, object]] = []

    def bad_rows(stamper: Stamper) -> List[str]:
        bad = ~np.isfinite(stamper.A)
        rows = set(np.nonzero(bad)[0].tolist())
        rows.update(np.nonzero(~np.isfinite(stamper.b))[0].tolist())
        return [labels[i] for i in sorted(rows)]

    for element in circuit.elements():  # lint: skip=RV701 — cold failure path
        probe = Stamper(circuit.size)
        try:
            element.stamp(probe, ctx)
        except (ArithmeticError, ValueError) as err:
            offenders.append({"element": element.name,
                              "rows": [], "error": str(err)})
            continue
        rows = bad_rows(probe)
        if rows:
            offenders.append({"element": element.name, "rows": rows})
    if extra_stamps is not None:
        probe = Stamper(circuit.size)
        extra_stamps(probe, ctx)
        rows = bad_rows(probe)
        if rows:
            offenders.append({"element": "<extra_stamps>", "rows": rows})
    if gmin and not np.isfinite(gmin):
        offenders.append({"element": "<gmin>", "rows": []})
    return offenders


def describe_offenders(offenders: List[Dict[str, object]]) -> str:
    """One-line summary of :func:`locate_nonfinite_stamps` output."""
    if not offenders:
        return "no single element stamps non-finite values in isolation"
    parts = []
    for entry in offenders[:4]:
        rows = entry.get("rows") or []
        where = f" @ rows [{', '.join(map(str, rows[:3]))}]" if rows else ""
        err = entry.get("error")
        suffix = f" ({err})" if err else ""
        parts.append(f"{entry['element']}{where}{suffix}")
    more = len(offenders) - 4
    if more > 0:
        parts.append(f"+{more} more")
    return "; ".join(parts)


@dataclass
class TrustAccumulator:
    """Running worst-case certification over many solves.

    Characterisation runners and campaign aggregation use this to fold
    the per-solve certificates of a whole extraction into three numbers
    that travel with the cached result: the worst KCL residual, the
    worst condition estimate, and how many solves needed defenses.
    """

    residual_norm_max: float = 0.0
    cond_estimate_max: float = 0.0
    defended_solves: int = 0
    solves: int = 0

    def note(self, obj) -> None:
        """Fold in a Solution / TransientResult / Certificate-like."""
        residual = getattr(obj, "residual_norm", None)
        cond = getattr(obj, "cond_estimate", None)
        if residual is not None and np.isfinite(residual):
            self.residual_norm_max = max(self.residual_norm_max,
                                         float(residual))
        if cond is not None and np.isfinite(cond):
            self.cond_estimate_max = max(self.cond_estimate_max, float(cond))
        # Certificates distinguish refined from equilibrated; ``defended``
        # covers both.  ``refined`` is a bool on Solution and a step
        # count on TransientResult; int() folds both into the tally.
        defended = getattr(obj, "defended", None)
        if callable(defended):
            self.defended_solves += int(bool(defended()))
        else:
            self.defended_solves += int(getattr(obj, "refined", False) or 0)
        self.solves += 1

    def as_extras(self) -> Dict[str, float]:
        """Flat float dict for ``CellCharacterization.extras`` / journals."""
        return {
            "trust_residual_norm_max": float(self.residual_norm_max),
            "trust_cond_estimate_max": float(self.cond_estimate_max),
            "trust_defended_solves": float(self.defended_solves),
            "trust_certified_solves": float(self.solves),
        }
