"""Circuit analyses: DC operating point, DC sweeps and transient.

The public entry points are:

* :func:`repro.analysis.dc.operating_point`
* :func:`repro.analysis.sweep.dc_sweep`
* :func:`repro.analysis.transient.transient`

All analyses build a dense modified-nodal-analysis (MNA) system
(:mod:`repro.analysis.mna`) and solve the nonlinear equations with the
damped Newton-Raphson iteration in :mod:`repro.analysis.solver`.  Every
accepted solve is certified by the numerical-trust layer
(:mod:`repro.analysis.trust`): results carry ``residual_norm`` /
``cond_estimate`` / ``refined`` annotations.
"""

from .ac import ACResult, ac_analysis
from .dc import operating_point, OperatingPointOptions
from .sweep import dc_sweep, SweepResult
from .transient import transient, TransientOptions
from .results import Solution, TransientResult
from .trust import Certificate, TrustAccumulator, TrustOptions

__all__ = [
    "ac_analysis",
    "ACResult",
    "operating_point",
    "OperatingPointOptions",
    "dc_sweep",
    "SweepResult",
    "transient",
    "TransientOptions",
    "Solution",
    "TransientResult",
    "Certificate",
    "TrustAccumulator",
    "TrustOptions",
]
