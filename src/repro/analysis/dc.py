"""DC operating-point analysis with gmin- and source-stepping homotopy.

Bistable circuits (SRAM cells!) have multiple valid operating points, so
the analysis accepts an ``ic`` mapping that pins chosen nodes near target
voltages during a first solve (via stiff Norton clamps), then releases the
clamps and re-solves starting from the pinned solution.  The final answer
therefore satisfies the *unclamped* circuit equations but sits in the
requested stability basin — the same trick as SPICE ``.NODESET``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

import numpy as np

from ..recovery.ladder import LadderResult, RecoveryOptions, recover_dc
from .mna import Context, Stamper
from .results import Solution
from .solver import GMIN_FLOOR, NewtonOptions

#: Conductance of the initial-condition clamps (siemens).  Device currents
#: are micro-amps, so 1 kS pins nodes to within nanovolts of the target.
_CLAMP_CONDUCTANCE = 1e3


@dataclass
class OperatingPointOptions:
    """Options for :func:`operating_point`."""

    newton: NewtonOptions = field(default_factory=NewtonOptions)
    #: gmin-stepping ladder, solved from first to last.
    gmin_steps: tuple = (1e-3, 1e-5, 1e-7, 1e-9, GMIN_FLOOR)
    #: source-stepping ladder (fractions of full source level).
    source_steps: tuple = (0.1, 0.3, 0.5, 0.7, 0.85, 1.0)
    #: Recovery-ladder configuration (the gmin/source steps above feed
    #: the corresponding rungs, so existing callers keep their knobs).
    recovery: RecoveryOptions = field(default_factory=RecoveryOptions)

    def recovery_options(self) -> RecoveryOptions:
        return replace(self.recovery,
                       gmin_steps=tuple(self.gmin_steps),
                       source_steps=tuple(self.source_steps))


def operating_point(
    circuit,
    time: float = 0.0,
    ic: Optional[Dict[str, float]] = None,
    x0: Optional[np.ndarray] = None,
    options: Optional[OperatingPointOptions] = None,
    release_clamps: bool = True,
) -> Solution:
    """Solve the DC operating point of ``circuit`` at ``time``.

    Parameters
    ----------
    time:
        Timepoint at which waveform-driven sources are evaluated (bias
        rails are usually constant, but benchmark testbenches reuse their
        waveforms for the pre-transient solve at t=0).
    ic:
        Optional ``{node_name: volts}`` mapping pinning nodes during the
        solve.
    x0:
        Optional warm-start vector (used by sweeps).
    release_clamps:
        With the default ``True`` the pins behave like SPICE ``.NODESET``:
        after a clamped pre-solve the clamps are removed and the circuit
        is re-solved, so the answer is a *true* operating point in the
        selected stability basin.  ``False`` gives SPICE ``.IC``
        semantics — the pinned values are held in the returned solution —
        which is what a transient start-point wants.

    Returns
    -------
    Solution
        The converged operating point, annotated with ``recovery_rung``
        (``None`` for a clean solve) and ``recovery_trace``.
    """
    opts = options or OperatingPointOptions()
    circuit.compile()
    guess = np.zeros(circuit.size) if x0 is None else np.array(x0, dtype=float)
    recovery = opts.recovery_options()

    clamps = _resolve_clamps(circuit, ic)
    if clamps:
        # With release_clamps the clamped pre-solve is scaffolding — its
        # certificate is superseded by the released solve's — so skip
        # the condition estimate there (the residual check keeps the
        # conditioning defenses armed either way).
        scaffold = opts.newton
        if release_clamps and scaffold.trust.condest:
            scaffold = replace(opts.newton,
                               trust=replace(opts.newton.trust,
                                             condest=False))
        clamped = recover_dc(circuit, time, guess, scaffold,
                             extra_stamps=_make_clamp_stamper(clamps),
                             options=recovery)
        if not release_clamps:
            return _annotate(Solution(circuit, clamped.x, time), clamped)
        # Release the clamps; warm-start from the clamped solution.  The
        # solve must stay in the selected basin because the clamped point
        # is (near) a true solution there — so the source-ramp rung (which
        # restarts from zero and may land a bistable cell on the other
        # branch) is disabled for the release solve.
        released = recover_dc(circuit, time, clamped.x, opts.newton,
                              options=replace(recovery, source_ramp=False))
        return _annotate(Solution(circuit, released.x, time),
                         clamped, released)

    result = recover_dc(circuit, time, guess, opts.newton, options=recovery)
    return _annotate(Solution(circuit, result.x, time), result)


def _annotate(sol: Solution, *ladders: LadderResult) -> Solution:
    """Attach recovery forensics from the ladder run(s) to a solution."""
    rungs = [lad.rung for lad in ladders if lad.rung is not None]
    sol.recovery_rung = rungs[-1] if rungs else None
    sol.recovery_trace = [a.to_dict() for lad in ladders for a in lad.trace]
    # The last ladder performed the final (authoritative) solve; its
    # certificate is the solution's numerical-trust annotation.
    return sol.annotate_certificate(ladders[-1].cert if ladders else None)


def _resolve_clamps(circuit, ic: Optional[Dict[str, float]]):
    if not ic:
        return []
    return [(circuit.index_of(node), float(v)) for node, v in ic.items()]


def _make_clamp_stamper(clamps):
    def extra(stamper: Stamper, ctx: Context) -> None:
        for node, target in clamps:
            if node < 0:
                continue
            stamper.conductance(node, -1, _CLAMP_CONDUCTANCE)
            # Norton source driving the node toward the target.
            stamper.current(-1, node, _CLAMP_CONDUCTANCE * target * ctx.source_scale)

    return extra
