"""DC operating-point analysis with gmin- and source-stepping homotopy.

Bistable circuits (SRAM cells!) have multiple valid operating points, so
the analysis accepts an ``ic`` mapping that pins chosen nodes near target
voltages during a first solve (via stiff Norton clamps), then releases the
clamps and re-solves starting from the pinned solution.  The final answer
therefore satisfies the *unclamped* circuit equations but sits in the
requested stability basin — the same trick as SPICE ``.NODESET``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..errors import ConvergenceError
from .mna import Context, Stamper
from .results import Solution
from .solver import GMIN_FLOOR, NewtonOptions, newton_solve

#: Conductance of the initial-condition clamps (siemens).  Device currents
#: are micro-amps, so 1 kS pins nodes to within nanovolts of the target.
_CLAMP_CONDUCTANCE = 1e3


@dataclass
class OperatingPointOptions:
    """Options for :func:`operating_point`."""

    newton: NewtonOptions = field(default_factory=NewtonOptions)
    #: gmin-stepping ladder, solved from first to last.
    gmin_steps: tuple = (1e-3, 1e-5, 1e-7, 1e-9, GMIN_FLOOR)
    #: source-stepping ladder (fractions of full source level).
    source_steps: tuple = (0.1, 0.3, 0.5, 0.7, 0.85, 1.0)


def operating_point(
    circuit,
    time: float = 0.0,
    ic: Optional[Dict[str, float]] = None,
    x0: Optional[np.ndarray] = None,
    options: Optional[OperatingPointOptions] = None,
    release_clamps: bool = True,
) -> Solution:
    """Solve the DC operating point of ``circuit`` at ``time``.

    Parameters
    ----------
    time:
        Timepoint at which waveform-driven sources are evaluated (bias
        rails are usually constant, but benchmark testbenches reuse their
        waveforms for the pre-transient solve at t=0).
    ic:
        Optional ``{node_name: volts}`` mapping pinning nodes during the
        solve.
    x0:
        Optional warm-start vector (used by sweeps).
    release_clamps:
        With the default ``True`` the pins behave like SPICE ``.NODESET``:
        after a clamped pre-solve the clamps are removed and the circuit
        is re-solved, so the answer is a *true* operating point in the
        selected stability basin.  ``False`` gives SPICE ``.IC``
        semantics — the pinned values are held in the returned solution —
        which is what a transient start-point wants.

    Returns
    -------
    Solution
        The converged operating point.
    """
    opts = options or OperatingPointOptions()
    circuit.compile()
    guess = np.zeros(circuit.size) if x0 is None else np.array(x0, dtype=float)

    clamps = _resolve_clamps(circuit, ic)
    if clamps:
        clamped = _solve_with_fallbacks(
            circuit, time, guess, opts, extra=_make_clamp_stamper(clamps)
        )
        if not release_clamps:
            return Solution(circuit, clamped, time)
        # Release the clamps; warm-start from the clamped solution.  The
        # solve must stay in the selected basin because the clamped point
        # is (near) a true solution there.
        x = newton_solve(
            circuit, Context(mode="dc", time=time), clamped, opts.newton
        )
        return Solution(circuit, x, time)

    x = _solve_with_fallbacks(circuit, time, guess, opts, extra=None)
    return Solution(circuit, x, time)


def _resolve_clamps(circuit, ic: Optional[Dict[str, float]]):
    if not ic:
        return []
    return [(circuit.index_of(node), float(v)) for node, v in ic.items()]


def _make_clamp_stamper(clamps):
    def extra(stamper: Stamper, ctx: Context) -> None:
        for node, target in clamps:
            if node < 0:
                continue
            stamper.conductance(node, -1, _CLAMP_CONDUCTANCE)
            # Norton source driving the node toward the target.
            stamper.current(-1, node, _CLAMP_CONDUCTANCE * target * ctx.source_scale)

    return extra


def _solve_with_fallbacks(circuit, time, guess, opts, extra):
    """Direct Newton, then gmin stepping, then source stepping."""
    ctx = Context(mode="dc", time=time)
    try:
        return newton_solve(circuit, ctx, guess, opts.newton, extra)
    except ConvergenceError:
        pass

    # gmin stepping: relax with large shunt conductances, tighten gradually.
    x = guess
    try:
        for gmin in opts.gmin_steps:
            stepped = NewtonOptions(**{**opts.newton.__dict__, "gmin": gmin})
            ctx = Context(mode="dc", time=time)
            x = newton_solve(circuit, ctx, x, stepped, extra)
        return x
    except ConvergenceError:
        pass

    # Source stepping: ramp all independent sources from a fraction upward.
    x = np.zeros_like(guess)
    last_error: Optional[ConvergenceError] = None
    for scale in opts.source_steps:
        ctx = Context(mode="dc", time=time, source_scale=scale)
        try:
            x = newton_solve(circuit, ctx, x, opts.newton, extra)
        except ConvergenceError as err:
            last_error = err
            # One retry with elevated gmin at this rung.
            stepped = NewtonOptions(**{**opts.newton.__dict__, "gmin": 1e-6})
            x = newton_solve(circuit, ctx, x, stepped, extra)
    if last_error is not None:
        # Final polish at full scale and floor gmin.
        ctx = Context(mode="dc", time=time)
        x = newton_solve(circuit, ctx, x, opts.newton, extra)
    return x
