"""Dense modified-nodal-analysis system assembly.

The MNA unknown vector is ``[node voltages..., branch currents...]``.
Ground is index ``-1`` and is simply skipped when stamping.  Circuits in
this project are small (an NV-SRAM cell plus testbench is ~25 unknowns),
so a dense ``numpy`` matrix with Python-loop assembly is both simple and
fast enough; no sparse machinery is needed.

Sign conventions
----------------
* Node equations are KCL with currents *into* the node on the RHS, i.e.
  ``stamper.current(p, n, i)`` describes a source pushing ``i`` amps from
  node ``p`` through itself into node ``n``.
* Voltage-source branch currents follow SPICE: positive current flows from
  the + terminal through the source to the - terminal.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class Stamper:
    """Accumulates element stamps into the dense MNA matrix and RHS.

    ``dtype`` is ``float`` for DC/transient and ``complex`` for the AC
    small-signal system (G + jwC).
    """

    def __init__(self, size: int, dtype=float):
        self.size = size
        self.A = np.zeros((size, size), dtype=dtype)
        self.b = np.zeros(size, dtype=dtype)

    def clear(self) -> None:
        self.A[:, :] = 0.0
        self.b[:] = 0.0

    def conductance(self, p: int, n: int, g: float) -> None:
        """Stamp a two-terminal conductance ``g`` between nodes p and n."""
        if p >= 0:
            self.A[p, p] += g
            if n >= 0:
                self.A[p, n] -= g
        if n >= 0:
            self.A[n, n] += g
            if p >= 0:
                self.A[n, p] -= g

    def current(self, p: int, n: int, i: float) -> None:
        """Stamp an independent current source driving ``i`` amps p -> n."""
        if p >= 0:
            self.b[p] -= i
        if n >= 0:
            self.b[n] += i

    def vccs(self, p: int, n: int, cp: int, cn: int, gm: float) -> None:
        """Voltage-controlled current source: gm * V(cp,cn) flowing p -> n."""
        for row, sign_row in ((p, 1.0), (n, -1.0)):
            if row < 0:
                continue
            if cp >= 0:
                self.A[row, cp] += sign_row * gm
            if cn >= 0:
                self.A[row, cn] -= sign_row * gm

    def matrix(self, row: int, col: int, value: float) -> None:
        """Raw matrix entry (used by voltage-source branch rows)."""
        if row >= 0 and col >= 0:
            self.A[row, col] += value

    def rhs(self, row: int, value: float) -> None:
        """Raw RHS entry."""
        if row >= 0:
            self.b[row] += value


class Context:
    """Per-evaluation context handed to ``Element.stamp``/``commit``.

    Attributes
    ----------
    mode:
        ``"dc"`` or ``"tran"``.
    time:
        Simulation time of the point being solved (seconds).
    dt:
        Current timestep (transient only).
    method:
        Companion-model method: ``"be"`` or ``"trap"``.
    x:
        Current Newton iterate / committed solution vector.
    source_scale:
        Multiplier applied by independent sources to their level; used by
        the source-stepping homotopy in :mod:`repro.analysis.dc`.
    cert:
        :class:`~repro.analysis.trust.Certificate` of the last *accepted*
        Newton solve performed with this context, or ``None``.  Written
        by ``newton_solve``; read by the analyses to annotate results.
    """

    __slots__ = ("mode", "time", "dt", "method", "x", "source_scale",
                 "cert")

    def __init__(self, mode: str = "dc", time: float = 0.0, dt: float = 0.0,
                 method: str = "trap", x: Optional[np.ndarray] = None,
                 source_scale: float = 1.0):
        self.mode = mode
        self.time = time
        self.dt = dt
        self.method = method
        self.x = x if x is not None else np.zeros(0)
        self.source_scale = source_scale
        self.cert = None

    def v(self, index: int) -> float:
        """Voltage of node ``index`` (0.0 for ground)."""
        if index < 0:
            return 0.0
        return float(self.x[index])
