"""DC sweep analysis with warm-started continuation.

Sweeps the level of one independent source across a grid, solving the DC
operating point at each value starting from the previous solution.  This
is how the Fig. 3 leakage/store-current curves and the Fig. 4 power-switch
sizing curves are produced, and how static-noise-margin butterfly curves
are traced.

With ``on_error="skip"`` the sweep has partial-result semantics: a point
whose solve fails even after the recovery ladder is recorded as a
:class:`~repro.recovery.partial.SkipRecord` and rendered as NaN in every
array accessor, and the sweep continues — a 100-point sweep always comes
back with 100 annotated entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..errors import AnalysisError, ConvergenceError
from ..recovery.partial import SkipRecord
from .dc import OperatingPointOptions, operating_point
from .results import Solution


@dataclass
class SweepResult:
    """Result of :func:`dc_sweep`.

    Attributes
    ----------
    values:
        The swept source levels.
    solutions:
        One :class:`~repro.analysis.results.Solution` per level, or
        ``None`` for points skipped under ``on_error="skip"``.
    skips:
        :class:`~repro.recovery.partial.SkipRecord` entries for the
        skipped points (empty for a fully converged sweep).
    """

    source_name: str
    values: np.ndarray
    solutions: List[Optional[Solution]]
    skips: List[SkipRecord] = field(default_factory=list)

    def voltage(self, node: str) -> np.ndarray:
        """Node voltage across the sweep (NaN at skipped points)."""
        return self.measure(lambda s: s.voltage(node))

    def measure(self, func: Callable[[Solution], float]) -> np.ndarray:
        """Apply an arbitrary per-point measurement across the sweep.

        Skipped points yield NaN without calling ``func``.
        """
        return np.array([
            func(s) if s is not None else float("nan")
            for s in self.solutions
        ])

    def branch_current(self, source: str) -> np.ndarray:
        """Branch current of a voltage source across the sweep."""
        return self.measure(lambda s: s.branch_current(source))

    def residual_norms(self) -> np.ndarray:
        """Per-point solve certification ``‖A·x − b‖∞`` (amps; NaN at
        skipped points — see :mod:`repro.analysis.trust`)."""
        return self.measure(lambda s: s.residual_norm)

    def cond_estimates(self) -> np.ndarray:
        """Per-point 1-norm condition estimates (NaN at skipped points)."""
        return self.measure(lambda s: s.cond_estimate)

    @property
    def num_skipped(self) -> int:
        return len(self.skips)

    def __len__(self) -> int:
        return len(self.values)


def dc_sweep(
    circuit,
    source_name: str,
    values: Sequence[float],
    ic: Optional[Dict[str, float]] = None,
    options: Optional[OperatingPointOptions] = None,
    on_error: str = "raise",
) -> SweepResult:
    """Sweep the DC level of ``source_name`` over ``values``.

    The first point may use ``ic`` to select a stability basin; subsequent
    points are warm-started from the previous solution, which keeps
    bistable cells on the same branch through the sweep (the behaviour
    needed for butterfly-curve tracing).

    ``on_error`` selects the failure policy: ``"raise"`` (default)
    propagates the first :class:`~repro.errors.ConvergenceError` after the
    recovery ladder is exhausted; ``"skip"`` records the point as a
    :class:`~repro.recovery.partial.SkipRecord` in ``SweepResult.skips``
    and continues, warm-starting the next point from the last good
    solution.
    """
    if on_error not in ("raise", "skip"):
        raise AnalysisError(
            f"dc_sweep: on_error must be 'raise' or 'skip', got {on_error!r}")
    values = np.asarray(list(values), dtype=float)
    if values.size == 0:
        raise AnalysisError("dc_sweep: empty value list")
    element = circuit[source_name]
    if not hasattr(element, "set_level"):
        raise AnalysisError(f"{source_name} is not a sweepable source")

    original_dc = element.dc
    original_wave = element.waveform
    solutions: List[Optional[Solution]] = []
    skips: List[SkipRecord] = []
    try:
        x_prev = None
        for i, value in enumerate(values):
            element.set_level(float(value))
            try:
                sol = operating_point(
                    circuit,
                    ic=ic if i == 0 else None,
                    x0=x_prev,
                    options=options,
                )
            except ConvergenceError as err:
                if on_error == "raise":
                    raise
                solutions.append(None)
                skips.append(SkipRecord.from_error(
                    err, index=i, label=f"{source_name}={value:g}",
                    stage="dc_sweep", value=float(value)))
                continue
            solutions.append(sol)
            x_prev = sol.x
    finally:
        element.dc = original_dc
        element.waveform = original_wave
    return SweepResult(source_name, values, solutions, skips)
