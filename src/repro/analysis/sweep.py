"""DC sweep analysis with warm-started continuation.

Sweeps the level of one independent source across a grid, solving the DC
operating point at each value starting from the previous solution.  This
is how the Fig. 3 leakage/store-current curves and the Fig. 4 power-switch
sizing curves are produced, and how static-noise-margin butterfly curves
are traced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..errors import AnalysisError
from .dc import OperatingPointOptions, operating_point
from .results import Solution


@dataclass
class SweepResult:
    """Result of :func:`dc_sweep`.

    Attributes
    ----------
    values:
        The swept source levels.
    solutions:
        One :class:`~repro.analysis.results.Solution` per level.
    """

    source_name: str
    values: np.ndarray
    solutions: List[Solution]

    def voltage(self, node: str) -> np.ndarray:
        """Node voltage across the sweep."""
        return np.array([s.voltage(node) for s in self.solutions])

    def measure(self, func: Callable[[Solution], float]) -> np.ndarray:
        """Apply an arbitrary per-point measurement across the sweep."""
        return np.array([func(s) for s in self.solutions])

    def branch_current(self, source: str) -> np.ndarray:
        """Branch current of a voltage source across the sweep."""
        return np.array([s.branch_current(source) for s in self.solutions])

    def __len__(self) -> int:
        return len(self.values)


def dc_sweep(
    circuit,
    source_name: str,
    values: Sequence[float],
    ic: Optional[Dict[str, float]] = None,
    options: Optional[OperatingPointOptions] = None,
) -> SweepResult:
    """Sweep the DC level of ``source_name`` over ``values``.

    The first point may use ``ic`` to select a stability basin; subsequent
    points are warm-started from the previous solution, which keeps
    bistable cells on the same branch through the sweep (the behaviour
    needed for butterfly-curve tracing).
    """
    values = np.asarray(list(values), dtype=float)
    if values.size == 0:
        raise AnalysisError("dc_sweep: empty value list")
    element = circuit[source_name]
    if not hasattr(element, "set_level"):
        raise AnalysisError(f"{source_name} is not a sweepable source")

    original_dc = element.dc
    original_wave = element.waveform
    solutions: List[Solution] = []
    try:
        x_prev = None
        for i, value in enumerate(values):
            element.set_level(float(value))
            sol = operating_point(
                circuit,
                ic=ic if i == 0 else None,
                x0=x_prev,
                options=options,
            )
            solutions.append(sol)
            x_prev = sol.x
    finally:
        element.dc = original_dc
        element.waveform = original_wave
    return SweepResult(source_name, values, solutions)
