"""Adaptive transient analysis (trapezoidal with backward-Euler starts).

The integrator:

* starts from a DC operating point (optionally basin-selected via ``ic``),
* forces timepoints onto every waveform breakpoint so source edges are
  never stepped over,
* controls the local truncation error of the trapezoidal rule with a
  third-divided-difference estimate and PI-style step adaptation,
* falls back to backward Euler for the first step after t=0, after each
  breakpoint and after each device event (discontinuous derivatives make
  trapezoidal ringing and the LTE estimate meaningless there), and
* commits element state (capacitor history, MTJ magnetisation progress)
  only on *accepted* steps, so rejected steps have no side effects.

Device events (e.g. an MTJ flipping between its parallel and antiparallel
states) are reported by ``Element.commit`` and recorded in the result;
the step after an event is restarted small.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ConvergenceError, TimestepError
from ..recovery.ladder import RecoveryOptions, recover_transient_step
from .dc import OperatingPointOptions, operating_point
from .mna import Context
from .results import Solution, TransientResult
from .solver import NewtonOptions, newton_solve
from .trust import TrustAccumulator

#: Number of recent step sizes kept for TimestepError forensics.
_DT_HISTORY = 16


@dataclass
class TransientOptions:
    """Tuning knobs for :func:`transient`."""

    #: Initial step and the step used to restart after breakpoints/events.
    dt_initial: Optional[float] = None
    dt_min: float = 1e-16
    dt_max: Optional[float] = None
    #: LTE tolerances on node voltages.
    lte_reltol: float = 1e-3
    lte_abstol: float = 1e-5
    #: Maximum accepted steps before aborting (runaway guard).
    max_steps: int = 5_000_000
    newton: NewtonOptions = field(default_factory=NewtonOptions)
    op: OperatingPointOptions = field(default_factory=OperatingPointOptions)
    #: Step-growth limit per accepted step.
    max_growth: float = 2.0
    #: Transient-local recovery ladder, tried before the step is cut.
    recovery: RecoveryOptions = field(default_factory=RecoveryOptions)


def transient(
    circuit,
    t_stop: float,
    ic: Optional[Dict[str, float]] = None,
    options: Optional[TransientOptions] = None,
    t_start: float = 0.0,
) -> TransientResult:
    """Integrate ``circuit`` from ``t_start`` to ``t_stop``.

    Parameters
    ----------
    t_stop:
        End time in seconds; must exceed ``t_start``.
    ic:
        Optional node-voltage map selecting the initial stability basin
        (passed to the operating-point solve).
    options:
        Integrator tuning; sensible defaults derive the initial/maximum
        step from the span and the source breakpoints.

    Returns
    -------
    TransientResult
        Every accepted timepoint, all node voltages and branch currents,
        plus device events.
    """
    if t_stop <= t_start:
        raise TimestepError("t_stop must exceed t_start")
    opts = options or TransientOptions()
    circuit.compile()

    # SPICE ``.IC`` semantics: pinned nodes are *held* for the t=0 solve
    # and the transient relaxes from there.
    op = operating_point(circuit, time=t_start, ic=ic, options=opts.op,
                         release_clamps=False)
    span = t_stop - t_start
    dt_max = opts.dt_max if opts.dt_max is not None else span / 50.0
    dt_init = opts.dt_initial if opts.dt_initial is not None else min(
        dt_max, span / 1000.0
    )
    dt_min = max(opts.dt_min, span * 1e-15)

    breakpoints = _collect_breakpoints(circuit, t_start, t_stop)

    # Initialise element state from the operating point.
    ctx0 = Context(mode="tran", time=t_start, dt=dt_init, method="be", x=op.x)
    for element in circuit.elements():
        element.init_state(ctx0)

    times: List[float] = [t_start]
    states: List[np.ndarray] = [op.x.copy()]
    events: List[Tuple[float, str, str]] = []
    recoveries: List[Dict] = []
    dt_history: deque = deque(maxlen=_DT_HISTORY)
    newton_iters_total = 0
    # Numerical-trust aggregate over the t=0 solve and every accepted
    # step (worst residual/condition, defended-solve count).
    trust_acc = TrustAccumulator()
    trust_acc.note(op)

    t = t_start
    x = op.x.copy()
    dt = dt_init
    #: Steps remaining in the "fresh start" regime (BE, no LTE rejection).
    fresh = 2
    bp_cursor = 0
    num_nodes = circuit.num_nodes
    accepted = 0
    rejected = 0

    circuit_elements = list(circuit.elements())
    while t < t_stop - 1e-18 * max(1.0, abs(t_stop)):
        if accepted >= opts.max_steps:
            raise TimestepError(
                f"transient exceeded max_steps={opts.max_steps} at t={t:g}",
                time=t, dt=dt, rejected_steps=rejected,
                dt_history=list(dt_history),
            )
        dt = min(max(dt, dt_min), dt_max)

        # Force the step onto the next breakpoint if we would cross it.
        while bp_cursor < len(breakpoints) and breakpoints[bp_cursor] <= t + dt_min:
            bp_cursor += 1
        hit_breakpoint = False
        if bp_cursor < len(breakpoints):
            next_bp = breakpoints[bp_cursor]
            if t + dt >= next_bp - 0.25 * dt_min:
                dt = next_bp - t
                hit_breakpoint = True
        if t + dt > t_stop:
            dt = t_stop - t

        method = "be" if fresh > 0 else "trap"
        ctx = Context(mode="tran", time=t + dt, dt=dt, method=method, x=x)
        guess = _predict(times, states, t + dt)
        dt_history.append(dt)

        recovered_rung = None
        step_cert = None
        try:
            x_new = newton_solve(circuit, ctx, guess, opts.newton)
            step_cert = ctx.cert
        except ConvergenceError as err:
            # Local recovery ladder at this fixed timepoint before the
            # (much more expensive) step-size cut.
            salvage = recover_transient_step(circuit, ctx, x, guess,
                                             opts.newton, opts.recovery)
            if salvage is None:
                rejected += 1
                dt *= 0.25
                if dt < dt_min:
                    raise TimestepError(
                        f"Newton failure at t={t:g}s with dt below dt_min",
                        time=t, dt=dt, rejected_steps=rejected,
                        dt_history=list(dt_history), cause=err,
                    ) from err
                continue
            x_new = salvage.x
            recovered_rung = salvage.rung
            step_cert = salvage.cert
            recoveries.append({
                "time": t + dt,
                "rung": salvage.rung,
                "trace": [a.to_dict() for a in salvage.trace],
            })
            if salvage.rung in ("backward-euler", "gmin-step"):
                # Those rungs solved a backward-Euler step; commit must see
                # the method that actually produced x_new.
                ctx = Context(mode="tran", time=t + dt, dt=dt, method="be",
                              x=x)

        # LTE control (skipped in the fresh-start regime; a recovered step
        # used a different discretisation, so its trapezoidal LTE estimate
        # is meaningless — hold the step instead).
        if recovered_rung is not None:
            next_dt = dt
        elif fresh <= 0 and len(times) >= 3:
            err_ratio = _lte_ratio(
                times, states, t + dt, x_new, num_nodes,
                opts.lte_reltol, opts.lte_abstol,
            )
            if err_ratio > 1.0 and dt > dt_min * 4 and not hit_breakpoint:
                rejected += 1
                dt *= max(0.2, 0.9 * err_ratio ** (-1.0 / 3.0))
                continue
            growth = 0.9 * max(err_ratio, 1e-4) ** (-1.0 / 3.0)
            next_dt = dt * min(opts.max_growth, max(0.3, growth))
        else:
            next_dt = dt * 1.5

        # Accept: commit element state, record, advance.
        if step_cert is not None:
            trust_acc.note(step_cert)
        ctx.x = x_new
        step_events = []
        for element in circuit_elements:
            event = element.commit(ctx)
            if event:
                step_events.append((t + dt, element.name, event))
        t += dt
        x = x_new
        times.append(t)
        states.append(x.copy())
        accepted += 1
        fresh -= 1

        if recovered_rung is not None:
            # Re-enter the fresh-start regime: the next step after a
            # salvaged point integrates with backward Euler, no LTE cut.
            fresh = max(fresh, 1)
        if step_events:
            events.extend(step_events)
            next_dt = dt_init
            fresh = 2
        if hit_breakpoint:
            bp_cursor += 1
            next_dt = min(next_dt, dt_init)
            fresh = max(fresh, 1)
        dt = next_dt

    stats = {
        "accepted_steps": float(accepted),
        "rejected_steps": float(rejected),
        "ladder_recoveries": float(len(recoveries)),
        "certified_steps": float(trust_acc.solves),
        "defended_steps": float(trust_acc.defended_solves),
    }
    result = TransientResult(
        circuit,
        np.array(times),
        np.vstack(states),
        events=events,
        stats=stats,
        recoveries=recoveries,
    )
    if trust_acc.solves:
        result.residual_norm = trust_acc.residual_norm_max
        result.cond_estimate = trust_acc.cond_estimate_max
        result.refined = trust_acc.defended_solves
    return result


def _collect_breakpoints(circuit, t0: float, t1: float) -> List[float]:
    """Sorted unique waveform corners of all sources in ``(t0, t1]``."""
    points = set()
    for element in circuit.elements():
        getter = getattr(element, "breakpoints", None)
        if getter is None:
            continue
        for t in getter(t0, t1):
            points.add(float(t))
    points.discard(t0)
    return sorted(points)


def _predict(times: List[float], states: List[np.ndarray], t_new: float) -> np.ndarray:
    """Linear extrapolation of the last two solutions as a Newton guess."""
    if len(times) < 2:
        return states[-1].copy()
    t1, t0 = times[-1], times[-2]
    if t1 <= t0:
        return states[-1].copy()
    frac = (t_new - t1) / (t1 - t0)
    frac = min(frac, 2.0)
    return states[-1] + (states[-1] - states[-2]) * frac


def _lte_ratio(
    times: List[float],
    states: List[np.ndarray],
    t_new: float,
    x_new: np.ndarray,
    num_nodes: int,
    reltol: float,
    abstol: float,
) -> float:
    """Trapezoidal LTE estimate over tolerance, via 3rd divided difference.

    Returns max over node voltages of |LTE| / tol; values above 1 mean the
    candidate step should be rejected.
    """
    t3, t2, t1 = times[-3], times[-2], times[-1]
    x3, x2, x1 = states[-3], states[-2], states[-1]
    dt = t_new - t1

    dd1_a = (x_new - x1) / dt
    dd1_b = (x1 - x2) / (t1 - t2)
    dd1_c = (x2 - x3) / (t2 - t3)
    dd2_a = (dd1_a - dd1_b) / (t_new - t2)
    dd2_b = (dd1_b - dd1_c) / (t1 - t3)
    dd3 = (dd2_a - dd2_b) / (t_new - t3)

    lte = np.abs(dt ** 3 * 0.5 * dd3)[:num_nodes]
    scale = np.maximum(np.abs(x_new[:num_nodes]), np.abs(x1[:num_nodes]))
    tol = abstol + reltol * scale
    if lte.size == 0:
        return 0.0
    return float(np.max(lte / tol))
