"""Solution containers returned by the analyses.

:class:`Solution` wraps a single solved MNA vector (an operating point or
one transient timepoint).  :class:`TransientResult` holds the full sampled
history of a transient run plus helpers used heavily by the
characterisation layer: windowed energy integration of source power,
threshold-crossing search, and peak/average measurements.
"""

from __future__ import annotations

import bisect
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import AnalysisError


class Solution:
    """A solved MNA vector bound to its circuit.

    Provides node-voltage lookup by name or index; element helper methods
    (``current``, ``delivered_power``...) accept a ``Solution``.

    Every solution carries a numerical-trust annotation (see
    :mod:`repro.analysis.trust`): ``residual_norm`` is the KCL residual
    ``‖A·x − b‖∞`` of the final solve, ``cond_estimate`` the 1-norm
    condition estimate of its matrix, and ``refined`` whether the
    conditioning defenses (equilibration / iterative refinement) fired.
    NaN fields mean the producing path did not certify.
    """

    def __init__(self, circuit, x: np.ndarray, time: float = 0.0):
        self.circuit = circuit
        self.x = np.asarray(x, dtype=float)
        self.time = time
        self.residual_norm = float("nan")
        self.cond_estimate = float("nan")
        self.refined = False
        #: Full :class:`~repro.analysis.trust.Certificate`, or ``None``.
        self.cert = None

    def annotate_certificate(self, cert) -> "Solution":
        """Attach a solve :class:`~repro.analysis.trust.Certificate`."""
        if cert is not None:
            self.cert = cert
            self.residual_norm = float(cert.residual_norm)
            self.cond_estimate = float(cert.cond_estimate)
            self.refined = bool(cert.defended())
        return self

    def v(self, index: int) -> float:
        """Voltage of node ``index`` (0.0 for ground)."""
        if index < 0:
            return 0.0
        return float(self.x[index])

    def voltage(self, node: str) -> float:
        """Voltage of the node called ``node``."""
        return self.v(self.circuit.index_of(node))

    def branch_current(self, source_name: str) -> float:
        """Branch current of the named voltage source (SPICE sign)."""
        element = self.circuit[source_name]
        return element.branch_current(self)

    def voltages(self) -> Dict[str, float]:
        """All node voltages as ``{name: volts}``."""
        return {name: self.voltage(name) for name in self.circuit.node_names()}

    def __repr__(self) -> str:
        return f"<Solution t={self.time:g}s, {len(self.x)} unknowns>"


class TransientResult:
    """Sampled transient history.

    Attributes
    ----------
    time:
        1-D array of accepted timepoints (seconds), strictly increasing.
    states:
        2-D array, one row per timepoint, columns are the MNA unknowns.
    events:
        List of ``(time, element_name, event_string)`` recorded when an
        element's ``commit`` reported something (MTJ switching).
    recoveries:
        List of ``{"time", "rung", "trace"}`` dicts, one per timepoint the
        integrator salvaged through the recovery ladder instead of cutting
        the step (empty for a clean run).
    residual_norm / cond_estimate / refined:
        Numerical-trust aggregate over every *accepted* step solve (see
        :mod:`repro.analysis.trust`): worst KCL residual ``‖A·x − b‖∞``,
        worst 1-norm condition estimate, and the number of steps whose
        solve needed the conditioning defenses.  NaN/0 when the run was
        not certified.  Per-step detail lives in ``stats``
        (``certified_steps``, ``defended_steps``).
    """

    def __init__(self, circuit, time: np.ndarray, states: np.ndarray,
                 events: Optional[List[Tuple[float, str, str]]] = None,
                 stats: Optional[Dict[str, float]] = None,
                 recoveries: Optional[List[Dict]] = None):
        self.circuit = circuit
        self.time = np.asarray(time, dtype=float)
        self.states = np.asarray(states, dtype=float)
        if self.states.shape[0] != self.time.shape[0]:
            raise AnalysisError("time/state length mismatch")
        self.events = events or []
        self.stats = stats or {}
        self.recoveries = recoveries or []
        self.residual_norm = float("nan")
        self.cond_estimate = float("nan")
        #: Number of accepted steps whose solve needed defenses.
        self.refined = 0

    # -- accessors --------------------------------------------------------
    def __len__(self) -> int:
        return len(self.time)

    def voltage(self, node: str) -> np.ndarray:
        """Voltage waveform of ``node`` across all timepoints."""
        index = self.circuit.index_of(node)
        if index < 0:
            return np.zeros_like(self.time)
        return self.states[:, index]

    def differential(self, p: str, n: str) -> np.ndarray:
        """V(p) - V(n) waveform."""
        return self.voltage(p) - self.voltage(n)

    def branch_current(self, source_name: str) -> np.ndarray:
        """Branch-current waveform of a voltage source (SPICE sign)."""
        element = self.circuit[source_name]
        (k,) = element.branch_index
        return self.states[:, k]

    def solution_at_index(self, i: int) -> Solution:
        return Solution(self.circuit, self.states[i], float(self.time[i]))

    def final_solution(self) -> Solution:
        return self.solution_at_index(len(self.time) - 1)

    def sample(self, node: str, t: float) -> float:
        """Linearly interpolated node voltage at time ``t``."""
        return float(np.interp(t, self.time, self.voltage(node)))

    # -- power / energy ---------------------------------------------------
    def delivered_power(self, source_names: Sequence[str]) -> np.ndarray:
        """Total instantaneous power delivered by the named sources."""
        total = np.zeros_like(self.time)
        for name in source_names:
            element = self.circuit[name]
            p_idx, n_idx = element.node_index
            (k,) = element.branch_index
            v_p = self.states[:, p_idx] if p_idx >= 0 else 0.0
            v_n = self.states[:, n_idx] if n_idx >= 0 else 0.0
            total += -(v_p - v_n) * self.states[:, k]
        return total

    def energy(self, source_names: Sequence[str],
               t0: Optional[float] = None, t1: Optional[float] = None) -> float:
        """Energy delivered by sources over ``[t0, t1]`` (trapezoidal).

        Defaults to the whole record.  Window edges falling between samples
        are handled by interpolated boundary points.
        """
        if len(self.time) < 2:
            return 0.0
        t0 = self.time[0] if t0 is None else t0
        t1 = self.time[-1] if t1 is None else t1
        if t1 <= t0:
            return 0.0
        power = self.delivered_power(source_names)
        return _windowed_trapezoid(self.time, power, t0, t1)

    def average_power(self, source_names: Sequence[str],
                      t0: Optional[float] = None,
                      t1: Optional[float] = None) -> float:
        """Mean delivered power of the sources over the window."""
        t0 = self.time[0] if t0 is None else t0
        t1 = self.time[-1] if t1 is None else t1
        if t1 <= t0:
            raise AnalysisError("average_power: empty window")
        return self.energy(source_names, t0, t1) / (t1 - t0)

    # -- measurements -------------------------------------------------------
    def crossing_time(self, node: str, threshold: float,
                      direction: str = "rise", after: float = 0.0) -> Optional[float]:
        """First time ``node`` crosses ``threshold`` in ``direction``.

        ``direction`` is ``"rise"`` or ``"fall"``.  Returns ``None`` if the
        crossing never happens after ``after``.
        """
        wave = self.voltage(node)
        start = bisect.bisect_left(self.time.tolist(), after)
        for i in range(max(start, 1), len(self.time)):
            v0, v1 = wave[i - 1], wave[i]
            if direction == "rise" and v0 < threshold <= v1:
                frac = (threshold - v0) / (v1 - v0)
                return float(self.time[i - 1] + frac * (self.time[i] - self.time[i - 1]))
            if direction == "fall" and v0 > threshold >= v1:
                frac = (v0 - threshold) / (v0 - v1)
                return float(self.time[i - 1] + frac * (self.time[i] - self.time[i - 1]))
        return None

    def peak(self, node: str, t0: Optional[float] = None,
             t1: Optional[float] = None) -> float:
        """Maximum absolute node voltage in the window."""
        mask = self._window_mask(t0, t1)
        wave = self.voltage(node)[mask]
        if wave.size == 0:
            raise AnalysisError("peak: empty window")
        return float(np.max(np.abs(wave)))

    def _window_mask(self, t0: Optional[float], t1: Optional[float]) -> np.ndarray:
        t0 = self.time[0] if t0 is None else t0
        t1 = self.time[-1] if t1 is None else t1
        return (self.time >= t0) & (self.time <= t1)

    def events_matching(self, needle: str) -> List[Tuple[float, str, str]]:
        """Events whose description contains ``needle``."""
        return [e for e in self.events if needle in e[2] or needle in e[1]]

    def __repr__(self) -> str:
        span = self.time[-1] - self.time[0] if len(self.time) else 0.0
        return (
            f"<TransientResult {len(self.time)} points over {span:g}s, "
            f"{len(self.events)} events>"
        )


def _windowed_trapezoid(time: np.ndarray, values: np.ndarray,
                        t0: float, t1: float) -> float:
    """Trapezoidal integral of sampled ``values`` over ``[t0, t1]``."""
    t0 = max(t0, float(time[0]))
    t1 = min(t1, float(time[-1]))
    if t1 <= t0:
        return 0.0
    inner = (time > t0) & (time < t1)
    ts = np.concatenate(([t0], time[inner], [t1]))
    vs = np.concatenate((
        [np.interp(t0, time, values)],
        values[inner],
        [np.interp(t1, time, values)],
    ))
    return float(np.trapezoid(vs, ts))
