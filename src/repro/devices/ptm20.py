"""20 nm technology card calibrated to PTM-class headline targets.

The paper uses a 20-nm FinFET PTM deck (Table I: L = 20 nm, fin width
15 nm, fin height 28 nm, VDD = 0.9 V).  The effective width per fin is
``2 x 28 + 15 = 71 nm``.  Public high-performance 20 nm PTM-class figures
are roughly:

==============================  =======================
Quantity (per fin, 0.9 V)        target
==============================  =======================
Ion (n)                          ~95 uA
Ion (p)                          ~85 uA
Ioff                             a few nA  (~100 nA/um)
Subthreshold swing               ~72 mV/dec
DIBL                             ~80 mV/V
==============================  =======================

The EKV card below reproduces these to within the fidelity that matters
for the paper's comparative conclusions.  ``calibration_report`` prints
the realised values so tests (and EXPERIMENTS.md) can pin them.

Parasitic capacitance constants used by the cell builders are also defined
here: they set the dynamic (CV^2) component of read/write energy.
"""

from __future__ import annotations

from typing import Dict

from .finfet import FinFET, FinFETParams
from ..units import FF

#: Supply voltage of the technology (Table I).
VDD_NOMINAL = 0.9

#: Effective channel width per fin: 2 x fin height + fin width.
FIN_WIDTH = 15e-9
FIN_HEIGHT = 28e-9
WEFF_PER_FIN = 2.0 * FIN_HEIGHT + FIN_WIDTH  # 71 nm
CHANNEL_LENGTH = 20e-9

#: Gate capacitance per fin (gate oxide + fringe), farads.
CGATE_PER_FIN = 0.055 * FF
#: Source/drain junction + local interconnect capacitance per fin, farads.
CJUNCTION_PER_FIN = 0.025 * FF

#: n-channel high-performance card.
NFET_20NM_HP = FinFETParams(
    polarity=+1,
    vth0=0.22,
    slope_factor=1.21,
    i_spec=6.6e-7,
    dibl=0.08,
    label="nfet-20nm-hp",
)

#: p-channel high-performance card.
PFET_20NM_HP = FinFETParams(
    polarity=-1,
    vth0=0.24,
    slope_factor=1.25,
    i_spec=6.5e-7,
    dibl=0.09,
    label="pfet-20nm-hp",
)


def _probe(params: FinFETParams, vg: float, vd: float, vdd: float) -> float:
    """|Ids| of a one-fin device with source grounded (n) / at VDD (p)."""
    device = FinFET("probe", "d", "g", "s", params, nfin=1)
    if params.polarity > 0:
        return abs(device.ids(vd, vg, 0.0))
    return abs(device.ids(vdd - vd, vdd - vg, vdd))


def ion_per_fin(params: FinFETParams, vdd: float = VDD_NOMINAL) -> float:
    """On-current per fin at |Vgs| = |Vds| = VDD."""
    return _probe(params, vdd, vdd, vdd)


def ioff_per_fin(params: FinFETParams, vdd: float = VDD_NOMINAL) -> float:
    """Off-state leakage per fin at Vgs = 0, |Vds| = VDD."""
    return _probe(params, 0.0, vdd, vdd)


def technology_summary(vdd: float = VDD_NOMINAL) -> Dict[str, float]:
    """Realised card figures for reports and calibration tests."""
    return {
        "vdd": vdd,
        "weff_per_fin": WEFF_PER_FIN,
        "ion_n_per_fin": ion_per_fin(NFET_20NM_HP, vdd),
        "ion_p_per_fin": ion_per_fin(PFET_20NM_HP, vdd),
        "ioff_n_per_fin": ioff_per_fin(NFET_20NM_HP, vdd),
        "ioff_p_per_fin": ioff_per_fin(PFET_20NM_HP, vdd),
        "ss_n_mv_per_dec": NFET_20NM_HP.subthreshold_swing * 1e3,
        "ss_p_mv_per_dec": PFET_20NM_HP.subthreshold_swing * 1e3,
        "dibl_n_mv_per_v": NFET_20NM_HP.dibl * 1e3,
        "dibl_p_mv_per_v": PFET_20NM_HP.dibl * 1e3,
    }
