"""EKV-style FinFET compact model with fin-count scaling.

The paper simulates a 20 nm FinFET PTM card in HSPICE.  PTM cards are
BSIM-CMG decks we cannot run here, so this module provides a continuous
compact model with the properties the paper's conclusions depend on:

* a single smooth expression valid from deep subthreshold to strong
  inversion (the EKV interpolation ``F(u) = ln^2(1 + e^(u/2))``), so both
  the pico/nano-amp leakage analysis (Fig. 3a, Fig. 6c) and the on-current
  driven store/read/write behaviour come from one model;
* source/drain symmetry, required for SRAM pass-gates and for the
  PS-FinFETs whose conduction direction differs between H-store and
  restore;
* drain-induced barrier lowering (DIBL), the dominant output-conductance
  and leakage-vs-Vds mechanism at 20 nm;
* fin-count scaling (``nfin``): FinFET cells are sized in integer fins,
  as the paper stresses, so current simply scales with ``nfin``.

The model is calibrated in :mod:`repro.devices.ptm20` to headline 20 nm
high-performance targets (Ion/fin, Ioff/fin, subthreshold swing, DIBL).

Sign conventions: the element computes the drain current ``i_ds`` flowing
drain -> channel -> source.  P-channel devices are handled by polarity
mirroring, which leaves the conductance Jacobian unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from ..errors import DeviceError
from ..circuit.netlist import Element
from ..units import THERMAL_VOLTAGE_300K

#: Smoothing width (volts) for |Vds| inside the DIBL term, keeping the
#: model C1-continuous through Vds = 0.
_SOFTABS_EPS = 0.01


@dataclass(frozen=True)
class FinFETParams:
    """Parameter card for one device polarity.

    Attributes
    ----------
    polarity:
        +1 for n-channel, -1 for p-channel.
    vth0:
        Zero-bias threshold voltage magnitude (volts).
    slope_factor:
        EKV slope factor ``n``; subthreshold swing = n * vt * ln(10).
    i_spec:
        Specific current per fin (amps); sets the strong-inversion current
        scale, ``I = i_spec * [F(u_f) - F(u_r)]``.
    dibl:
        Threshold reduction per volt of |Vds| (V/V).
    vt_thermal:
        Thermal voltage kT/q (volts).
    label:
        Card name for reports.
    """

    polarity: int
    vth0: float
    slope_factor: float
    i_spec: float
    dibl: float
    vt_thermal: float = THERMAL_VOLTAGE_300K
    label: str = "generic"

    def __post_init__(self):
        if self.polarity not in (+1, -1):
            raise DeviceError("polarity must be +1 (n) or -1 (p)")
        if self.vth0 <= 0:
            raise DeviceError("vth0 must be positive (magnitude)")
        if self.slope_factor < 1.0:
            raise DeviceError("slope_factor must be >= 1")
        if self.i_spec <= 0:
            raise DeviceError("i_spec must be positive")
        if self.dibl < 0:
            raise DeviceError("dibl must be non-negative")

    def with_(self, **kwargs) -> "FinFETParams":
        """A copy of this card with some fields replaced."""
        return replace(self, **kwargs)

    @property
    def subthreshold_swing(self) -> float:
        """Subthreshold swing in volts/decade."""
        return self.slope_factor * self.vt_thermal * math.log(10.0)

    @property
    def temperature(self) -> float:
        """Temperature implied by the thermal voltage (kelvin)."""
        return 300.0 * self.vt_thermal / THERMAL_VOLTAGE_300K

    def at_temperature(self, kelvin: float,
                       vth_tempco: float = 7.0e-4) -> "FinFETParams":
        """First-order temperature-scaled copy of this card.

        * thermal voltage scales linearly with T (steeper subthreshold
          swing, the dominant leakage knob);
        * |Vth| drops by ``vth_tempco`` volts per kelvin (band-gap +
          Fermi-level shift, typically 0.5-1 mV/K);
        * the current factor combines the vt^2 term of the specific
          current with ~T^-1.5 phonon-limited mobility.

        The card must be re-derived from its 300 K original — applying
        ``at_temperature`` twice compounds the scaling, so it raises on a
        card that is already off-nominal.
        """
        if kelvin <= 0:
            raise DeviceError("temperature must be positive kelvin")
        if abs(self.temperature - 300.0) > 1e-6:
            raise DeviceError(
                "at_temperature must start from the 300 K card "
                f"(this one is at {self.temperature:.1f} K)"
            )
        ratio = kelvin / 300.0
        vth = max(self.vth0 - vth_tempco * (kelvin - 300.0), 0.01)
        i_spec = self.i_spec * (ratio ** 2) * (ratio ** -1.5)
        return self.with_(
            vt_thermal=THERMAL_VOLTAGE_300K * ratio,
            vth0=vth,
            i_spec=i_spec,
            label=f"{self.label}@{kelvin:.0f}K",
        )


def _interp_f(u: float) -> float:
    """EKV interpolation function F(u) = ln^2(1 + exp(u/2)), overflow-safe."""
    half = 0.5 * u
    if half > 40.0:
        log_term = half + math.log1p(math.exp(-half))
    else:
        log_term = math.log1p(math.exp(half))
    return log_term * log_term


def _interp_f_prime(u: float) -> float:
    """dF/du = ln(1 + e^(u/2)) * sigmoid(u/2)."""
    half = 0.5 * u
    if half > 40.0:
        log_term = half + math.log1p(math.exp(-half))
        sigmoid = 1.0
    else:
        e = math.exp(half)
        log_term = math.log1p(e)
        sigmoid = e / (1.0 + e)
    return log_term * sigmoid


def _softabs(x: float) -> float:
    return math.sqrt(x * x + _SOFTABS_EPS * _SOFTABS_EPS) - _SOFTABS_EPS


def _softabs_prime(x: float) -> float:
    return x / math.sqrt(x * x + _SOFTABS_EPS * _SOFTABS_EPS)


class FinFET(Element):
    """Three-terminal FinFET channel element: nodes ``(d, g, s)``.

    Gate current is zero (the gate node only enters through the
    transconductance).  Parasitic capacitances are added separately by the
    cell builders so their values stay visible in the netlist.

    Parameters
    ----------
    params:
        Device card (:class:`FinFETParams`).
    nfin:
        Number of fins; integer >= 1 per the paper's sizing discipline.
    """

    is_linear = False

    def __init__(self, name: str, d: str, g: str, s: str,
                 params: FinFETParams, nfin: int = 1):
        super().__init__(name, (d, g, s))
        if nfin < 1 or int(nfin) != nfin:
            raise DeviceError(f"{name}: nfin must be a positive integer")
        self.params = params
        self.nfin = int(nfin)

    # -- physics ----------------------------------------------------------
    def _evaluate(self, vd: float, vg: float, vs: float):
        """Current and Jacobian at absolute terminal potentials.

        Returns ``(i_ds, g_d, g_g, g_s)`` where ``i_ds`` flows d -> s and
        the ``g_*`` are its partial derivatives w.r.t. the *actual* node
        voltages (valid for both polarities thanks to mirroring).
        """
        p = self.params
        pol = p.polarity
        # Map to the n-channel frame.
        md, mg, ms = pol * vd, pol * vg, pol * vs

        vt = p.vt_thermal
        n = p.slope_factor
        dx = md - ms
        sa = _softabs(dx)
        sa_p = _softabs_prime(dx)
        vth_eff = p.vth0 - p.dibl * sa

        # Effective source potential: smooth minimum of the two channel
        # terminals.  Referencing the pinch-off voltage to it (rather than
        # to ground) keeps the subthreshold swing tied to Vgs even when the
        # source floats (pass-gates, stacked devices) while remaining
        # source/drain symmetric.
        vmin = 0.5 * (md + ms - sa)
        dvmin_dmd = 0.5 * (1.0 - sa_p)
        dvmin_dms = 0.5 * (1.0 + sa_p)

        vp = (mg - vmin - vth_eff) / n + vmin

        u_f = (vp - ms) / vt
        u_r = (vp - md) / vt
        f_f = _interp_f(u_f)
        f_r = _interp_f(u_r)
        fp_f = _interp_f_prime(u_f)
        fp_r = _interp_f_prime(u_r)

        scale = p.i_spec * self.nfin
        i_core = scale * (f_f - f_r)

        one_m = 1.0 - 1.0 / n
        dvp_dmd = dvmin_dmd * one_m + p.dibl * sa_p / n
        dvp_dms = dvmin_dms * one_m - p.dibl * sa_p / n
        du_f_dmg = 1.0 / (n * vt)
        du_r_dmg = du_f_dmg
        du_f_dms = (dvp_dms - 1.0) / vt
        du_f_dmd = dvp_dmd / vt
        du_r_dmd = (dvp_dmd - 1.0) / vt
        du_r_dms = dvp_dms / vt

        g_mg = scale * (fp_f * du_f_dmg - fp_r * du_r_dmg)
        g_md = scale * (fp_f * du_f_dmd - fp_r * du_r_dmd)
        g_ms = scale * (fp_f * du_f_dms - fp_r * du_r_dms)

        # Mirror back: i = pol * i_core(pol*v...), so d i/d v = g_core.
        return pol * i_core, g_md, g_mg, g_ms

    def current(self, solution) -> float:
        """Drain-to-source channel current at a solved point."""
        d, g, s = self.node_index
        i, _, _, _ = self._evaluate(solution.v(d), solution.v(g), solution.v(s))
        return i

    def ids(self, vd: float, vg: float, vs: float) -> float:
        """Drain current for explicit terminal potentials (model probe)."""
        i, _, _, _ = self._evaluate(vd, vg, vs)
        return i

    # -- stamping -----------------------------------------------------------
    def stamp(self, stamper, ctx) -> None:
        d, g, s = self.node_index
        vd, vg, vs = ctx.v(d), ctx.v(g), ctx.v(s)
        i, g_d, g_g, g_s = self._evaluate(vd, vg, vs)

        # Linearised current i(v) ~ i0 + g_d dvd + g_g dvg + g_s dvs,
        # flowing d -> s.  Stamp as conductances/VCCS plus residual source.
        for row, sign in ((d, 1.0), (s, -1.0)):
            if row < 0:
                continue
            if d >= 0:
                stamper.A[row, d] += sign * g_d
            if g >= 0:
                stamper.A[row, g] += sign * g_g
            if s >= 0:
                stamper.A[row, s] += sign * g_s
        residual = i - (g_d * vd + g_g * vg + g_s * vs)
        stamper.current(d, s, residual)

    def stamp_pattern(self, mode: str = "dc"):
        """KCL rows at drain/source, columns for all three terminals.

        The gate row is absent: zero gate current means the gate node
        must be held up by some other element, which is exactly what the
        structural-singularity check exploits to catch floating gates.
        """
        d, g, s = self.node_index
        return [(row, col) for row in (d, s) for col in (d, g, s)]

    def __repr__(self) -> str:
        kind = "n" if self.params.polarity > 0 else "p"
        return f"<FinFET {self.name} {kind}-ch nfin={self.nfin}>"
