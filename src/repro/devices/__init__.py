"""Device compact models: FinFETs (20 nm PTM-like card) and STT-MTJs.

* :class:`~repro.devices.finfet.FinFET` — an EKV-style continuous compact
  model with fin-count scaling, used for every transistor in the cells.
* :mod:`~repro.devices.ptm20` — the 20 nm technology card calibrated to
  public PTM-class headline figures (Ion/Ioff per fin, SS, DIBL).
* :class:`~repro.devices.mtj.MTJ` — the spin-transfer-torque magnetic
  tunnel junction macromodel of the paper's Table I: bias-dependent TMR
  resistance plus current-induced magnetisation switching dynamics.
"""

from .finfet import FinFET, FinFETParams
from .ptm20 import NFET_20NM_HP, PFET_20NM_HP, technology_summary
from .mtj import MTJ, MTJParams, MTJState, MTJ_TABLE1

__all__ = [
    "FinFET",
    "FinFETParams",
    "NFET_20NM_HP",
    "PFET_20NM_HP",
    "technology_summary",
    "MTJ",
    "MTJParams",
    "MTJState",
    "MTJ_TABLE1",
]
