"""STT-MTJ macromodel: bias-dependent TMR plus CIMS switching dynamics.

The paper's MTJ macromodel (ref. [7], parameters in Table I) is, in
circuit terms, a two-state nonlinear resistor:

* **Parallel (P)** state: resistance ``R_P = RA / A`` with negligible bias
  dependence (RA = 2 ohm.um^2, device diameter 20 nm, giving the paper's
  6366 ohms).
* **Antiparallel (AP)** state: ``R_AP(V) = R_P * (1 + TMR(V))`` with the
  standard bias rolloff ``TMR(V) = TMR0 / (1 + (V/Vh)^2)``; Vh = 0.5 V is
  the half-maximum-TMR voltage, TMR0 = 100 %, so R_AP(0) = 12732 ohms —
  exactly Table I.

Current-induced magnetisation switching (CIMS) is modelled as a
threshold-plus-accumulation process: while the junction current exceeds
the critical current ``Ic = Jc * A`` in the polarity that destabilises the
present state, switching "progress" accumulates at a rate ``1/t_sw(I)``
with the spin-torque switching-time law ``t_sw(I) = tau0 / (I/Ic - 1)``
(capped below at a precessional limit).  When progress reaches 1 the state
flips — reported to the transient integrator as an event.  Sub-critical
current lets the progress relax.  This reproduces the store-design facts
the paper leans on: a 1.5x Ic store current completes well inside the
10 ns store window, while currents just above Ic do not (hence the
required margin), and a shorter store time needs a higher current.

Polarity convention: positive junction current flows from the ``free``
node to the ``pinned`` node.  Electrons then flow pinned -> free, which
stabilises the **parallel** state; i.e. positive current switches AP -> P
and negative current switches P -> AP.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, replace
from typing import Optional, Tuple

from ..errors import DeviceError
from ..circuit.netlist import Element, conductance_pattern


class MTJState(enum.Enum):
    """Magnetisation state of the free layer relative to the pinned layer."""

    PARALLEL = "P"
    ANTIPARALLEL = "AP"

    @property
    def opposite(self) -> "MTJState":
        if self is MTJState.PARALLEL:
            return MTJState.ANTIPARALLEL
        return MTJState.PARALLEL


@dataclass(frozen=True)
class MTJParams:
    """MTJ device card (Table I of the paper).

    Attributes
    ----------
    tmr0:
        Zero-bias tunnelling magnetoresistance ratio (1.0 = 100 %).
    ra_product:
        Resistance-area product of the parallel state (ohm * m^2).
    v_half:
        Bias at which the TMR falls to half its zero-bias value (volts).
    jc:
        CIMS critical current density (A/m^2).
    diameter:
        Junction diameter (m).
    tau0:
        Switching-time scale of the accumulation law (seconds);
        ``t_sw = tau0 / (I/Ic - 1)``.
    t_sw_min:
        Precessional lower bound on the switching time (seconds).
    relax_time:
        Relaxation time of sub-critical switching progress (seconds).
    delta:
        Thermal stability factor (E_barrier / kT) governing retention and
        sub-critical thermally-activated switching.
    attempt_time:
        Thermal attempt time tau_D of the Neel-Arrhenius law (seconds).
    t_sw_sigma:
        Fractional spread of the super-critical switching time, setting
        how fast the write error rate falls once the pulse outlasts the
        mean switching time.
    """

    tmr0: float = 1.0
    ra_product: float = 2.0e-12          # 2 ohm.um^2 in ohm.m^2
    v_half: float = 0.5
    jc: float = 5e10                      # 5e6 A/cm^2 in A/m^2
    diameter: float = 20e-9
    tau0: float = 2.0e-9
    t_sw_min: float = 0.5e-9
    relax_time: float = 5.0e-9
    delta: float = 60.0
    attempt_time: float = 1.0e-9
    t_sw_sigma: float = 0.10
    label: str = "mtj-table1"

    def __post_init__(self):
        if self.tmr0 <= 0:
            raise DeviceError("tmr0 must be positive")
        if self.ra_product <= 0 or self.diameter <= 0:
            raise DeviceError("ra_product and diameter must be positive")
        if self.v_half <= 0:
            raise DeviceError("v_half must be positive")
        if self.jc <= 0:
            raise DeviceError("jc must be positive")
        if self.tau0 <= 0 or self.t_sw_min <= 0 or self.relax_time <= 0:
            raise DeviceError("time constants must be positive")
        if self.delta <= 0 or self.attempt_time <= 0:
            raise DeviceError("thermal parameters must be positive")
        if self.t_sw_sigma <= 0:
            raise DeviceError("t_sw_sigma must be positive")

    @property
    def area(self) -> float:
        """Junction area (m^2)."""
        radius = 0.5 * self.diameter
        return math.pi * radius * radius

    @property
    def r_parallel(self) -> float:
        """Parallel-state resistance (ohms)."""
        return self.ra_product / self.area

    @property
    def r_antiparallel_zero_bias(self) -> float:
        """AP-state resistance at zero bias (ohms)."""
        return self.r_parallel * (1.0 + self.tmr0)

    @property
    def critical_current(self) -> float:
        """CIMS critical current Ic = Jc * A (amps)."""
        return self.jc * self.area

    def switching_time(self, current: float) -> float:
        """Switching time for a super-critical drive current (seconds).

        Returns ``inf`` for |current| <= Ic.
        """
        overdrive = abs(current) / self.critical_current - 1.0
        if overdrive <= 0.0:
            return math.inf
        return max(self.tau0 / overdrive, self.t_sw_min)

    # -- stochastic switching (write-error-rate extension) ----------------
    def thermal_tau(self, current: float) -> float:
        """Neel-Arrhenius time constant of thermally-activated switching.

        ``tau = tau_D * exp(delta * (1 - |I|/Ic))`` for sub-critical
        drive; spin torque linearly lowers the effective barrier, which
        is clamped at zero for |I| >= Ic (tau bottoms out at tau_D).
        """
        reduced = max(1.0 - abs(current) / self.critical_current, 0.0)
        exponent = min(self.delta * reduced, 700.0)
        return self.attempt_time * math.exp(exponent)

    def retention_time(self) -> float:
        """Mean thermally-activated flip time at zero bias (seconds)."""
        return self.thermal_tau(0.0)

    def write_error_rate(self, current: float, duration: float) -> float:
        """Probability the junction has NOT switched after ``duration``.

        * Sub-critical drive (|I| <= Ic): thermally activated,
          ``WER = exp(-t / thermal_tau(I))`` — astronomically slow for
          meaningful barriers, which is why stores need |I| > Ic.
        * Super-critical drive: switching is quasi-deterministic around
          the spin-torque switching time; the residual error is the tail
          of its (fractional ``t_sw_sigma``) spread,
          ``WER = exp(-(t - t_sw) / (sigma * t_sw))`` for t > t_sw.

        This quantifies the paper's remark that "the store time cannot be
        easily reduced to suppress the error rate of CIMS ... a shorter
        store time needs a higher store current".
        """
        if duration <= 0:
            return 1.0
        i = abs(current)
        thermal = math.exp(-min(duration / self.thermal_tau(i), 700.0))
        if i <= self.critical_current:
            return thermal
        # Super-critical: the junction switches by whichever mechanism is
        # faster — the quasi-deterministic spin-torque reversal or the
        # barrier-free thermal agitation.  Taking the minimum keeps WER
        # monotone in current across the Ic boundary.
        t_sw = self.switching_time(i)
        if duration <= t_sw:
            return thermal
        tail = (duration - t_sw) / (self.t_sw_sigma * t_sw)
        return min(math.exp(-min(tail, 700.0)), thermal)

    def required_current_for_wer(self, duration: float,
                                 wer: float) -> float:
        """Smallest super-critical current meeting ``wer`` in ``duration``.

        Inverts :meth:`write_error_rate` in the super-critical regime:
        the pulse must outlast the mean switching time by
        ``sigma * t_sw * ln(1/wer)``.
        """
        if not (0.0 < wer < 1.0):
            raise DeviceError("wer must be in (0, 1)")
        if duration <= 0:
            raise DeviceError("duration must be positive")
        # t_sw such that t_sw * (1 + sigma * ln(1/wer)) = duration.
        t_sw_needed = duration / (1.0 + self.t_sw_sigma * math.log(1.0 / wer))
        if t_sw_needed <= self.t_sw_min:
            t_sw_needed = self.t_sw_min
        overdrive = self.tau0 / t_sw_needed
        return self.critical_current * (1.0 + overdrive)

    def at_temperature(self, kelvin: float) -> "MTJParams":
        """Temperature-scaled copy: the stability factor is an energy
        barrier over kT, so ``delta(T) = delta_300K * 300 / T`` — hot
        junctions retain for less time and switch slightly more easily.
        """
        if kelvin <= 0:
            raise DeviceError("temperature must be positive kelvin")
        return self.with_(
            delta=self.delta * 300.0 / kelvin,
            label=f"{self.label}@{kelvin:.0f}K",
        )

    def with_(self, **kwargs) -> "MTJParams":
        """A copy of this card with some fields replaced."""
        return replace(self, **kwargs)


#: The exact card of the paper's Table I.
MTJ_TABLE1 = MTJParams()

#: The relaxed card of Fig. 9(b): Jc = 1e6 A/cm^2.
MTJ_FIG9B = MTJParams(jc=1e10, label="mtj-fig9b")


class MTJ(Element):
    """Two-terminal MTJ element: nodes ``(free, pinned)``.

    The state is frozen during DC analyses and Newton iterations; it
    advances only in ``commit`` (accepted transient steps), which is what
    makes the Fig. 3 store-current *static* sweeps well-defined while
    transients still capture the store dynamics.
    """

    is_linear = False

    def __init__(self, name: str, free: str, pinned: str,
                 params: Optional[MTJParams] = None,
                 state: MTJState = MTJState.PARALLEL):
        super().__init__(name, (free, pinned))
        self.params = params or MTJ_TABLE1
        self.state = state
        self.progress = 0.0
        self.switch_count = 0

    # -- resistance ---------------------------------------------------------
    def resistance(self, v: float, state: Optional[MTJState] = None) -> float:
        """Junction resistance at bias ``v`` for ``state`` (default: now)."""
        state = state or self.state
        p = self.params
        if state is MTJState.PARALLEL:
            return p.r_parallel
        rolloff = 1.0 + (v / p.v_half) ** 2
        return p.r_parallel * (1.0 + p.tmr0 / rolloff)

    def current_at(self, v: float, state: MTJState) -> float:
        """Junction current at bias ``v`` for an explicit ``state``."""
        return v / self.resistance(v, state)

    def _current_and_derivative(self, v: float) -> Tuple[float, float]:
        """I(V) and dI/dV in the present state."""
        p = self.params
        if self.state is MTJState.PARALLEL:
            g = 1.0 / p.r_parallel
            return v * g, g
        ratio = v / p.v_half
        rolloff = 1.0 + ratio * ratio
        r = p.r_parallel * (1.0 + p.tmr0 / rolloff)
        dr_dv = -p.r_parallel * p.tmr0 * (2.0 * v / (p.v_half ** 2)) / (rolloff ** 2)
        i = v / r
        di_dv = (r - v * dr_dv) / (r * r)
        return i, di_dv

    # -- stamping -------------------------------------------------------------
    def stamp(self, stamper, ctx) -> None:
        free, pinned = self.node_index
        v = ctx.v(free) - ctx.v(pinned)
        i, g = self._current_and_derivative(v)
        stamper.conductance(free, pinned, g)
        stamper.current(free, pinned, i - g * v)

    def stamp_pattern(self, mode: str = "dc"):
        """Nonlinear-resistor conductance block across free-pinned."""
        free, pinned = self.node_index
        return conductance_pattern(free, pinned)

    # -- measurements -----------------------------------------------------------
    def current(self, solution) -> float:
        """Junction current free -> pinned at a solved point."""
        free, pinned = self.node_index
        v = solution.v(free) - solution.v(pinned)
        i, _ = self._current_and_derivative(v)
        return i

    def voltage(self, solution) -> float:
        """Junction voltage V(free) - V(pinned)."""
        free, pinned = self.node_index
        return solution.v(free) - solution.v(pinned)

    # -- dynamics ---------------------------------------------------------------
    def _destabilising(self, current: float) -> bool:
        """True if ``current`` pushes the free layer out of its state."""
        if self.state is MTJState.ANTIPARALLEL:
            return current > 0.0   # AP -> P needs positive (free->pinned)
        return current < 0.0       # P -> AP needs negative

    def commit(self, ctx) -> Optional[str]:
        free, pinned = self.node_index
        v = ctx.v(free) - ctx.v(pinned)
        i, _ = self._current_and_derivative(v)
        dt = ctx.dt
        if self._destabilising(i) and abs(i) > self.params.critical_current:
            t_sw = self.params.switching_time(i)
            self.progress += dt / t_sw
            if self.progress >= 1.0:
                old = self.state
                self.state = self.state.opposite
                self.progress = 0.0
                self.switch_count += 1
                return f"{old.value}->{self.state.value}"
        else:
            self.progress *= math.exp(-dt / self.params.relax_time)
        return None

    def init_state(self, ctx) -> None:
        self.progress = 0.0

    def snapshot_state(self):
        return (self.state, self.progress, self.switch_count)

    def restore_state(self, snap) -> None:
        self.state, self.progress, self.switch_count = snap

    def set_state(self, state: MTJState) -> None:
        """Force the magnetisation state (testbench initialisation)."""
        self.state = state
        self.progress = 0.0

    def __repr__(self) -> str:
        return f"<MTJ {self.name} state={self.state.value}>"
