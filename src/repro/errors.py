"""Exception hierarchy for the repro package.

All errors raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures without also
catching programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class UnitError(ReproError):
    """A quantity string could not be parsed into a float."""


class NetlistError(ReproError):
    """The circuit description is malformed (duplicate names, bad nodes...)."""


class AnalysisError(ReproError):
    """An analysis was configured incorrectly."""


class ConvergenceError(AnalysisError):
    """The Newton-Raphson solver failed to converge.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual:
        Infinity norm of the final KCL residual (amps).
    """

    def __init__(self, message: str, iterations: int = 0, residual: float = float("nan")):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class TimestepError(AnalysisError):
    """The transient integrator could not find an acceptable timestep."""


class DeviceError(ReproError):
    """A device model was given parameters outside its valid range."""


class CharacterizationError(ReproError):
    """A characterization run produced an unusable result.

    Raised, for example, when a store-current extraction never reaches the
    required current margin inside the swept bias range.
    """


class SequenceError(ReproError):
    """A power-gating benchmark sequence is inconsistent."""


class VerificationError(ReproError):
    """Static analysis found error-severity problems in a netlist.

    Raised by the lint-before-simulate hooks (``repro.verify``) so a
    mis-wired power switch or orphaned MTJ stops a run *before* the
    solver turns it into a convergence failure or a silently wrong
    energy number.

    Attributes
    ----------
    diagnostics:
        The error-severity :class:`repro.verify.Diagnostic` records that
        triggered the failure.
    """

    def __init__(self, message: str, diagnostics=()):
        super().__init__(message)
        self.diagnostics = list(diagnostics)
