"""Exception hierarchy for the repro package.

All errors raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures without also
catching programming errors such as ``TypeError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class UnitError(ReproError):
    """A quantity string could not be parsed into a float."""


class NetlistError(ReproError):
    """The circuit description is malformed (duplicate names, bad nodes...)."""


class AnalysisError(ReproError):
    """An analysis was configured incorrectly."""


class StampError(AnalysisError):
    """A device stamped non-finite (NaN/Inf) entries into the MNA system.

    Raised by the solver's fail-fast stamp guard *before*
    ``np.linalg.solve`` can propagate the garbage or die with an opaque
    ``LinAlgError`` — a broken deck (NaN device parameter, Inf source
    level) is a deck problem, not a convergence problem, so no recovery
    rung is attempted.

    Attributes
    ----------
    offenders:
        ``{"element", "rows", ...}`` dicts naming each element whose
        isolated stamp contained non-finite entries and the affected
        equation rows (MNA row labels).
    mode / time:
        Analysis mode and simulation time of the rejected solve.
    """

    def __init__(self, message: str, *, offenders=(), mode: str = "dc",
                 time: float = 0.0):
        super().__init__(message)
        self.offenders = list(offenders)
        self.mode = mode
        self.time = time

    def to_dict(self) -> dict:
        """JSON-serialisable forensics payload (see ``repro diagnose``)."""
        return {
            "kind": "stamp_failure",
            "message": str(self),
            "mode": self.mode,
            "time": self.time,
            "offenders": list(self.offenders),
        }


class ConvergenceError(AnalysisError):
    """The Newton-Raphson solver failed to converge.

    Beyond the message, the error carries the full failure forensics the
    recovery layer (:mod:`repro.recovery`) and the ``repro diagnose`` CLI
    consume.  All attributes are plain data so :meth:`to_dict` is always
    JSON-serialisable.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual:
        Infinity norm of the true KCL residual ``‖A·x − b‖∞`` at the
        final iterate (amps).
    residual_vector:
        The full per-equation residual vector (amps for node rows), or
        ``None`` when it could not be computed (e.g. non-finite iterate).
    worst_nodes:
        ``(row_label, residual_amps)`` pairs for the worst-offending
        equations, largest first.  Node rows are labelled with the node
        name, branch rows with ``I(<element>)``.
    time:
        Simulation time of the failing solve (seconds; 0 for DC).
    mode:
        Analysis mode of the failing solve (``"dc"`` or ``"tran"``).
    damped_streak:
        Number of *consecutive* damped Newton steps at exit.  A streak
        equal to ``iterations`` means the solve was damping-starved: it
        never took an undamped step, so it was never even eligible for
        the convergence test.
    cond_estimate:
        Hager 1-norm condition estimate of the final assembled MNA
        matrix, or NaN when it could not be computed.  Lets forensics
        distinguish "diverged on a healthy system" from "the system
        itself is numerically hopeless".
    x:
        Final iterate (list of floats), or ``None``.
    ladder_trace:
        Per-rung ``{"rung", "ok", "detail", "residual"}`` dicts filled in
        by the recovery ladder when every escalation strategy failed too.
    """

    def __init__(self, message: str, iterations: int = 0,
                 residual: float = float("nan"), *,
                 residual_vector=None, worst_nodes=(), time: float = 0.0,
                 mode: str = "dc", damped_streak: int = 0, x=None,
                 ladder_trace=None, cond_estimate: float = float("nan")):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual
        self.residual_vector = residual_vector
        self.worst_nodes = list(worst_nodes)
        self.time = time
        self.mode = mode
        self.damped_streak = damped_streak
        self.x = x
        self.ladder_trace = list(ladder_trace) if ladder_trace else []
        self.cond_estimate = cond_estimate

    def to_dict(self) -> dict:
        """JSON-serialisable forensics payload (see ``repro diagnose``)."""
        return {
            "kind": "convergence_failure",
            "message": str(self),
            "mode": self.mode,
            "time": self.time,
            "iterations": self.iterations,
            "damped_streak": self.damped_streak,
            "residual": self.residual,
            "cond_estimate": self.cond_estimate,
            "worst_nodes": [[name, float(r)] for name, r in self.worst_nodes],
            "residual_vector": (None if self.residual_vector is None
                                else [float(v) for v in self.residual_vector]),
            "x": None if self.x is None else [float(v) for v in self.x],
            "ladder_trace": list(self.ladder_trace),
        }


class TimestepError(AnalysisError):
    """The transient integrator could not find an acceptable timestep.

    Mirrors :class:`ConvergenceError`'s structured context so a failed
    transient names *where* it died, not just that it did.

    Attributes
    ----------
    time:
        Time of the step that could not be taken (seconds).
    dt:
        Timestep at which the integrator gave up (seconds).
    rejected_steps:
        Total rejected steps over the whole run up to the failure.
    dt_history:
        The most recent attempted timesteps, oldest first.
    cause:
        The final underlying :class:`ConvergenceError` (or ``None`` when
        the failure was not convergence-related, e.g. ``max_steps``).
    """

    def __init__(self, message: str, *, time: float = float("nan"),
                 dt: float = float("nan"), rejected_steps: int = 0,
                 dt_history=(), cause=None):
        super().__init__(message)
        self.time = time
        self.dt = dt
        self.rejected_steps = rejected_steps
        self.dt_history = [float(v) for v in dt_history]
        self.cause = cause

    def to_dict(self) -> dict:
        """JSON-serialisable forensics payload (see ``repro diagnose``)."""
        return {
            "kind": "timestep_failure",
            "message": str(self),
            "time": self.time,
            "dt": self.dt,
            "rejected_steps": self.rejected_steps,
            "dt_history": list(self.dt_history),
            "cause": self.cause.to_dict() if self.cause is not None else None,
        }


class DeviceError(ReproError):
    """A device model was given parameters outside its valid range."""


class CharacterizationError(ReproError):
    """A characterization run produced an unusable result.

    Raised, for example, when a store-current extraction never reaches the
    required current margin inside the swept bias range.
    """


class SequenceError(ReproError):
    """A power-gating benchmark sequence is inconsistent."""


class VerificationError(ReproError):
    """Static analysis found error-severity problems in a netlist.

    Raised by the lint-before-simulate hooks (``repro.verify``) so a
    mis-wired power switch or orphaned MTJ stops a run *before* the
    solver turns it into a convergence failure or a silently wrong
    energy number.

    Attributes
    ----------
    diagnostics:
        The error-severity :class:`repro.verify.Diagnostic` records that
        triggered the failure.
    """

    def __init__(self, message: str, diagnostics=()):
        super().__init__(message)
        self.diagnostics = list(diagnostics)
