"""Partial-result semantics for sweeps and characterisation drivers.

A 100-point sweep should return 100 annotated entries, not die at point
37.  :class:`SkipRecord` is the structured "this point failed, here is
why" marker the sweep drivers record after the recovery ladder has been
exhausted; :func:`run_point` is the tiny wrapper that converts analysis
errors into them.

Skip records are plain data (JSON-serialisable via :meth:`SkipRecord.to_dict`)
so they can be dumped next to results and rendered later with
``python -m repro diagnose``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import AnalysisError, ConvergenceError, TimestepError


@dataclass
class SkipRecord:
    """One skipped point of a sweep / characterisation run.

    Attributes
    ----------
    index:
        Position of the point in its sweep.
    label:
        Human-readable point description (e.g. ``"vctrl=0.25"``).
    stage:
        The driver that skipped it (e.g. ``"dc_sweep"``, ``"store_yield"``).
    reason:
        The failure message.
    error_type:
        Exception class name (``ConvergenceError``, ``TimestepError``...).
    time:
        Simulation time of the failure, when known (seconds).
    residual:
        Final KCL residual (amps), when known.
    worst_nodes:
        ``(row_label, residual_amps)`` pairs of the worst offenders.
    ladder_trace:
        Recovery-ladder attempts (dicts) recorded before giving up.
    extra:
        Driver-specific annotations (swept value, fault spec...).
    """

    index: int
    label: str
    stage: str
    reason: str
    error_type: str
    time: float = float("nan")
    residual: float = float("nan")
    worst_nodes: List[Tuple[str, float]] = field(default_factory=list)
    ladder_trace: List[dict] = field(default_factory=list)
    extra: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_error(cls, err: Exception, index: int = 0, label: str = "",
                   stage: str = "", **extra: Any) -> "SkipRecord":
        """Build a record from a (preferably structured) analysis error."""
        record = cls(
            index=index,
            label=label,
            stage=stage,
            reason=str(err),
            error_type=type(err).__name__,
            extra=dict(extra),
        )
        if isinstance(err, ConvergenceError):
            record.time = err.time
            record.residual = err.residual
            record.worst_nodes = list(err.worst_nodes)
            record.ladder_trace = list(err.ladder_trace)
        elif isinstance(err, TimestepError):
            record.time = err.time
            if err.cause is not None:
                record.residual = err.cause.residual
                record.worst_nodes = list(err.cause.worst_nodes)
                record.ladder_trace = list(err.cause.ladder_trace)
        return record

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SkipRecord":
        """Inverse of :meth:`to_dict` (journal / forensics replay)."""
        return cls(
            index=int(payload.get("index", 0)),
            label=payload.get("label", ""),
            stage=payload.get("stage", ""),
            reason=payload.get("reason", ""),
            error_type=payload.get("error_type", ""),
            time=float(payload.get("time", float("nan"))),
            residual=float(payload.get("residual", float("nan"))),
            worst_nodes=[(n, float(v))
                         for n, v in payload.get("worst_nodes") or []],
            ladder_trace=list(payload.get("ladder_trace") or []),
            extra=dict(payload.get("extra") or {}),
        )

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "label": self.label,
            "stage": self.stage,
            "reason": self.reason,
            "error_type": self.error_type,
            "time": self.time,
            "residual": self.residual,
            "worst_nodes": [[n, float(v)] for n, v in self.worst_nodes],
            "ladder_trace": list(self.ladder_trace),
            "extra": dict(self.extra),
        }

    def render(self) -> str:
        """One-line summary for tables and logs."""
        label = self.label or f"#{self.index}"
        return f"{label}: {self.error_type}: {self.reason}"


def skip_payload(records: List[SkipRecord], stage: str = "") -> dict:
    """Wrap skip records in the JSON envelope ``repro diagnose`` renders."""
    return {
        "kind": "skip_records",
        "stage": stage or (records[0].stage if records else "unknown"),
        "records": [r.to_dict() for r in records],
    }


def run_point(
    fn: Callable[[], Any],
    index: int = 0,
    label: str = "",
    stage: str = "",
    **extra: Any,
) -> Tuple[Optional[Any], Optional[SkipRecord]]:
    """Run one sweep point; analysis failures become skip records.

    Returns ``(value, None)`` on success and ``(None, SkipRecord)`` when
    ``fn`` raised an :class:`~repro.errors.AnalysisError` (the recovery
    ladder inside the analyses has already been exhausted by then).
    Non-analysis exceptions — programming errors — propagate untouched.
    """
    try:
        return fn(), None
    except AnalysisError as err:
        return None, SkipRecord.from_error(err, index=index, label=label,
                                           stage=stage, **extra)
