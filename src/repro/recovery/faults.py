"""Fault injection: stress the recovery ladder with broken circuits.

The NV-SRAM corner sweeps only matter if the solver survives pathological
inputs, so this harness deliberately breaks decks the way silicon (and
variation models) break them:

* ``vth_shift`` — a FinFET threshold pushed far off its card;
* ``device_open`` — a FinFET's current factor collapsed to ~zero (an
  open device: floating gates and cut-off stacks downstream);
* ``mtj_drift`` — an MTJ RA product scaled orders of magnitude (toward
  open or short);
* ``node_short`` — a low-ohmic short from an internal node to ground;
* ``node_bridge`` — a low-ohmic bridge between two internal nodes;
* ``bad_ic`` — a corrupted initial-condition entry (e.g. a storage node
  "remembered" outside the rails).

:func:`chaos_operating_points` is the chaos mode used by the stress
tests and the ``python -m repro chaos`` CLI: every injected fault must
either converge (possibly via a ladder rung) or produce a structured
:class:`~repro.recovery.partial.SkipRecord` — never an unhandled
exception, never a silent abort of the remaining points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuit import Resistor
from ..devices.finfet import FinFET
from ..devices.mtj import MTJ
from ..errors import AnalysisError
from .partial import SkipRecord

#: All fault kinds the sampler draws from.
FAULT_KINDS = ("vth_shift", "device_open", "mtj_drift", "node_short",
               "node_bridge", "bad_ic")

#: Resistance of injected shorts/bridges (ohms).
_R_SHORT = 1.0


@dataclass(frozen=True)
class FaultSpec:
    """One injectable fault.

    ``target`` names an element (parameter faults) or a node (shorts,
    corrupted ICs); ``aux`` carries the second node of a bridge.
    """

    kind: str
    target: str
    magnitude: float = 0.0
    aux: str = ""

    def describe(self) -> str:
        if self.kind == "vth_shift":
            return f"vth of {self.target} shifted {self.magnitude:+.2f} V"
        if self.kind == "device_open":
            return f"{self.target} opened (i_spec x {self.magnitude:g})"
        if self.kind == "mtj_drift":
            return f"{self.target} RA product x {self.magnitude:g}"
        if self.kind == "node_short":
            return f"{self.target} shorted to ground ({_R_SHORT:g} ohm)"
        if self.kind == "node_bridge":
            return f"{self.target} bridged to {self.aux} ({_R_SHORT:g} ohm)"
        if self.kind == "bad_ic":
            return f"ic[{self.target}] corrupted to {self.magnitude:.2f} V"
        return f"{self.kind} on {self.target}"

    def to_dict(self) -> dict:
        return {"kind": self.kind, "target": self.target,
                "magnitude": self.magnitude, "aux": self.aux,
                "description": self.describe()}


def _fets(circuit) -> List[FinFET]:
    return [e for e in circuit.elements() if isinstance(e, FinFET)]


def _mtjs(circuit) -> List[MTJ]:
    return [e for e in circuit.elements() if isinstance(e, MTJ)]


def _internal_nodes(circuit) -> List[str]:
    """Nodes that belong to the cell under test, not the ideal sources."""
    circuit.compile()
    driven = set()
    for element in circuit.elements():
        if type(element).__name__ == "VoltageSource":
            driven.add(element.node_names[0])
    return [n for n in circuit.node_names() if n not in driven]


def sample_fault(circuit, rng: np.random.Generator,
                 kinds: Sequence[str] = FAULT_KINDS) -> FaultSpec:
    """Draw one random fault applicable to ``circuit``."""
    kinds = list(kinds)
    rng.shuffle(kinds)
    for kind in kinds:
        spec = _try_sample(circuit, rng, kind)
        if spec is not None:
            return spec
    raise ValueError("no fault kind applicable to this circuit")


def _try_sample(circuit, rng: np.random.Generator,
                kind: str) -> Optional[FaultSpec]:
    if kind == "vth_shift":
        fets = _fets(circuit)
        if not fets:
            return None
        shift = float(rng.uniform(0.15, 0.45)) * (1 if rng.random() < 0.5
                                                  else -1)
        return FaultSpec(kind, str(rng.choice([f.name for f in fets])),
                         magnitude=shift)
    if kind == "device_open":
        fets = _fets(circuit)
        if not fets:
            return None
        return FaultSpec(kind, str(rng.choice([f.name for f in fets])),
                         magnitude=1e-9)
    if kind == "mtj_drift":
        mtjs = _mtjs(circuit)
        if not mtjs:
            return None
        scale = float(10.0 ** rng.uniform(1.0, 3.0))
        if rng.random() < 0.5:
            scale = 1.0 / scale
        return FaultSpec(kind, str(rng.choice([m.name for m in mtjs])),
                         magnitude=scale)
    if kind == "node_short":
        nodes = _internal_nodes(circuit)
        if not nodes:
            return None
        return FaultSpec(kind, str(rng.choice(nodes)))
    if kind == "node_bridge":
        nodes = _internal_nodes(circuit)
        if len(nodes) < 2:
            return None
        a, b = rng.choice(nodes, size=2, replace=False)
        return FaultSpec(kind, str(a), aux=str(b))
    if kind == "bad_ic":
        nodes = _internal_nodes(circuit)
        if not nodes:
            return None
        level = float(rng.uniform(-0.9, 1.8))
        return FaultSpec(kind, str(rng.choice(nodes)), magnitude=level)
    return None


_FAULT_COUNTER = 0


def inject_fault(circuit, fault: FaultSpec) -> Dict[str, float]:
    """Apply ``fault`` to ``circuit`` in place.

    Returns an initial-condition override map (non-empty only for
    ``bad_ic`` faults) the caller must merge into its ``ic`` mapping.
    """
    global _FAULT_COUNTER
    if fault.kind == "vth_shift":
        element = circuit[fault.target]
        element.params = element.params.with_(
            vth0=max(element.params.vth0 + fault.magnitude, 0.01))
        return {}
    if fault.kind == "device_open":
        element = circuit[fault.target]
        element.params = element.params.with_(
            i_spec=element.params.i_spec * fault.magnitude)
        return {}
    if fault.kind == "mtj_drift":
        element = circuit[fault.target]
        element.params = element.params.with_(
            ra_product=element.params.ra_product * fault.magnitude)
        return {}
    if fault.kind in ("node_short", "node_bridge"):
        _FAULT_COUNTER += 1
        other = fault.aux if fault.kind == "node_bridge" else "0"
        circuit.add(Resistor(f"rfault{_FAULT_COUNTER}", fault.target,
                             other, _R_SHORT))
        return {}
    if fault.kind == "bad_ic":
        return {fault.target: fault.magnitude}
    raise ValueError(f"unknown fault kind: {fault.kind}")


# ---------------------------------------------------------------------------
# chaos driver
# ---------------------------------------------------------------------------

@dataclass
class ChaosRecord:
    """Outcome of one injected fault."""

    fault: FaultSpec
    #: "converged" (no rung fired), "recovered" (a ladder rung fired) or
    #: "skipped" (ladder exhausted; see ``skip``).
    outcome: str
    rung: Optional[str] = None
    skip: Optional[SkipRecord] = None

    def to_dict(self) -> dict:
        return {
            "fault": self.fault.to_dict(),
            "outcome": self.outcome,
            "rung": self.rung,
            "skip": self.skip.to_dict() if self.skip else None,
        }


@dataclass
class ChaosReport:
    """All records of one chaos run plus summary accounting."""

    target: str
    records: List[ChaosRecord] = field(default_factory=list)

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for record in self.records:
            out[record.outcome] = out.get(record.outcome, 0) + 1
        return out

    @property
    def skipped(self) -> List[ChaosRecord]:
        return [r for r in self.records if r.outcome == "skipped"]

    def to_dict(self) -> dict:
        return {
            "kind": "chaos_report",
            "target": self.target,
            "records": [r.to_dict() for r in self.records],
        }

    def render(self) -> str:
        from .forensics import render_failure
        return render_failure(self.to_dict())


def _chaos_testbench(target: str, cond=None, domain=None):
    """Build a fresh deck for a chaos target (lazy heavy imports)."""
    from ..characterize.testbench import build_cell_testbench

    if target in ("nv", "6t"):
        return build_cell_testbench(target, cond, domain)
    if target == "nvff":
        from ..characterize.ff_runner import _build_ff_bench
        from ..devices.mtj import MTJ_TABLE1
        from ..devices.ptm20 import NFET_20NM_HP, PFET_20NM_HP
        from ..pg.modes import OperatingConditions

        circuit, _ff = _build_ff_bench(cond or OperatingConditions(),
                                       NFET_20NM_HP, PFET_20NM_HP,
                                       MTJ_TABLE1)
        return circuit
    raise ValueError(f"unknown chaos target: {target}")


def chaos_operating_points(
    target: str = "nv",
    n_faults: int = 20,
    seed: int = 2015,
    cond=None,
    domain=None,
    kinds: Sequence[str] = FAULT_KINDS,
) -> ChaosReport:
    """Inject ``n_faults`` faults into fresh decks and solve each one.

    For the cell targets (``"nv"``, ``"6t"``) every faulted deck is
    solved in the standby mode and — NV only — the H-store mode, the two
    DC corners the Fig. 3–4 sweeps hammer.  Each fault yields exactly one
    :class:`ChaosRecord`; analysis failures become skip records, so the
    loop never aborts early and the report always holds ``n_faults``
    entries.
    """
    from ..analysis import operating_point
    from ..devices.mtj import MTJState
    from ..pg.modes import Mode

    rng = np.random.default_rng(seed)
    report = ChaosReport(target=target)

    for index in range(n_faults):
        bench = _chaos_testbench(target, cond, domain)
        is_cell = target in ("nv", "6t")
        circuit = bench.circuit if is_cell else bench
        fault = sample_fault(circuit, rng, kinds)
        ic_override = inject_fault(circuit, fault)

        rung: Optional[str] = None
        skip: Optional[SkipRecord] = None
        if is_cell:
            modes = [Mode.STANDBY] + ([Mode.STORE_H] if target == "nv"
                                      else [])
            for mode in modes:
                bench.apply_mode(mode)
                if target == "nv" and mode is Mode.STORE_H:
                    bench.nv_cell.set_mtj_states(
                        circuit, MTJState.PARALLEL, MTJState.ANTIPARALLEL)
                ic = bench.initial_conditions(True)
                ic.update(ic_override)
                try:
                    sol = operating_point(circuit, ic=ic)
                except AnalysisError as err:
                    skip = SkipRecord.from_error(
                        err, index=index, label=fault.describe(),
                        stage=f"chaos:{target}:{mode.name.lower()}",
                        fault=fault.to_dict())
                    break
                rung = getattr(sol, "recovery_rung", None) or rung
        else:
            try:
                sol = operating_point(circuit)
                rung = getattr(sol, "recovery_rung", None)
            except AnalysisError as err:
                skip = SkipRecord.from_error(
                    err, index=index, label=fault.describe(),
                    stage=f"chaos:{target}", fault=fault.to_dict())

        if skip is not None:
            outcome = "skipped"
        elif rung is not None:
            outcome = "recovered"
        else:
            outcome = "converged"
        report.records.append(ChaosRecord(fault=fault, outcome=outcome,
                                          rung=rung, skip=skip))
    return report


def chaos_store_transient(
    n_faults: int = 5,
    seed: int = 2015,
    cond=None,
    domain=None,
    kinds: Sequence[str] = FAULT_KINDS,
) -> ChaosReport:
    """Transient chaos: a shortened two-step store on faulted NV decks.

    Heavier than :func:`chaos_operating_points` (each fault costs a
    transient), so the stress suite and the ``--transient`` CLI flag use
    small fault counts.
    """
    from ..analysis import transient
    from ..analysis.transient import TransientOptions
    from ..errors import AnalysisError as _AnalysisError
    from ..pg.modes import Mode, OperatingConditions
    from ..pg.scheduler import Schedule, ScheduleStep

    cond = cond or OperatingConditions()
    rng = np.random.default_rng(seed)
    report = ChaosReport(target="nv:store-transient")

    for index in range(n_faults):
        tb = _chaos_testbench("nv", cond, domain)
        fault = sample_fault(tb.circuit, rng, kinds)
        ic_override = inject_fault(tb.circuit, fault)

        schedule = Schedule(
            [ScheduleStep(Mode.STANDBY, 0.5e-9),
             ScheduleStep(Mode.STORE_H, cond.t_store_step / 4),
             ScheduleStep(Mode.STORE_L, cond.t_store_step / 4)],
            cond, volatile=False,
        )
        tb.apply_waveforms(schedule.line_waveforms())
        tb.set_mtj_data(False)
        ic = tb.initial_conditions(True)
        ic.update(ic_override)

        rung: Optional[str] = None
        skip: Optional[SkipRecord] = None
        try:
            result = transient(tb.circuit, schedule.total_duration, ic=ic,
                               options=TransientOptions(dt_initial=20e-12))
            if result.recoveries:
                rung = result.recoveries[-1]["rung"]
        except _AnalysisError as err:
            skip = SkipRecord.from_error(
                err, index=index, label=fault.describe(),
                stage="chaos:nv:store-transient", fault=fault.to_dict())

        outcome = ("skipped" if skip is not None
                   else "recovered" if rung is not None else "converged")
        report.records.append(ChaosRecord(fault=fault, outcome=outcome,
                                          rung=rung, skip=skip))
    return report


# ---------------------------------------------------------------------------
# executor chaos: faults against the campaign engine itself
# ---------------------------------------------------------------------------

#: Process-level fault kinds injected into :mod:`repro.exec` workers by
#: the executor chaos harness (``repro chaos --executor``).  These break
#: the *execution substrate*, not the circuit: the campaign engine must
#: classify each one and still deliver an N-in/N-out accounting.
EXEC_FAULT_KINDS = ("worker_crash", "worker_hang", "slow_task",
                    "flaky_crash", "task_error", "conv_skip")

#: The terminal state the executor must drive each fault kind to.
#: ``None`` (healthy) and ``slow_task`` complete; a ``flaky_crash``
#: completes *after* a retry; deterministic convergence failures are
#: record-and-skip; hard crashes/hangs exhaust the retry budget and
#: poison errors quarantine immediately.
EXEC_FAULT_EXPECTED = {
    None: "completed",
    "slow_task": "completed",
    "flaky_crash": "completed",
    "conv_skip": "skipped",
    "worker_crash": "quarantined",
    "worker_hang": "quarantined",
    "task_error": "quarantined",
}


def build_executor_chaos_campaign(scratch, n_healthy: int = 4,
                                  seed: int = 2015,
                                  kinds: Sequence[str] = EXEC_FAULT_KINDS):
    """Campaign mixing healthy tasks with one task per executor fault.

    ``scratch`` is a writable directory the ``flaky_crash`` tasks use
    for their crash-once markers; it also namespaces the campaign key,
    so each chaos run journals as its own campaign.
    """
    from ..exec import Campaign, make_task

    tasks = []
    index = 0
    for kind in kinds:
        params = {"index": index, "fault": kind, "scratch": str(scratch)}
        if kind == "slow_task":
            params["delay"] = 0.2
        tasks.append(make_task(params, label=f"fault:{kind}"))
        index += 1
    rng = np.random.default_rng(seed)
    for _ in range(n_healthy):
        tasks.append(make_task(
            {"index": index, "fault": None, "scratch": str(scratch),
             "work": round(float(rng.uniform(0.0, 0.05)), 4)},
            label=f"healthy {index}"))
        index += 1
    return Campaign(name="exec-chaos", fn="repro.exec.tasks:chaos_task",
                    tasks=tasks)


def chaos_executor(scratch, n_healthy: int = 4, workers: int = 2,
                   seed: int = 2015, task_timeout: float = 5.0,
                   max_retries: int = 1, journal=None,
                   kinds: Sequence[str] = EXEC_FAULT_KINDS,
                   progress=None) -> dict:
    """Run the executor chaos campaign and audit the outcomes.

    Every injected fault must land in exactly the terminal state of
    :data:`EXEC_FAULT_EXPECTED` — N tasks in, N classified outcomes out,
    no unhandled exception, no lost task.  Returns a JSON-able report
    (``kind="exec_chaos_report"``) listing each task's expected vs
    actual state and an overall ``ok`` verdict.
    """
    from ..exec import CampaignOptions, run_campaign

    campaign = build_executor_chaos_campaign(scratch, n_healthy, seed,
                                             kinds)
    options = CampaignOptions(
        workers=workers,
        task_timeout=task_timeout,
        max_retries=max_retries,
        backoff_base=0.05,
        backoff_cap=0.5,
        resume=journal is not None,
        progress=progress,
    )
    result = run_campaign(campaign, journal=journal, options=options)

    rows = []
    ok = True
    for task in campaign.tasks:
        fault = task.params.get("fault")
        expected = EXEC_FAULT_EXPECTED.get(fault, "completed")
        outcome = result.outcome(task.task_id)
        actual = outcome.status if outcome is not None else "missing"
        row_ok = actual == expected
        if fault == "flaky_crash" and row_ok:
            row_ok = outcome.attempts >= 2   # must have actually retried
        rows.append({
            "label": task.label,
            "fault": fault,
            "expected": expected,
            "actual": actual,
            "attempts": outcome.attempts if outcome else 0,
            "ok": row_ok,
        })
        ok = ok and row_ok
    n_in = len(campaign.tasks)
    n_out = len(result.outcomes)
    return {
        "kind": "exec_chaos_report",
        "n_in": n_in,
        "n_out": n_out,
        "counts": result.counts(),
        "retries": result.retries,
        "ok": ok and n_in == n_out,
        "rows": rows,
    }


def render_exec_chaos(report: dict) -> str:
    """Human-readable executor chaos summary."""
    lines = [
        f"executor chaos: {report['n_in']} tasks in, "
        f"{report['n_out']} outcomes out — "
        + ("PASS" if report["ok"] else "FAIL")
    ]
    counts = report["counts"]
    lines.append(
        f"  {counts.get('completed', 0)} completed, "
        f"{counts.get('skipped', 0)} skipped, "
        f"{counts.get('quarantined', 0)} quarantined, "
        f"{report['retries']} retried attempt(s)"
    )
    for row in report["rows"]:
        mark = "ok " if row["ok"] else "BAD"
        lines.append(
            f"  [{mark}] {row['label']}: expected {row['expected']}, "
            f"got {row['actual']} ({row['attempts']} attempt(s))"
        )
    return "\n".join(lines)
