"""Convergence recovery, failure forensics and fault injection.

The resilience layer around :mod:`repro.analysis`:

* :mod:`repro.recovery.ladder` — the escalation ladder a failed Newton
  solve walks (tighter damping → gmin stepping → backward-Euler fallback
  → pseudo-transient continuation → source ramping), used automatically
  by :func:`repro.analysis.dc.operating_point` and the transient
  integrator.
* :mod:`repro.recovery.forensics` — renders and persists the structured
  failure context every :class:`~repro.errors.ConvergenceError` /
  :class:`~repro.errors.TimestepError` now carries (``python -m repro
  diagnose``).
* :mod:`repro.recovery.partial` — :class:`SkipRecord` partial-result
  semantics for the sweep and characterisation drivers: failed points
  are annotated, not fatal.
* :mod:`repro.recovery.faults` — the fault-injection / chaos harness
  (imported lazily; ``from repro.recovery import faults``) that proves
  the ladder degrades gracefully (``python -m repro chaos``).

See ``docs/ROBUSTNESS.md`` for the full tour.
"""

from .ladder import (
    LadderResult,
    RecoveryOptions,
    RungAttempt,
    recover_dc,
    recover_transient_step,
)
from .forensics import dump_failure, load_failure, render_failure
from .partial import SkipRecord, run_point, skip_payload

__all__ = [
    "LadderResult",
    "RecoveryOptions",
    "RungAttempt",
    "recover_dc",
    "recover_transient_step",
    "dump_failure",
    "load_failure",
    "render_failure",
    "SkipRecord",
    "run_point",
    "skip_payload",
]
