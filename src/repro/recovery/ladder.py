"""The convergence-recovery ladder.

When a plain Newton solve fails, :func:`recover_dc` escalates through a
sequence of increasingly heavy-handed strategies ("rungs") until one
converges, recording every attempt:

1. **plain** — the solve exactly as requested.
1.5. **equilibrate** — the same solve with every linear system routed
   through exact power-of-two row/column equilibration
   (:mod:`repro.analysis.trust`).  The cheapest rung by far: same Newton
   walk, better-conditioned LU.  Floating virtual-VDD rails routinely
   spread the matrix over ~15 decades; equilibration alone often
   rescues those without touching the circuit.
2. **damping** — much tighter damping with a proportionally larger
   iteration budget.  If the original failure was *damping-starved*
   (every iteration damped, so convergence was never even testable —
   see :attr:`~repro.errors.ConvergenceError.damped_streak`), the budget
   is boosted further.
3. **gmin-step** — solve with large shunt conductances to ground, then
   tighten them down to the floor, warm-starting each stage.
4. **pseudo-transient** — continuation in artificial time: a capacitor
   from every node to ground turns the DC problem into a stable implicit
   integration whose steady state is the operating point; the artificial
   timestep is ramped up until the iterates stop moving, then the clean
   system is polished.
5. **source-ramp** — ramp every independent source up from a fraction of
   its level, warm-starting along the way.

:func:`recover_transient_step` is the transient-local ladder used inside
the integrator at a *fixed* timepoint, before the step size is cut:
tighter damping, a backward-Euler fallback (trapezoidal companion models
ring on stiff store/restore edges), and local gmin stepping.

Each rung preserves correctness: intermediate rungs may solve modified
systems, but the returned solution always comes from a final solve of
the *unmodified* equations (at floor gmin / full source scale).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..errors import ConvergenceError

# NOTE: repro.analysis modules import this package at module level, so
# every analysis import here is deferred into the function bodies to keep
# the package import-cycle free (repro.recovery itself stays light).

#: Mirrors repro.analysis.solver.GMIN_FLOOR (kept literal to avoid the
#: import cycle with the analysis package).
GMIN_FLOOR = 1e-12


@dataclass
class RungAttempt:
    """One recorded rung attempt of the ladder."""

    rung: str
    ok: bool
    detail: str = ""
    residual: float = float("nan")

    def to_dict(self) -> dict:
        return {"rung": self.rung, "ok": self.ok, "detail": self.detail,
                "residual": self.residual}


@dataclass
class RecoveryOptions:
    """Tuning knobs for the recovery ladder."""

    #: Master switch; disabled means plain solves raise immediately.
    enabled: bool = True
    #: Allow the equilibrate rung (rung 1.5 — forced row/column
    #: equilibration of every linear solve, see repro.analysis.trust).
    equilibrate: bool = True
    #: Damping levels tried by the tighter-damping rung (volts/iteration).
    damping_factors: Tuple[float, ...] = (0.1, 0.03)
    #: Iteration-budget multiplier for the damping rung (smaller steps
    #: need proportionally more of them).
    damping_iteration_boost: int = 4
    #: gmin-stepping ladder, solved from first to last.
    gmin_steps: Tuple[float, ...] = (1e-3, 1e-5, 1e-7, 1e-9, GMIN_FLOOR)
    #: Pseudo-transient continuation: artificial timestep ramp (seconds).
    ptran_dt: Tuple[float, ...] = (1e-9, 1e-8, 1e-7, 1e-6, 1e-5)
    #: Artificial node capacitance for the pseudo-transient rung (farads).
    ptran_capacitance: float = 1e-9
    #: source-ramping ladder (fractions of full source level).
    source_steps: Tuple[float, ...] = (0.1, 0.3, 0.5, 0.7, 0.85, 1.0)
    #: Allow the source-ramp rung.  Disable when the caller must stay in
    #: a chosen stability basin (source ramping restarts from zero and
    #: may land a bistable circuit on the other branch).
    source_ramp: bool = True
    #: Allow the pseudo-transient rung.
    pseudo_transient: bool = True
    #: Transient-local rung switches (see recover_transient_step).
    be_fallback: bool = True


@dataclass
class LadderResult:
    """Outcome of a recovered solve.

    ``rung`` is ``None`` when the plain solve succeeded (no recovery was
    needed); otherwise it names the rung that converged.  ``cert`` is
    the :class:`~repro.analysis.trust.Certificate` of the final accepted
    solve (``None`` when unavailable).
    """

    x: np.ndarray
    trace: List[RungAttempt] = field(default_factory=list)
    rung: Optional[str] = None
    cert: Optional[object] = None

    @property
    def recovered(self) -> bool:
        return self.rung is not None


#: An ``extra_stamps(stamper, ctx)`` callback, as taken by newton_solve.
ExtraStamps = Optional[Callable]


def _boosted(newton: "NewtonOptions", damping: float, boost: int) -> "NewtonOptions":
    return replace(newton, damping=damping,
                   max_iterations=newton.max_iterations * boost)


class _Ladder:
    """Shared attempt bookkeeping for the DC and transient ladders."""

    def __init__(self):
        self.trace: List[RungAttempt] = []
        self.last_error: Optional[ConvergenceError] = None

    def attempt(self, rung: str, solve: Callable[[], np.ndarray],
                detail: str = "") -> Optional[np.ndarray]:
        try:
            x = solve()
        except ConvergenceError as err:
            self.last_error = err
            self.trace.append(RungAttempt(rung, False, detail=detail or str(err),
                                          residual=err.residual))
            return None
        self.trace.append(RungAttempt(rung, True, detail=detail))
        return x

    def exhausted(self, context_message: str) -> ConvergenceError:
        """Build the terminal error carrying the whole ladder trace."""
        err = self.last_error
        trace_dicts = [a.to_dict() for a in self.trace]
        if err is None:   # pragma: no cover - ladder always attempts once
            return ConvergenceError(context_message, ladder_trace=trace_dicts)
        wrapped = ConvergenceError(
            f"{context_message}: {err}",
            iterations=err.iterations,
            residual=err.residual,
            residual_vector=err.residual_vector,
            worst_nodes=err.worst_nodes,
            time=err.time,
            mode=err.mode,
            damped_streak=err.damped_streak,
            x=err.x,
            ladder_trace=trace_dicts,
            cond_estimate=getattr(err, "cond_estimate", float("nan")),
        )
        wrapped.__cause__ = err
        return wrapped


def recover_dc(
    circuit,
    time: float = 0.0,
    x0: Optional[np.ndarray] = None,
    newton: Optional[NewtonOptions] = None,
    extra_stamps: ExtraStamps = None,
    options: Optional[RecoveryOptions] = None,
) -> LadderResult:
    """Solve a DC point, escalating through the recovery ladder on failure.

    Returns a :class:`LadderResult` whose ``trace`` records every rung
    attempted and whose ``rung`` names the successful one (``None`` for a
    clean first-try solve).  Raises :class:`~repro.errors.ConvergenceError`
    with the full ``ladder_trace`` attached when every rung fails.
    """
    from ..analysis.mna import Context
    from ..analysis.solver import NewtonOptions, newton_solve

    newton = newton or NewtonOptions()
    opts = options or RecoveryOptions()
    circuit.compile()
    if x0 is None:
        x0 = np.zeros(circuit.size)
    x0 = np.asarray(x0, dtype=float)
    ladder = _Ladder()
    last_ctx: List[Optional[Context]] = [None]

    def fresh_ctx(scale: float = 1.0) -> Context:
        ctx = Context(mode="dc", time=time, source_scale=scale)
        last_ctx[0] = ctx
        return ctx

    def done(x: np.ndarray, rung: Optional[str]) -> LadderResult:
        cert = last_ctx[0].cert if last_ctx[0] is not None else None
        return LadderResult(x, ladder.trace, rung, cert=cert)

    # Rung 1: the solve exactly as requested.
    x = ladder.attempt("plain", lambda: newton_solve(
        circuit, fresh_ctx(), x0, newton, extra_stamps))
    if x is not None:
        return done(x, None)
    if not opts.enabled:
        raise ladder.exhausted("recovery disabled")

    # Rung 1.5: same solve, every linear system equilibrated.  Costs one
    # extra Newton walk at most and rescues the purely *numerical*
    # failures (15-decade conductance spread) before any heavier rung
    # modifies the problem.
    if opts.equilibrate:
        x = ladder.attempt(
            "equilibrate",
            lambda: newton_solve(
                circuit, fresh_ctx(), x0,
                replace(newton,
                        trust=replace(newton.trust, always_equilibrate=True)),
                extra_stamps),
            detail="forced row/column equilibration",
        )
        if x is not None:
            return done(x, "equilibrate")

    # Rung 2: tighter damping.  React to damping starvation with a larger
    # iteration budget — tiny steps need room to accumulate.
    starved = (ladder.last_error is not None
               and ladder.last_error.damped_streak
               >= max(1, newton.max_iterations // 2))
    boost = opts.damping_iteration_boost * (2 if starved else 1)
    for factor in opts.damping_factors:
        x = ladder.attempt(
            "damping",
            lambda f=factor: newton_solve(
                circuit, fresh_ctx(), x0, _boosted(newton, f, boost),
                extra_stamps),
            detail=f"damping={factor:g}, boost={boost}x",
        )
        if x is not None:
            return done(x, "damping")

    # Rung 3: gmin stepping — relax with large shunts, tighten gradually.
    def gmin_chain() -> np.ndarray:
        xg = x0
        for gmin in opts.gmin_steps:
            xg = newton_solve(circuit, fresh_ctx(), xg,
                              replace(newton, gmin=gmin), extra_stamps)
        if opts.gmin_steps and opts.gmin_steps[-1] > newton.gmin:
            xg = newton_solve(circuit, fresh_ctx(), xg, newton, extra_stamps)
        return xg

    if opts.gmin_steps:
        x = ladder.attempt("gmin-step", gmin_chain,
                           detail=f"{len(opts.gmin_steps)} stages")
        if x is not None:
            return done(x, "gmin-step")

    # Rung 4: pseudo-transient continuation.
    if opts.pseudo_transient and opts.ptran_dt:
        x = ladder.attempt(
            "pseudo-transient",
            lambda: _pseudo_transient(circuit, time, x0, newton,
                                      extra_stamps, opts, fresh_ctx),
            detail=f"dt ramp to {opts.ptran_dt[-1]:g}s",
        )
        if x is not None:
            return done(x, "pseudo-transient")

    # Rung 5: source ramping.
    if opts.source_ramp and opts.source_steps:
        x = ladder.attempt(
            "source-ramp",
            lambda: _source_ramp(circuit, time, x0, newton, extra_stamps,
                                 opts, fresh_ctx),
            detail=f"{len(opts.source_steps)} steps",
        )
        if x is not None:
            return done(x, "source-ramp")

    raise ladder.exhausted(
        f"recovery ladder exhausted ({len(ladder.trace)} attempts)")


def _pseudo_transient(circuit, time: float, x0: np.ndarray,
                      newton: NewtonOptions, extra_stamps: ExtraStamps,
                      opts: RecoveryOptions, fresh_ctx) -> np.ndarray:
    """Pseudo-transient continuation toward the DC point.

    Backward-Euler companion stamps of an artificial capacitance C from
    every node to ground add ``C/dt`` to the diagonal and pull the solve
    toward the previous iterate — a heavily regularised system for small
    dt that relaxes to the true one as dt grows.
    """
    from ..analysis.mna import Context
    from ..analysis.solver import newton_solve

    num_nodes = circuit.num_nodes
    x = np.asarray(x0, dtype=float).copy()
    cap = opts.ptran_capacitance
    for dt in opts.ptran_dt:
        g_art = cap / dt
        x_prev = x.copy()

        def stamps(stamper: Stamper, ctx: Context,
                   g=g_art, prev=x_prev) -> None:
            for node in range(num_nodes):
                stamper.conductance(node, -1, g)
                stamper.current(-1, node, g * prev[node])
            if extra_stamps is not None:
                extra_stamps(stamper, ctx)

        x = newton_solve(circuit, fresh_ctx(), x, newton, stamps)
    # Final polish of the unmodified system from the continuation point.
    return newton_solve(circuit, fresh_ctx(), x, newton, extra_stamps)


def _source_ramp(circuit, time: float, x0: np.ndarray,
                 newton: NewtonOptions, extra_stamps: ExtraStamps,
                 opts: RecoveryOptions, fresh_ctx) -> np.ndarray:
    """Ramp independent sources up from a fraction of their level."""
    from ..analysis.solver import newton_solve

    x = np.zeros_like(np.asarray(x0, dtype=float))
    for scale in opts.source_steps:
        ctx = fresh_ctx(scale)
        try:
            x = newton_solve(circuit, ctx, x, newton, extra_stamps)
        except ConvergenceError:
            # One retry with elevated gmin at this rung of the ramp.
            x = newton_solve(circuit, fresh_ctx(scale), x,
                             replace(newton, gmin=1e-6), extra_stamps)
    if abs(opts.source_steps[-1] - 1.0) > 1e-12:
        x = newton_solve(circuit, fresh_ctx(), x, newton, extra_stamps)
    return x


def recover_transient_step(
    circuit,
    ctx: Context,
    x_prev: np.ndarray,
    guess: np.ndarray,
    newton: NewtonOptions,
    options: Optional[RecoveryOptions] = None,
) -> Optional[LadderResult]:
    """Transient-local ladder at a fixed timepoint and timestep.

    Tried *before* the integrator cuts the step size: tighter damping,
    a backward-Euler fallback when the failing method was trapezoidal,
    and local gmin stepping (backward Euler, warm-started from the last
    accepted state).  Element internal state is untouched — only accepted
    steps commit — so attempts are free of side effects.

    Returns ``None`` when every local rung fails (the caller should cut
    ``dt``), otherwise a :class:`LadderResult` naming the rung.
    """
    from ..analysis.mna import Context
    from ..analysis.solver import newton_solve

    opts = options or RecoveryOptions()
    if not opts.enabled:
        return None
    ladder = _Ladder()
    last_ctx: List[Optional[Context]] = [None]

    def step_ctx(method: str) -> Context:
        fresh = Context(mode="tran", time=ctx.time, dt=ctx.dt, method=method,
                        x=x_prev)
        last_ctx[0] = fresh
        return fresh

    def done(x: np.ndarray, rung: str) -> LadderResult:
        cert = last_ctx[0].cert if last_ctx[0] is not None else None
        return LadderResult(x, ladder.trace, rung, cert=cert)

    if opts.equilibrate:
        x = ladder.attempt(
            "equilibrate",
            lambda: newton_solve(
                circuit, step_ctx(ctx.method), guess,
                replace(newton,
                        trust=replace(newton.trust,
                                      always_equilibrate=True))),
            detail="forced row/column equilibration",
        )
        if x is not None:
            return done(x, "equilibrate")

    for factor in opts.damping_factors:
        x = ladder.attempt(
            "damping",
            lambda f=factor: newton_solve(
                circuit, step_ctx(ctx.method), guess,
                _boosted(newton, f, opts.damping_iteration_boost)),
            detail=f"damping={factor:g}",
        )
        if x is not None:
            return done(x, "damping")

    if opts.be_fallback and ctx.method != "be":
        x = ladder.attempt("backward-euler", lambda: newton_solve(
            circuit, step_ctx("be"), guess, newton))
        if x is not None:
            return done(x, "backward-euler")

    if opts.gmin_steps:
        def gmin_chain() -> np.ndarray:
            xg = np.asarray(x_prev, dtype=float).copy()
            for gmin in opts.gmin_steps:
                xg = newton_solve(circuit, step_ctx("be"), xg,
                                  replace(newton, gmin=gmin))
            if opts.gmin_steps[-1] > newton.gmin:
                xg = newton_solve(circuit, step_ctx("be"), xg, newton)
            return xg

        x = ladder.attempt("gmin-step", gmin_chain)
        if x is not None:
            return done(x, "gmin-step")

    return None
