"""Failure forensics: render, dump and reload solver post-mortems.

The solver attaches structured context to every
:class:`~repro.errors.ConvergenceError` / :class:`~repro.errors.TimestepError`
(true KCL residual vector, worst-offending nodes, damped-step streak,
time point, dt history, ladder trace).  This module turns those payloads
— and the :class:`~repro.recovery.partial.SkipRecord` lists produced by
partial-result sweeps — into human-readable reports, and persists them
as JSON for the ``python -m repro diagnose`` CLI.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Union

from ..errors import ConvergenceError, StampError, TimestepError
from ..units import format_eng

PayloadLike = Union[ConvergenceError, StampError, TimestepError,
                    Dict[str, Any]]


def failure_payload(obj: PayloadLike) -> Dict[str, Any]:
    """Normalise an error or an already-dumped dict to a payload dict."""
    if isinstance(obj, (ConvergenceError, StampError, TimestepError)):
        return obj.to_dict()
    if isinstance(obj, dict):
        return obj
    raise TypeError(f"cannot diagnose object of type {type(obj).__name__}")


def dump_failure(obj: PayloadLike, path: Union[str, Path]) -> Path:
    """Write a failure payload as JSON; returns the path written."""
    path = Path(path)
    path.write_text(json.dumps(failure_payload(obj), indent=2))
    return path


def load_failure(path: Union[str, Path]) -> Dict[str, Any]:
    """Load a payload previously written by :func:`dump_failure` (or any
    of the skip-record / chaos-report JSON files this package emits)."""
    return json.loads(Path(path).read_text())


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------

def _render_ladder_trace(trace: Iterable[Dict[str, Any]],
                         indent: str = "  ") -> List[str]:
    lines = []
    for attempt in trace:
        status = "ok" if attempt.get("ok") else "failed"
        detail = attempt.get("detail") or ""
        if detail:
            detail = f" — {detail}"
        lines.append(f"{indent}[{status:6s}] {attempt.get('rung')}{detail}")
    return lines


def _render_convergence(payload: Dict[str, Any]) -> List[str]:
    lines = [f"convergence failure: {payload.get('message', '')}"]
    mode = payload.get("mode", "dc")
    time = payload.get("time", 0.0)
    lines.append(f"  analysis:       {mode}"
                 + (f" @ t = {format_eng(time, 's')}" if mode == "tran" else ""))
    lines.append(f"  iterations:     {payload.get('iterations', 0)}")
    streak = payload.get("damped_streak", 0)
    if streak:
        lines.append(f"  damped streak:  {streak} consecutive damped steps "
                     "(damping-starved solve)")
    residual = payload.get("residual")
    if residual is not None and residual == residual:   # not NaN
        lines.append(f"  KCL residual:   {format_eng(residual, 'A')} (inf-norm)")
    cond = payload.get("cond_estimate")
    if cond is not None and cond == cond:   # not NaN
        lines.append(f"  cond estimate:  {cond:.3g} (1-norm"
                     + ("; numerically hopeless system)" if cond > 1e15
                        else ")"))
    worst = payload.get("worst_nodes") or []
    if worst:
        lines.append("  worst offenders:")
        for name, value in worst:
            lines.append(f"    {name:24s} {format_eng(value, 'A')}")
    trace = payload.get("ladder_trace") or []
    if trace:
        lines.append("  recovery ladder:")
        lines.extend(_render_ladder_trace(trace, indent="    "))
    return lines


def _render_timestep(payload: Dict[str, Any]) -> List[str]:
    lines = [f"timestep failure: {payload.get('message', '')}"]
    lines.append(f"  time:           {format_eng(payload.get('time', 0.0), 's')}")
    lines.append(f"  dt at failure:  {format_eng(payload.get('dt', 0.0), 's')}")
    lines.append(f"  rejected steps: {payload.get('rejected_steps', 0)}")
    history = payload.get("dt_history") or []
    if history:
        shown = ", ".join(format_eng(dt, "s") for dt in history[-8:])
        lines.append(f"  dt history:     {shown}")
    cause = payload.get("cause")
    if cause:
        lines.append("  final Newton failure:")
        lines.extend("  " + line for line in _render_convergence(cause))
    return lines


def _render_stamp(payload: Dict[str, Any]) -> List[str]:
    lines = [f"stamp failure: {payload.get('message', '')}"]
    mode = payload.get("mode", "dc")
    time = payload.get("time", 0.0)
    lines.append(f"  analysis:       {mode}"
                 + (f" @ t = {format_eng(time, 's')}" if mode == "tran" else ""))
    offenders = payload.get("offenders") or []
    if offenders:
        lines.append("  offending elements:")
        for entry in offenders:
            rows = entry.get("rows") or []
            where = f" @ rows [{', '.join(map(str, rows))}]" if rows else ""
            err = entry.get("error")
            suffix = f" ({err})" if err else ""
            lines.append(f"    {entry.get('element')}{where}{suffix}")
    return lines


def _render_skip_records(payload: Dict[str, Any]) -> List[str]:
    records = payload.get("records") or []
    lines = [f"skip records: {len(records)} point(s) skipped "
             f"(stage: {payload.get('stage', 'unknown')})"]
    for record in records:
        label = record.get("label") or f"#{record.get('index')}"
        lines.append(f"  [{record.get('index')}] {label}: "
                     f"{record.get('error_type')}: {record.get('reason')}")
        worst = record.get("worst_nodes") or []
        if worst:
            names = ", ".join(f"{n} ({format_eng(v, 'A')})"
                              for n, v in worst[:3])
            lines.append(f"      worst nodes: {names}")
        trace = record.get("ladder_trace") or []
        if trace:
            lines.extend(_render_ladder_trace(trace, indent="      "))
    return lines


def _render_chaos(payload: Dict[str, Any]) -> List[str]:
    records = payload.get("records") or []
    lines = [f"chaos report: {len(records)} injected fault(s) on "
             f"{payload.get('target', '?')}"]
    counts: Dict[str, int] = {}
    for record in records:
        counts[record.get("outcome", "?")] = \
            counts.get(record.get("outcome", "?"), 0) + 1
        fault = record.get("fault") or {}
        rung = record.get("rung")
        line = (f"  {fault.get('kind', '?'):14s} -> {fault.get('target', '?'):20s}"
                f" {record.get('outcome', '?')}")
        if rung:
            line += f" (rung: {rung})"
        lines.append(line)
        skip = record.get("skip")
        if skip:
            lines.append(f"      {skip.get('error_type')}: {skip.get('reason')}")
    summary = ", ".join(f"{k}: {v}" for k, v in sorted(counts.items()))
    lines.append(f"  -> {summary}")
    return lines


def render_failure(obj: PayloadLike) -> str:
    """Human-readable report of any forensics payload this package emits."""
    payload = failure_payload(obj)
    kind = payload.get("kind")
    if kind == "convergence_failure":
        return "\n".join(_render_convergence(payload))
    if kind == "timestep_failure":
        return "\n".join(_render_timestep(payload))
    if kind == "stamp_failure":
        return "\n".join(_render_stamp(payload))
    if kind == "skip_records":
        return "\n".join(_render_skip_records(payload))
    if kind == "chaos_report":
        return "\n".join(_render_chaos(payload))
    return json.dumps(payload, indent=2)
