"""Hierarchical subcircuits that flatten into a flat :class:`Circuit`.

A :class:`SubCircuit` is a reusable template with declared ports.  When
instantiated into a parent circuit, its internal nodes are prefixed with
the instance name (``x1.q``), its ports are connected to the parent nodes
given at instantiation, and its element names are prefixed likewise
(``x1.m_pull_up``).  This mirrors SPICE ``.SUBCKT`` flattening and is how
the SRAM cell builders compose cells into arrays.
"""

from __future__ import annotations

import copy
from typing import Callable, Dict, List, Sequence, Tuple

from ..errors import NetlistError
from .netlist import Circuit, Element, is_ground


class SubCircuit:
    """A subcircuit template.

    Parameters
    ----------
    name:
        Template name (for diagnostics only).
    ports:
        Ordered port node names visible to the parent.

    Elements are added with :meth:`add` exactly as on a
    :class:`~repro.circuit.netlist.Circuit`; node names matching a port are
    connected through, everything else becomes an internal node.
    """

    def __init__(self, name: str, ports: Sequence[str]):
        if len(set(ports)) != len(ports):
            raise NetlistError(f"{name}: duplicate port names")
        self.name = name
        self.ports: Tuple[str, ...] = tuple(ports)
        self._elements: List[Element] = []
        self._element_names: set = set()

    def add(self, element: Element) -> Element:
        if element.name in self._element_names:
            raise NetlistError(
                f"duplicate element name in subcircuit {self.name}: {element.name}"
            )
        self._elements.append(element)
        self._element_names.add(element.name)
        return element

    def __len__(self) -> int:
        return len(self._elements)

    def instantiate(
        self,
        parent: Circuit,
        instance: str,
        connections: Dict[str, str],
    ) -> List[Element]:
        """Flatten a copy of this template into ``parent``.

        Parameters
        ----------
        parent:
            Circuit receiving the flattened elements.
        instance:
            Instance name used as a hierarchical prefix.
        connections:
            Mapping from each port name to a parent node name.

        Returns the list of flattened elements added to the parent.
        """
        missing = [p for p in self.ports if p not in connections]
        if missing:
            raise NetlistError(
                f"instance {instance} of {self.name}: unconnected ports {missing}"
            )
        extra = [p for p in connections if p not in self.ports]
        if extra:
            raise NetlistError(
                f"instance {instance} of {self.name}: unknown ports {extra}"
            )

        added: List[Element] = []
        for template in self._elements:
            element = copy.deepcopy(template)
            element.name = f"{instance}.{element.name}"
            element.node_names = tuple(
                self._map_node(node, instance, connections)
                for node in element.node_names
            )
            parent.add(element)
            added.append(element)
        return added

    def _map_node(self, node: str, instance: str,
                  connections: Dict[str, str]) -> str:
        if is_ground(node):
            return node
        if node in connections:
            return connections[node]
        return f"{instance}.{node}"


def build_subcircuit(
    name: str,
    ports: Sequence[str],
    builder: Callable[[SubCircuit], None],
) -> SubCircuit:
    """Construct a subcircuit by running ``builder`` on a fresh template."""
    sub = SubCircuit(name, ports)
    builder(sub)
    return sub
