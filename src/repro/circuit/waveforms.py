"""Time-domain waveform primitives for independent sources.

Waveforms are pure functions of time with two extra capabilities needed by
the adaptive transient integrator:

* ``breakpoints(t0, t1)`` returns the instants inside ``[t0, t1]`` where the
  waveform has a corner (edge start/end).  The integrator forces a step at
  each breakpoint so sharp edges are never jumped over.
* composition: :class:`Sequence` concatenates waveforms back-to-back, which
  is how the power-gating scheduler builds the multi-mode bias timelines of
  the paper's Fig. 5.

All waveforms are immutable.
"""

from __future__ import annotations

import bisect
from typing import Iterable, List, Sequence as SequenceType, Tuple

from ..errors import AnalysisError


class Waveform:
    """Base class: a scalar function of time in seconds."""

    def value(self, t: float) -> float:
        raise NotImplementedError

    def breakpoints(self, t0: float, t1: float) -> List[float]:
        """Corner instants in the half-open window ``(t0, t1]``."""
        return []

    def __call__(self, t: float) -> float:
        return self.value(t)

    def shifted(self, dt: float) -> "Shifted":
        """This waveform delayed by ``dt`` seconds."""
        return Shifted(self, dt)


class Constant(Waveform):
    """A DC level."""

    def __init__(self, level: float):
        self.level = float(level)

    def value(self, t: float) -> float:
        return self.level

    def __repr__(self) -> str:
        return f"Constant({self.level})"


class Step(Waveform):
    """A single linear ramp from ``v0`` to ``v1`` starting at ``t_step``.

    Parameters
    ----------
    v0, v1:
        Levels before and after the edge.
    t_step:
        Edge start time.
    t_rise:
        Edge duration; must be positive so the derivative stays bounded.
    """

    def __init__(self, v0: float, v1: float, t_step: float, t_rise: float = 1e-12):
        if t_rise <= 0:
            raise AnalysisError("Step t_rise must be positive")
        self.v0 = float(v0)
        self.v1 = float(v1)
        self.t_step = float(t_step)
        self.t_rise = float(t_rise)

    def value(self, t: float) -> float:
        if t <= self.t_step:
            return self.v0
        if t >= self.t_step + self.t_rise:
            return self.v1
        frac = (t - self.t_step) / self.t_rise
        return self.v0 + (self.v1 - self.v0) * frac

    def breakpoints(self, t0: float, t1: float) -> List[float]:
        corners = (self.t_step, self.t_step + self.t_rise)
        return [t for t in corners if t0 < t <= t1]

    def __repr__(self) -> str:
        return f"Step({self.v0}->{self.v1} @ {self.t_step})"


class Pulse(Waveform):
    """SPICE-style periodic trapezoidal pulse.

    Matches the semantics of ``PULSE(v1 v2 td tr tf pw per)``: the output
    sits at ``v1`` until ``delay``, then repeats rise / high / fall / low
    with period ``period``.  A ``period`` of ``None`` gives a single pulse.
    """

    def __init__(
        self,
        v1: float,
        v2: float,
        delay: float = 0.0,
        rise: float = 1e-12,
        fall: float = 1e-12,
        width: float = 1e-9,
        period: "float | None" = None,
    ):
        if rise <= 0 or fall <= 0:
            raise AnalysisError("Pulse rise/fall must be positive")
        if width < 0:
            raise AnalysisError("Pulse width must be non-negative")
        cycle = rise + width + fall
        if period is not None and period < cycle:
            raise AnalysisError(
                f"Pulse period {period} shorter than rise+width+fall {cycle}"
            )
        self.v1 = float(v1)
        self.v2 = float(v2)
        self.delay = float(delay)
        self.rise = float(rise)
        self.fall = float(fall)
        self.width = float(width)
        self.period = None if period is None else float(period)

    def _local_time(self, t: float) -> float:
        tl = t - self.delay
        if tl < 0:
            return -1.0
        if self.period is not None:
            tl = tl % self.period
        return tl

    def value(self, t: float) -> float:
        tl = self._local_time(t)
        if tl < 0:
            return self.v1
        if tl < self.rise:
            return self.v1 + (self.v2 - self.v1) * tl / self.rise
        if tl < self.rise + self.width:
            return self.v2
        if tl < self.rise + self.width + self.fall:
            frac = (tl - self.rise - self.width) / self.fall
            return self.v2 + (self.v1 - self.v2) * frac
        return self.v1

    def breakpoints(self, t0: float, t1: float) -> List[float]:
        corners_local = (
            0.0,
            self.rise,
            self.rise + self.width,
            self.rise + self.width + self.fall,
        )
        points: List[float] = []
        if self.period is None:
            for c in corners_local:
                t = self.delay + c
                if t0 < t <= t1:
                    points.append(t)
            return points
        # Periodic: enumerate the periods overlapping the window.
        first_cycle = max(0, int((t0 - self.delay) / self.period) - 1)
        cycle = first_cycle
        while True:
            base = self.delay + cycle * self.period
            if base > t1:
                break
            for c in corners_local:
                t = base + c
                if t0 < t <= t1:
                    points.append(t)
            cycle += 1
        return points

    def __repr__(self) -> str:
        return (
            f"Pulse({self.v1}->{self.v2}, delay={self.delay}, "
            f"width={self.width}, period={self.period})"
        )


class PiecewiseLinear(Waveform):
    """SPICE PWL waveform: linear interpolation through ``(t, v)`` points.

    Before the first point the value is the first level; after the last
    point it is the last level.  Times must be strictly increasing.
    """

    def __init__(self, points: Iterable[Tuple[float, float]]):
        pts = [(float(t), float(v)) for t, v in points]
        if not pts:
            raise AnalysisError("PiecewiseLinear needs at least one point")
        times = [t for t, _ in pts]
        for a, b in zip(times, times[1:]):
            if b <= a:
                raise AnalysisError("PiecewiseLinear times must strictly increase")
        self.times = times
        self.levels = [v for _, v in pts]

    def value(self, t: float) -> float:
        times = self.times
        if t <= times[0]:
            return self.levels[0]
        if t >= times[-1]:
            return self.levels[-1]
        idx = bisect.bisect_right(times, t) - 1
        t0, t1 = times[idx], times[idx + 1]
        v0, v1 = self.levels[idx], self.levels[idx + 1]
        return v0 + (v1 - v0) * (t - t0) / (t1 - t0)

    def breakpoints(self, t0: float, t1: float) -> List[float]:
        lo = bisect.bisect_right(self.times, t0)
        hi = bisect.bisect_right(self.times, t1)
        return list(self.times[lo:hi])

    def __repr__(self) -> str:
        return f"PiecewiseLinear({len(self.times)} points)"


class Sine(Waveform):
    """Sinusoidal drive: ``offset + amplitude * sin(2 pi f (t - delay))``.

    Zero before ``delay`` (plus the offset), like SPICE ``SIN``.  Smooth
    everywhere, so it reports no breakpoints — the adaptive integrator's
    truncation-error control alone must resolve it, which the test suite
    uses to validate the LTE machinery against the analytic RC response.
    """

    def __init__(self, offset: float, amplitude: float, frequency: float,
                 delay: float = 0.0):
        if frequency <= 0:
            raise AnalysisError("Sine frequency must be positive")
        self.offset = float(offset)
        self.amplitude = float(amplitude)
        self.frequency = float(frequency)
        self.delay = float(delay)

    def value(self, t: float) -> float:
        if t < self.delay:
            return self.offset
        import math

        phase = 2.0 * math.pi * self.frequency * (t - self.delay)
        return self.offset + self.amplitude * math.sin(phase)

    def breakpoints(self, t0: float, t1: float) -> List[float]:
        return [self.delay] if t0 < self.delay <= t1 else []

    def __repr__(self) -> str:
        return (
            f"Sine(offset={self.offset}, amp={self.amplitude}, "
            f"f={self.frequency:g})"
        )


class Exponential(Waveform):
    """Single exponential transition: ``v0 -> v1`` with time constant tau.

    ``v(t) = v1 + (v0 - v1) * exp(-(t - delay)/tau)`` for ``t >= delay``.
    """

    def __init__(self, v0: float, v1: float, tau: float,
                 delay: float = 0.0):
        if tau <= 0:
            raise AnalysisError("Exponential tau must be positive")
        self.v0 = float(v0)
        self.v1 = float(v1)
        self.tau = float(tau)
        self.delay = float(delay)

    def value(self, t: float) -> float:
        if t <= self.delay:
            return self.v0
        import math

        return self.v1 + (self.v0 - self.v1) * math.exp(
            -(t - self.delay) / self.tau
        )

    def breakpoints(self, t0: float, t1: float) -> List[float]:
        return [self.delay] if t0 < self.delay <= t1 else []

    def __repr__(self) -> str:
        return f"Exponential({self.v0}->{self.v1}, tau={self.tau:g})"


class Shifted(Waveform):
    """A waveform delayed in time (holds its t=0 value before the shift)."""

    def __init__(self, inner: Waveform, dt: float):
        self.inner = inner
        self.dt = float(dt)

    def value(self, t: float) -> float:
        return self.inner.value(max(t - self.dt, 0.0))

    def breakpoints(self, t0: float, t1: float) -> List[float]:
        return [t + self.dt for t in self.inner.breakpoints(t0 - self.dt, t1 - self.dt)]

    def __repr__(self) -> str:
        return f"Shifted({self.inner!r}, dt={self.dt})"


class Sequence(Waveform):
    """Concatenation of waveform segments, each with a duration.

    Segment ``i`` occupies ``[start_i, start_i + duration_i)`` and is
    evaluated with its *local* time (so a :class:`Pulse` restarts in each
    segment).  After the last segment the final segment's end value holds.

    This is the building block used by :mod:`repro.pg.scheduler` to turn
    mode timelines into bias waveforms.
    """

    def __init__(self, segments: SequenceType[Tuple[Waveform, float]]):
        if not segments:
            raise AnalysisError("Sequence needs at least one segment")
        self.segments: List[Tuple[Waveform, float]] = []
        self.starts: List[float] = []
        t = 0.0
        for wave, duration in segments:
            duration = float(duration)
            if duration < 0:
                raise AnalysisError("Sequence segment duration must be >= 0")
            self.segments.append((wave, duration))
            self.starts.append(t)
            t += duration
        self.total_duration = t

    def _segment_index(self, t: float) -> int:
        idx = bisect.bisect_right(self.starts, t) - 1
        return max(idx, 0)

    def value(self, t: float) -> float:
        if t >= self.total_duration:
            wave, duration = self.segments[-1]
            return wave.value(duration)
        idx = self._segment_index(t)
        wave, _ = self.segments[idx]
        return wave.value(t - self.starts[idx])

    def breakpoints(self, t0: float, t1: float) -> List[float]:
        points: List[float] = []
        for (wave, duration), start in zip(self.segments, self.starts):
            if start > t1:
                break
            if t0 < start <= t1:
                points.append(start)
            end = start + duration
            if end < t0 or start > t1:
                continue
            inner = wave.breakpoints(max(t0 - start, 0.0), min(t1 - start, duration))
            points.extend(start + t for t in inner)
        return sorted(set(points))

    def __repr__(self) -> str:
        return f"Sequence({len(self.segments)} segments, T={self.total_duration:g}s)"
