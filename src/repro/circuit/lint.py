"""Netlist linting: catch wiring mistakes before they become Newton
convergence failures.

The solver's gmin floor will happily "solve" a floating node to 0 V and
a typo'd bitline to nonsense; :func:`lint` finds the classic mistakes
first:

* ``floating-node`` — a node touched by only one element terminal;
* ``no-dc-path`` — a node whose only connections are capacitive, so its
  DC level is set by gmin alone;
* ``shorted-element`` — both terminals of a two-terminal element on the
  same node;
* ``voltage-loop`` — a cycle made purely of voltage sources, which
  over-determines the branch currents;
* ``parallel-sources`` — two voltage sources across the same node pair.

Each finding carries a severity: ``error`` findings make the MNA system
singular or meaningless; ``warning`` findings usually indicate a typo
but can be intentional (e.g. dynamic nodes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

import networkx as nx

from .netlist import Circuit
from .passives import Capacitor
from .sources import VoltageSource


@dataclass(frozen=True)
class LintFinding:
    """One lint diagnostic."""

    code: str
    severity: str          # "error" or "warning"
    message: str
    subject: str           # node or element name

    def __str__(self) -> str:
        return f"[{self.severity}] {self.code}: {self.message}"


def lint(circuit: Circuit) -> List[LintFinding]:
    """Run every check; returns findings sorted errors-first."""
    circuit.compile()
    findings: List[LintFinding] = []
    findings.extend(_floating_nodes(circuit))
    findings.extend(_no_dc_path(circuit))
    findings.extend(_shorted_elements(circuit))
    findings.extend(_voltage_source_graph(circuit))
    findings.sort(key=lambda f: (f.severity != "error", f.code, f.subject))
    return findings


def has_errors(findings: List[LintFinding]) -> bool:
    """True if any finding is error-severity."""
    return any(f.severity == "error" for f in findings)


def _terminal_counts(circuit: Circuit) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for element in circuit.elements():
        for node in element.node_names:
            counts[node] = counts.get(node, 0) + 1
    return counts


def _floating_nodes(circuit: Circuit) -> List[LintFinding]:
    out = []
    counts = _terminal_counts(circuit)
    for node in circuit.node_names():
        if counts.get(node, 0) == 1:
            touching = circuit.nodes_touching(node)
            culprit = touching[0].name if touching else "?"
            out.append(LintFinding(
                code="floating-node",
                severity="warning",
                message=(
                    f"node {node!r} touches only one terminal "
                    f"(element {culprit}); likely a typo"
                ),
                subject=node,
            ))
    return out


def _no_dc_path(circuit: Circuit) -> List[LintFinding]:
    """Nodes whose every connection is a capacitor: DC set by gmin."""
    out = []
    for node in circuit.node_names():
        touching = circuit.nodes_touching(node)
        if touching and all(isinstance(e, Capacitor) for e in touching):
            out.append(LintFinding(
                code="no-dc-path",
                severity="warning",
                message=(
                    f"node {node!r} has only capacitive connections; "
                    "its DC level is defined by gmin alone"
                ),
                subject=node,
            ))
    return out


def _shorted_elements(circuit: Circuit) -> List[LintFinding]:
    out = []
    for element in circuit.elements():
        names = element.node_names
        if len(names) >= 2 and len(set(names[:2])) == 1:
            out.append(LintFinding(
                code="shorted-element",
                severity="warning",
                message=(
                    f"element {element.name} has both main terminals on "
                    f"node {names[0]!r}"
                ),
                subject=element.name,
            ))
    return out


def _voltage_source_graph(circuit: Circuit) -> List[LintFinding]:
    """Loops and parallels in the pure voltage-source subgraph."""
    out = []
    graph = nx.MultiGraph()
    pairs: Dict[Tuple[str, str], List[str]] = {}
    for element in circuit.elements():
        if not isinstance(element, VoltageSource):
            continue
        p, n = element.node_names
        graph.add_edge(p, n, name=element.name)
        key = tuple(sorted((p, n)))
        pairs.setdefault(key, []).append(element.name)

    for (p, n), names in pairs.items():
        if len(names) > 1:
            out.append(LintFinding(
                code="parallel-sources",
                severity="error",
                message=(
                    f"voltage sources {', '.join(sorted(names))} are in "
                    f"parallel between {p!r} and {n!r}"
                ),
                subject=sorted(names)[0],
            ))

    # Cycles using distinct sources (a multigraph cycle of length >= 2
    # that is not just the same parallel pair counted again).
    try:
        cycles = nx.cycle_basis(nx.Graph(graph))
    except nx.NetworkXError:   # pragma: no cover
        cycles = []
    for cycle in cycles:
        if len(cycle) >= 3:
            out.append(LintFinding(
                code="voltage-loop",
                severity="error",
                message=(
                    "voltage sources form a loop through nodes "
                    + " -> ".join(repr(n) for n in cycle)
                ),
                subject=cycle[0],
            ))
    return out
