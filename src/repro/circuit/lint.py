"""Netlist linting (compatibility shim over :mod:`repro.verify`).

The checks that used to live here — ``floating-node``, ``no-dc-path``,
``shorted-element``, ``voltage-loop``, ``parallel-sources`` — are now
rules RV001..RV005 of the :mod:`repro.verify` framework, which adds
power-gating-aware and MNA-solvability analyses on top.  This module
keeps the original ``lint()`` / :class:`LintFinding` API for existing
callers and tests: it runs exactly the five legacy rules and maps their
diagnostics back to the legacy code strings.

New code should call :func:`repro.verify.verify_circuit` (all rules,
rule codes, configurable policy) instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .netlist import Circuit

#: Rule-code -> legacy code-string mapping (and the rule subset to run).
LEGACY_CODES = {
    "RV001": "floating-node",
    "RV002": "no-dc-path",
    "RV003": "shorted-element",
    "RV004": "voltage-loop",
    "RV005": "parallel-sources",
}


@dataclass(frozen=True)
class LintFinding:
    """One lint diagnostic (legacy shape)."""

    code: str
    severity: str          # "error" or "warning"
    message: str
    subject: str           # node or element name

    def __str__(self) -> str:
        return f"[{self.severity}] {self.code}: {self.message}"


def lint(circuit: Circuit) -> List[LintFinding]:
    """Run the five legacy checks; returns findings sorted errors-first.

    Raises :class:`~repro.errors.NetlistError` if the circuit does not
    compile, exactly like the original linter did.
    """
    circuit.compile()
    # Imported lazily: repro.circuit.__init__ imports this module, and
    # repro.verify imports repro.circuit submodules.
    from ..verify import VerifyConfig, run_rules
    config = VerifyConfig(only=frozenset(LEGACY_CODES))
    report = run_rules(circuit, "circuit", config=config)
    findings = [
        LintFinding(
            code=LEGACY_CODES[diag.code],
            severity=diag.severity.value,
            message=diag.message,
            subject=diag.subject,
        )
        for diag in report
    ]
    findings.sort(key=lambda f: (f.severity != "error", f.code, f.subject))
    return findings


def has_errors(findings: List[LintFinding]) -> bool:
    """True if any finding is error-severity."""
    return any(f.severity == "error" for f in findings)
