"""Voltage-controlled switch with a smooth on/off transition.

Used by testbenches that need idealised gating (e.g. isolating a cell
terminal during characterisation) without the convergence hazards of a
discontinuous model.  The conductance interpolates log-linearly between
``g_off`` and ``g_on`` over the control-voltage window ``[v_off, v_on]``,
which keeps the Jacobian continuous for Newton-Raphson.
"""

from __future__ import annotations

import math

from ..errors import NetlistError
from .netlist import Element, conductance_pattern


class VoltageControlledSwitch(Element):
    """Switch between ``p`` and ``n`` controlled by V(cp) - V(cn).

    Parameters
    ----------
    r_on, r_off:
        On and off resistances (ohms).
    v_on, v_off:
        Control voltages at which the switch is fully on / fully off.
        ``v_on`` may be smaller than ``v_off`` for an inverted switch.
    """

    is_linear = False

    def __init__(self, name: str, p: str, n: str, cp: str, cn: str,
                 r_on: float = 1.0, r_off: float = 1e12,
                 v_on: float = 1.0, v_off: float = 0.0):
        super().__init__(name, (p, n, cp, cn))
        if r_on <= 0 or r_off <= 0:
            raise NetlistError(f"{name}: switch resistances must be positive")
        if v_on == v_off:
            raise NetlistError(f"{name}: v_on and v_off must differ")
        self.g_on = 1.0 / r_on
        self.g_off = 1.0 / r_off
        self.v_on = float(v_on)
        self.v_off = float(v_off)

    def conductance_at(self, vc: float) -> float:
        """Smooth conductance as a function of the control voltage."""
        # Normalised position in the transition window, clamped to [0, 1].
        frac = (vc - self.v_off) / (self.v_on - self.v_off)
        if frac <= 0.0:
            return self.g_off
        if frac >= 1.0:
            return self.g_on
        # Smoothstep in log-conductance: C1-continuous at both ends.
        smooth = frac * frac * (3.0 - 2.0 * frac)
        log_g = math.log(self.g_off) + smooth * (math.log(self.g_on) - math.log(self.g_off))
        return math.exp(log_g)

    def _dconductance(self, vc: float) -> float:
        frac = (vc - self.v_off) / (self.v_on - self.v_off)
        if frac <= 0.0 or frac >= 1.0:
            return 0.0
        smooth_d = 6.0 * frac * (1.0 - frac) / (self.v_on - self.v_off)
        g = self.conductance_at(vc)
        return g * smooth_d * (math.log(self.g_on) - math.log(self.g_off))

    def stamp(self, stamper, ctx) -> None:
        p, n, cp, cn = self.node_index
        vc = ctx.v(cp) - ctx.v(cn)
        v_pn = ctx.v(p) - ctx.v(n)
        g = self.conductance_at(vc)
        dg = self._dconductance(vc)
        # I = g(vc) * v_pn.  Linearise in both v_pn and vc.
        stamper.conductance(p, n, g)
        # Cross terms dI/dvc stamped as a VCCS.
        gm = dg * v_pn
        stamper.vccs(p, n, cp, cn, gm)
        # Residual correction: I0 - g*v_pn - gm*vc
        i0 = g * v_pn
        correction = i0 - g * v_pn - gm * vc
        stamper.current(p, n, correction)

    def stamp_pattern(self, mode: str = "dc"):
        """Channel conductance block plus the control-voltage VCCS."""
        p, n, cp, cn = self.node_index
        pattern = conductance_pattern(p, n)
        pattern.extend((row, col) for row in (p, n) for col in (cp, cn))
        return pattern

    def current(self, solution) -> float:
        """Current p -> n at a solved point."""
        p, n, cp, cn = self.node_index
        vc = solution.v(cp) - solution.v(cn)
        return self.conductance_at(vc) * (solution.v(p) - solution.v(n))
