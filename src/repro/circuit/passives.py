"""Linear passive elements: resistors and capacitors.

Capacitors carry the integration history (previous voltage and current)
required by the companion models of the transient integrator; see
:mod:`repro.analysis.transient` for the accept/commit protocol.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..errors import NetlistError
from .netlist import Element, conductance_pattern


class Resistor(Element):
    """Linear resistor between ``p`` and ``n``.

    Parameters
    ----------
    name:
        Unique element name.
    p, n:
        Node names.
    resistance:
        Ohms; must be positive.
    """

    def __init__(self, name: str, p: str, n: str, resistance: float):
        super().__init__(name, (p, n))
        resistance = float(resistance)
        if resistance <= 0:
            raise NetlistError(f"{name}: resistance must be positive")
        self.resistance = resistance
        self.conductance = 1.0 / resistance

    def stamp(self, stamper, ctx) -> None:
        p, n = self.node_index
        stamper.conductance(p, n, self.conductance)

    def stamp_pattern(self, mode: str = "dc"):
        """Conductance block across p-n in every mode."""
        p, n = self.node_index
        return conductance_pattern(p, n)

    def current(self, solution) -> float:
        """Current flowing p -> n for a solved operating point/timepoint."""
        p, n = self.node_index
        return (solution.v(p) - solution.v(n)) * self.conductance

    def power(self, solution) -> float:
        """Dissipated power (always >= 0) at a solved point."""
        p, n = self.node_index
        dv = solution.v(p) - solution.v(n)
        return dv * dv * self.conductance


class Capacitor(Element):
    """Linear capacitor between ``p`` and ``n``.

    In DC analyses the capacitor is an open circuit.  In transient
    analyses it stamps the companion model selected by the integrator
    (backward Euler or trapezoidal), using the voltage/current history it
    stores internally.  An optional initial condition ``ic`` (volts across
    p-n) is applied by :func:`repro.analysis.dc.operating_point` when
    requested.
    """

    def __init__(self, name: str, p: str, n: str, capacitance: float,
                 ic: Optional[float] = None):
        super().__init__(name, (p, n))
        capacitance = float(capacitance)
        if capacitance <= 0:
            raise NetlistError(f"{name}: capacitance must be positive")
        self.capacitance = capacitance
        self.ic = ic
        self._v_prev = 0.0
        self._i_prev = 0.0

    # -- companion model ------------------------------------------------
    def _companion(self, ctx) -> Tuple[float, float]:
        """(geq, ieq): conductance and p->n current-source of the model."""
        dt = ctx.dt
        if ctx.method == "be":
            geq = self.capacitance / dt
            ieq = -geq * self._v_prev
        else:  # trapezoidal
            geq = 2.0 * self.capacitance / dt
            ieq = -(geq * self._v_prev + self._i_prev)
        return geq, ieq

    def stamp(self, stamper, ctx) -> None:
        if ctx.mode == "dc":
            return  # open circuit
        p, n = self.node_index
        geq, ieq = self._companion(ctx)
        stamper.conductance(p, n, geq)
        stamper.current(p, n, ieq)

    def stamp_pattern(self, mode: str = "dc"):
        """Open at DC (empty pattern); companion conductance otherwise."""
        if mode == "dc":
            return []
        p, n = self.node_index
        return conductance_pattern(p, n)

    def init_state(self, ctx) -> None:
        p, n = self.node_index
        self._v_prev = ctx.v(p) - ctx.v(n)
        self._i_prev = 0.0

    def commit(self, ctx):
        p, n = self.node_index
        v_new = ctx.v(p) - ctx.v(n)
        geq, ieq = self._companion(ctx)
        self._i_prev = geq * v_new + ieq
        self._v_prev = v_new
        return None

    def snapshot_state(self):
        return (self._v_prev, self._i_prev)

    def restore_state(self, snap) -> None:
        self._v_prev, self._i_prev = snap

    @property
    def voltage_history(self) -> float:
        """Voltage across the capacitor at the last committed timepoint."""
        return self._v_prev
