"""Independent sources.

:class:`VoltageSource` is the workhorse: every bias rail in the NV-SRAM
testbenches (VDD, word lines, bit lines, SR/CTRL lines, power-switch gate)
is a voltage source driven by a :class:`~repro.circuit.waveforms.Waveform`.
Its MNA branch current is what the energy bookkeeping integrates.
"""

from __future__ import annotations

from typing import List, Optional

from .netlist import Element
from .waveforms import Constant, Waveform


class VoltageSource(Element):
    """Ideal voltage source from ``p`` (+) to ``n`` (-).

    Parameters
    ----------
    name, p, n:
        Element name and node names.
    dc:
        DC level used when no waveform is given (and as the t=0 value).
    waveform:
        Optional time-domain drive; overrides ``dc`` during transients and
        provides the t=0 value for the pre-transient operating point.
    ac:
        Small-signal stimulus magnitude used by
        :func:`repro.analysis.ac.ac_analysis` (0 = quiet source).

    Sign convention (SPICE): the branch current is the current flowing from
    the + terminal *through the source* to the - terminal, so a supply that
    is delivering power reports a negative branch current.  Use
    :meth:`delivered_power` to avoid sign mistakes.
    """

    branch_count = 1

    def __init__(self, name: str, p: str, n: str, dc: float = 0.0,
                 waveform: Optional[Waveform] = None, ac: float = 0.0):
        super().__init__(name, (p, n))
        self.dc = float(dc)
        self.waveform = waveform
        self.ac = float(ac)

    def level(self, t: float) -> float:
        """Source voltage at time ``t``."""
        if self.waveform is not None:
            return self.waveform.value(t)
        return self.dc

    def set_level(self, value: float) -> None:
        """Replace the drive with a DC level (used by sweep analyses)."""
        self.dc = float(value)
        self.waveform = None

    def set_waveform(self, waveform: Waveform) -> None:
        self.waveform = waveform

    def stamp(self, stamper, ctx) -> None:
        p, n = self.node_index
        (k,) = self.branch_index
        stamper.matrix(p, k, 1.0)
        stamper.matrix(n, k, -1.0)
        stamper.matrix(k, p, 1.0)
        stamper.matrix(k, n, -1.0)
        stamper.rhs(k, ctx.source_scale * self.level(ctx.time))

    def stamp_pattern(self, mode: str = "dc"):
        """Branch row/column couplings of the ideal source."""
        p, n = self.node_index
        (k,) = self.branch_index
        return [(p, k), (n, k), (k, p), (k, n)]

    def breakpoints(self, t0: float, t1: float) -> List[float]:
        if self.waveform is None:
            return []
        return self.waveform.breakpoints(t0, t1)

    def branch_current(self, solution) -> float:
        """Current p -> n through the source (SPICE sign)."""
        (k,) = self.branch_index
        return solution.x[k]

    def delivered_power(self, solution) -> float:
        """Instantaneous power the source delivers to the circuit (watts)."""
        p, n = self.node_index
        v = solution.v(p) - solution.v(n)
        return -v * self.branch_current(solution)


class CurrentSource(Element):
    """Ideal current source driving ``value`` amps from ``p`` to ``n``.

    The current flows out of ``p``, through the source, into ``n`` — i.e.
    it *extracts* current from node ``p`` and injects it into node ``n``,
    matching the SPICE ``I`` element.
    """

    def __init__(self, name: str, p: str, n: str, dc: float = 0.0,
                 waveform: Optional[Waveform] = None):
        super().__init__(name, (p, n))
        self.dc = float(dc)
        self.waveform = waveform

    def level(self, t: float) -> float:
        if self.waveform is not None:
            return self.waveform.value(t)
        return self.dc

    def set_level(self, value: float) -> None:
        self.dc = float(value)
        self.waveform = None

    def stamp(self, stamper, ctx) -> None:
        p, n = self.node_index
        stamper.current(p, n, ctx.source_scale * self.level(ctx.time))

    def stamp_pattern(self, mode: str = "dc"):
        """RHS-only element: no matrix entries in any mode."""
        return []

    def breakpoints(self, t0: float, t1: float) -> List[float]:
        if self.waveform is None:
            return []
        return self.waveform.breakpoints(t0, t1)
