"""Circuit description layer: netlists, elements, sources and waveforms.

The central class is :class:`~repro.circuit.netlist.Circuit`, to which
elements (resistors, capacitors, sources, FinFETs, MTJs...) are added by
name.  Node names are free-form strings; ``"0"`` and ``"gnd"`` are the
ground node.  Analyses in :mod:`repro.analysis` consume a finished circuit.
"""

from .netlist import Circuit, GROUND
from .passives import Resistor, Capacitor
from .sources import VoltageSource, CurrentSource
from .switches import VoltageControlledSwitch
from .waveforms import (
    Waveform,
    Constant,
    Pulse,
    PiecewiseLinear,
    Step,
    Sequence,
    Sine,
    Exponential,
)
from .subcircuit import SubCircuit
from .lint import LintFinding, has_errors, lint

__all__ = [
    "Circuit",
    "GROUND",
    "Resistor",
    "Capacitor",
    "VoltageSource",
    "CurrentSource",
    "VoltageControlledSwitch",
    "Waveform",
    "Constant",
    "Pulse",
    "PiecewiseLinear",
    "Step",
    "Sequence",
    "Sine",
    "Exponential",
    "SubCircuit",
    "LintFinding",
    "lint",
    "has_errors",
]
