"""Netlist container and the element interface consumed by analyses.

A :class:`Circuit` is a flat bag of named :class:`Element` objects wired to
string-named nodes.  ``"0"``, ``"gnd"`` and ``"GND"`` all denote ground.
Hierarchy is provided by :mod:`repro.circuit.subcircuit`, which flattens
into this representation.

The element interface
---------------------

Analyses communicate with elements through three methods:

``stamp(stamper, ctx)``
    Add the element's (linearised) contribution to the MNA matrix and RHS
    for the solution iterate in ``ctx``.  Must not mutate element state:
    Newton calls it repeatedly for the same timepoint.

``commit(ctx)``
    Advance time-dependent internal state (capacitor history, MTJ
    magnetisation progress) after a timestep has been *accepted*.  May
    return an event string (e.g. ``"mtj P->AP"``) that the integrator
    records and reacts to by shortening the next step.

``init_state(ctx)``
    Initialise internal state from a converged DC operating point before a
    transient starts.

Elements that introduce extra MNA unknowns (voltage sources, switches with
branch currents) report them via ``branch_count`` and receive their branch
indices in ``assign_branches``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import NetlistError

#: Canonical ground node name.
GROUND = "0"


def conductance_pattern(p: int, n: int) -> List[Tuple[int, int]]:
    """Stamp positions of a two-terminal conductance between ``p``/``n``.

    The four positions a ``stamper.conductance(p, n, g)`` call touches;
    shared by every :meth:`Element.stamp_pattern` implementation that
    models a resistive branch.  Ground entries (index -1) are included —
    pattern consumers drop them.
    """
    return [(p, p), (p, n), (n, p), (n, n)]

_GROUND_ALIASES = {"0", "gnd", "GND", "Gnd", "vss", "VSS"}


def is_ground(node: str) -> bool:
    """True if ``node`` is one of the recognised ground spellings."""
    return node in _GROUND_ALIASES


class Element:
    """Base class for all circuit elements.

    Subclasses set ``self.name`` and ``self.node_names`` (a tuple of node
    name strings) in their constructor, typically via ``super().__init__``.
    """

    #: Number of extra MNA branch unknowns this element needs.
    branch_count = 0

    #: True if the element's stamp is independent of the solution iterate.
    is_linear = True

    def __init__(self, name: str, node_names: Sequence[str]):
        if not name:
            raise NetlistError("element name must be non-empty")
        self.name = name
        self.node_names: Tuple[str, ...] = tuple(node_names)
        #: Node indices into the MNA vector; -1 means ground.  Filled in by
        #: :meth:`Circuit.compile`.
        self.node_index: Tuple[int, ...] = ()
        #: Branch indices (absolute positions in the MNA vector).
        self.branch_index: Tuple[int, ...] = ()

    # -- wiring ---------------------------------------------------------
    def assign_nodes(self, indices: Sequence[int]) -> None:
        self.node_index = tuple(indices)

    def assign_branches(self, indices: Sequence[int]) -> None:
        self.branch_index = tuple(indices)

    # -- analysis interface ---------------------------------------------
    def stamp(self, stamper, ctx) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def stamp_pattern(self, mode: str = "dc") -> List[Tuple[int, int]]:
        """Matrix positions this element *may* write in ``mode``.

        Returns ``(row, col)`` index pairs into the MNA matrix (node and
        branch indices as assigned by :meth:`Circuit.compile`; -1 marks
        ground, which consumers ignore).  The structural-singularity
        check (:mod:`repro.verify.rules_mna`) builds its bipartite
        incidence from these patterns, so an entry means "can be
        nonzero", not "is nonzero at this operating point".

        The base implementation is deliberately conservative — a dense
        block over all of the element's unknowns — so custom elements
        are never reported as structurally singular by omission.
        """
        indices = tuple(self.node_index) + tuple(self.branch_index)
        return [(r, c) for r in indices for c in indices]

    def init_state(self, ctx) -> None:
        """Initialise internal history from the DC solution in ``ctx``."""

    def commit(self, ctx) -> Optional[str]:
        """Advance internal state after an accepted step; may return event."""
        return None

    def snapshot_state(self):
        """Return an opaque copy of mutable internal state (for rewind)."""
        return None

    def restore_state(self, snap) -> None:
        """Restore state captured by :meth:`snapshot_state`."""

    def __repr__(self) -> str:
        nodes = ",".join(self.node_names)
        return f"<{type(self).__name__} {self.name} ({nodes})>"


class Circuit:
    """A named collection of elements plus the node-index mapping.

    Elements are added with :meth:`add`; most element classes also provide
    an ``add_to`` convenience used by the cell builders.  After construction
    an analysis calls :meth:`compile`, which assigns node and branch indices
    and freezes the unknown-vector layout.
    """

    def __init__(self, title: str = ""):
        self.title = title
        self._elements: Dict[str, Element] = {}
        self._node_of: Dict[str, int] = {}
        self._nodes: List[str] = []
        self._num_branches = 0
        self._compiled = False

    # -- construction ----------------------------------------------------
    def add(self, element: Element) -> Element:
        """Add ``element``; names must be unique within the circuit."""
        if element.name in self._elements:
            raise NetlistError(f"duplicate element name: {element.name}")
        self._elements[element.name] = element
        self._compiled = False
        return element

    def remove(self, name: str) -> None:
        """Remove the element called ``name``."""
        if name not in self._elements:
            raise NetlistError(f"no such element: {name}")
        del self._elements[name]
        self._compiled = False

    def __contains__(self, name: str) -> bool:
        return name in self._elements

    def __getitem__(self, name: str) -> Element:
        try:
            return self._elements[name]
        except KeyError:
            raise NetlistError(f"no such element: {name}") from None

    def elements(self) -> Iterator[Element]:
        return iter(self._elements.values())

    def element_names(self) -> List[str]:
        return list(self._elements)

    def __len__(self) -> int:
        return len(self._elements)

    # -- compilation -----------------------------------------------------
    def compile(self) -> None:
        """Assign node and branch indices.  Idempotent."""
        if self._compiled:
            return
        self._node_of = {}
        self._nodes = []
        for element in self._elements.values():
            indices = []
            for node in element.node_names:
                indices.append(self._intern_node(node))
            element.assign_nodes(indices)
        num_nodes = len(self._nodes)
        branch_cursor = num_nodes
        for element in self._elements.values():
            count = element.branch_count
            element.assign_branches(range(branch_cursor, branch_cursor + count))
            branch_cursor += count
        self._num_branches = branch_cursor - num_nodes
        self._check_connectivity()
        self._compiled = True

    def _intern_node(self, node: str) -> int:
        if is_ground(node):
            return -1
        index = self._node_of.get(node)
        if index is None:
            index = len(self._nodes)
            self._node_of[node] = index
            self._nodes.append(node)
        return index

    def _check_connectivity(self) -> None:
        """Reject circuits with no ground reference."""
        if not self._elements:
            raise NetlistError("empty circuit")
        grounded = any(
            -1 in element.node_index for element in self._elements.values()
        )
        if self._nodes and not grounded:
            raise NetlistError("circuit has no connection to ground")

    # -- compiled views ----------------------------------------------------
    @property
    def num_nodes(self) -> int:
        self.compile()
        return len(self._nodes)

    @property
    def num_branches(self) -> int:
        self.compile()
        return self._num_branches

    @property
    def size(self) -> int:
        """Total number of MNA unknowns (node voltages + branch currents)."""
        return self.num_nodes + self.num_branches

    def node_names(self) -> List[str]:
        self.compile()
        return list(self._nodes)

    def index_of(self, node: str) -> int:
        """MNA index of ``node`` (-1 for ground)."""
        self.compile()
        if is_ground(node):
            return -1
        try:
            return self._node_of[node]
        except KeyError:
            raise NetlistError(f"unknown node: {node}") from None

    def nodes_touching(self, node: str) -> List[Element]:
        """All elements with a terminal on ``node``."""
        return [e for e in self._elements.values() if node in e.node_names]

    def summary(self) -> str:
        """A short human-readable netlist description."""
        self.compile()
        lines = [f"* {self.title or 'untitled circuit'}"]
        for element in self._elements.values():
            lines.append(f"{element.name} " + " ".join(element.node_names))
        lines.append(
            f"* {len(self._elements)} elements, {self.num_nodes} nodes, "
            f"{self.num_branches} branches"
        )
        return "\n".join(lines)
