"""Nonvolatile D flip-flop (NV-FF) with PS-FinFET/MTJ retention.

The paper's NVPG architecture covers both memory arrays (NV-SRAM) and
pipeline/register state, the latter held in NV-FFs built on the same
pseudo-spin-transistor principle (the authors' refs [5], [6]).  This
module provides that substrate: a positive-edge-triggered master-slave
D flip-flop whose *slave* latch carries two PS-FinFET + MTJ branches on
the SR/CTRL lines, exactly like the NV-SRAM storage nodes.

Topology (all devices one fin):

* local clock buffer producing complementary phases with finite slew;
* master latch: input transmission gate (transparent at CLK low), two
  inverters, feedback transmission gate (closed at CLK high);
* slave latch: transfer gate (transparent at CLK high), two inverters,
  feedback gate (closed at CLK low), storage nodes ``S`` (= QB sense),
  ``Q`` and ``S3`` (= Q complement, the second inverter's output);
* PS-FinFETs from ``Q`` / ``S3`` through MTJs to the shared CTRL line,
  gated by SR.  Both retention taps sit on *directly driven* inverter
  outputs — tapping the transmission-gate node ``S`` instead would leave
  the L-store current sinking through the feedback gate's series
  resistance and starve it below the MTJ critical current.

Store and restore use the same two-step store / VVDD-pull-up recall as
the NV-SRAM cell, executed with the clock parked low so the slave
feedback loop is engaged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..circuit import Capacitor, Circuit
from ..devices.finfet import FinFET, FinFETParams
from ..devices.mtj import MTJ, MTJParams, MTJState, MTJ_TABLE1
from ..devices.ptm20 import CJUNCTION_PER_FIN, NFET_20NM_HP, PFET_20NM_HP
from .logic import add_clock_buffer, add_inverter, add_transmission_gate


@dataclass
class NvFlipFlop:
    """Handle to an instantiated NV-FF (flat node/element names)."""

    name: str
    d: str
    clk: str
    q: str
    #: Slave-latch input node (behind the transfer gate; Q complement).
    s: str
    #: Second slave inverter output (Q complement, directly driven) —
    #: the node carrying the complementary retention branch.
    s3: str
    vvdd: str
    sr: str
    ctrl: str
    mtj_q_name: str
    mtj_s_name: str
    element_names: Dict[str, str] = field(default_factory=dict)

    def read_q(self, solution, vdd: float) -> bool:
        """Decode the slave-latch output (True = Q high)."""
        return solution.voltage(self.q) > solution.voltage(self.s)

    def initial_conditions(self, data: bool, vdd: float) -> Dict[str, float]:
        """IC map placing ``data`` in the slave latch (and the master,
        so a low clock does not immediately overwrite it)."""
        high, low = (vdd, 0.0) if data else (0.0, vdd)
        return {
            self.q: high,
            self.s: low,
            # Master consistent with the slave: m2 feeds the slave gate.
            f"{self.name}.m1": low,
            f"{self.name}.m2": high,
        }

    # -- MTJ access -------------------------------------------------------
    def mtj_q(self, circuit: Circuit) -> MTJ:
        return circuit[self.mtj_q_name]

    def mtj_s(self, circuit: Circuit) -> MTJ:
        """The MTJ on the complementary (S3) retention branch."""
        return circuit[self.mtj_s_name]

    def set_mtj_data(self, circuit: Circuit, data: bool) -> None:
        """Program the MTJ pair to encode ``data`` (Q-high = (AP, P))."""
        if data:
            self.mtj_q(circuit).set_state(MTJState.ANTIPARALLEL)
            self.mtj_s(circuit).set_state(MTJState.PARALLEL)
        else:
            self.mtj_q(circuit).set_state(MTJState.PARALLEL)
            self.mtj_s(circuit).set_state(MTJState.ANTIPARALLEL)

    def stored_data(self, circuit: Circuit) -> Optional[bool]:
        """Bit encoded in the MTJ pair (None if the pair is invalid)."""
        states = (self.mtj_q(circuit).state, self.mtj_s(circuit).state)
        if states == (MTJState.ANTIPARALLEL, MTJState.PARALLEL):
            return True
        if states == (MTJState.PARALLEL, MTJState.ANTIPARALLEL):
            return False
        return None


def add_nvff(
    circuit: Circuit,
    name: str,
    d: str,
    clk: str,
    vvdd: str,
    sr: str,
    ctrl: str,
    nfet: FinFETParams = NFET_20NM_HP,
    pfet: FinFETParams = PFET_20NM_HP,
    mtj_params: MTJParams = MTJ_TABLE1,
    mtj_q_state: MTJState = MTJState.PARALLEL,
    mtj_s_state: MTJState = MTJState.ANTIPARALLEL,
) -> NvFlipFlop:
    """Instantiate an NV-FF into ``circuit`` under prefix ``name``.

    Parameters
    ----------
    d, clk:
        Data and clock input nodes (testbench-owned).
    vvdd:
        Virtual supply rail (behind a power switch for PG studies).
    sr, ctrl:
        Nonvolatile-retention control lines shared with other cells.
    """
    clk_i, clkb_i = add_clock_buffer(circuit, f"{name}.ckbuf", clk, vvdd,
                                     nfet=nfet, pfet=pfet)
    m1 = f"{name}.m1"
    m2 = f"{name}.m2"
    m3 = f"{name}.m3"
    s_in = f"{name}.s"
    q = f"{name}.q"
    s3 = f"{name}.s3"

    # Master latch: transparent while CLK is low.
    add_transmission_gate(circuit, f"{name}.tgd", d, m1,
                          clk=clkb_i, clkb=clk_i, nfet=nfet, pfet=pfet)
    add_inverter(circuit, f"{name}.mi1", m1, m2, vvdd, nfet=nfet, pfet=pfet)
    add_inverter(circuit, f"{name}.mi2", m2, m3, vvdd, nfet=nfet, pfet=pfet)
    add_transmission_gate(circuit, f"{name}.tgmf", m3, m1,
                          clk=clk_i, clkb=clkb_i, nfet=nfet, pfet=pfet)

    # Slave latch: takes the master value at the rising edge.
    add_transmission_gate(circuit, f"{name}.tgs", m2, s_in,
                          clk=clk_i, clkb=clkb_i, nfet=nfet, pfet=pfet)
    add_inverter(circuit, f"{name}.si1", s_in, q, vvdd, nfet=nfet, pfet=pfet)
    add_inverter(circuit, f"{name}.si2", q, s3, vvdd, nfet=nfet, pfet=pfet)
    add_transmission_gate(circuit, f"{name}.tgsf", s3, s_in,
                          clk=clkb_i, clkb=clk_i, nfet=nfet, pfet=pfet)

    # Nonvolatile retention branches on the directly driven slave nodes.
    sq_mid = f"{name}.nq"
    ss_mid = f"{name}.ns"
    circuit.add(FinFET(f"{name}.psq", q, sr, sq_mid, nfet, 1))
    circuit.add(FinFET(f"{name}.pss", s3, sr, ss_mid, nfet, 1))
    mtj_q = circuit.add(MTJ(f"{name}.mtjq", ctrl, sq_mid, mtj_params,
                            mtj_q_state))
    mtj_s = circuit.add(MTJ(f"{name}.mtjs", ctrl, ss_mid, mtj_params,
                            mtj_s_state))
    circuit.add(Capacitor(f"{name}.cnq", sq_mid, "0", CJUNCTION_PER_FIN))
    circuit.add(Capacitor(f"{name}.cns", ss_mid, "0", CJUNCTION_PER_FIN))

    return NvFlipFlop(
        name=name,
        d=d,
        clk=clk,
        q=q,
        s=s_in,
        s3=s3,
        vvdd=vvdd,
        sr=sr,
        ctrl=ctrl,
        mtj_q_name=mtj_q.name,
        mtj_s_name=mtj_s.name,
    )
