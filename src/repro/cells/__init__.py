"""Bitcell and array builders.

* :func:`~repro.cells.sram6t.add_sram6t` — the volatile 6T FinFET SRAM
  cell (the paper's OSR baseline).
* :func:`~repro.cells.nvsram.add_nvsram` — the NV-SRAM cell of Fig. 2:
  6T core + two PS-FinFETs + two MTJs on the SR/CTRL lines.
* :func:`~repro.cells.powerswitch.add_power_switch` — the header p-channel
  FinFET power switch creating the virtual-VDD rail.
* :class:`~repro.cells.array.PowerDomain` — the N-wordline x M-bit power
  domain abstraction used by the energy composition of Figs. 7-9.
* :func:`~repro.cells.nvff.add_nvff` — the nonvolatile master-slave D
  flip-flop for register/pipeline state (the NV-FF of the authors'
  companion papers), built from :mod:`~repro.cells.logic` primitives.
"""

from .sram6t import Sram6TCell, add_sram6t
from .nvsram import NvSramCell, add_nvsram
from .powerswitch import PowerSwitch, add_power_switch
from .array import PowerDomain, build_cell_array
from .logic import add_clock_buffer, add_inverter, add_transmission_gate
from .nvff import NvFlipFlop, add_nvff
from .senseamp import SenseAmp, add_senseamp

__all__ = [
    "Sram6TCell",
    "add_sram6t",
    "NvSramCell",
    "add_nvsram",
    "PowerSwitch",
    "add_power_switch",
    "PowerDomain",
    "build_cell_array",
    "add_inverter",
    "add_transmission_gate",
    "add_clock_buffer",
    "NvFlipFlop",
    "add_nvff",
    "SenseAmp",
    "add_senseamp",
]
