"""Power-domain (cell-array) abstraction.

The paper evaluates a power domain of **N word lines x M bits**; the M
cells on one word line share power switches and are stored/shut down
together, and the N word lines of the domain are accessed — and stored —
**in series**.  Two things live here:

* :class:`PowerDomain` — the arithmetic of that organisation (domain size,
  access-serialisation factors, bitline loading), shared by the
  characterisation layer and the Fig. 7-9 energy composition.
* :func:`build_cell_array` — a real (small) SPICE-level array of NV-SRAM
  cells sharing bitlines/word lines, used by integration tests to check
  that the single-cell testbench results transfer to multi-cell netlists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import NetlistError
from ..circuit import Capacitor, Circuit, VoltageSource
from ..devices.finfet import FinFETParams
from ..devices.mtj import MTJParams, MTJ_TABLE1
from ..devices.ptm20 import NFET_20NM_HP, PFET_20NM_HP, CJUNCTION_PER_FIN
from .nvsram import NvSramCell, add_nvsram
from .powerswitch import add_power_switch

#: Bitline wiring + junction capacitance contributed per attached row (F).
CBL_PER_ROW = 0.06e-15
#: Fixed bitline overhead (sense amp / column mux junctions), farads.
CBL_FIXED = 0.5e-15


@dataclass(frozen=True)
class PowerDomain:
    """Geometry and timing bookkeeping for an N x M power domain.

    Attributes
    ----------
    n_wordlines:
        Number of word lines N (rows), each independently power-managed.
    word_bits:
        Word length M in bits (cells per word line).
    """

    n_wordlines: int = 512
    word_bits: int = 32

    def __post_init__(self):
        if self.n_wordlines < 1 or self.word_bits < 1:
            raise NetlistError("PowerDomain dimensions must be >= 1")

    @property
    def num_cells(self) -> int:
        return self.n_wordlines * self.word_bits

    @property
    def size_bytes(self) -> float:
        """Domain capacity in bytes."""
        return self.num_cells / 8.0

    @property
    def bitline_capacitance(self) -> float:
        """Bitline capacitance seen by one cell during read/write (F)."""
        return CBL_FIXED + self.n_wordlines * CBL_PER_ROW

    def access_pass_duration(self, t_cycle: float) -> float:
        """Time to read *and* write every word once (one n_RW pass).

        Words are accessed in series: N read cycles then N write cycles.
        """
        return 2.0 * self.n_wordlines * t_cycle

    def store_phase_duration(self, t_store: float) -> float:
        """Duration of the serialised whole-domain store phase."""
        return self.n_wordlines * t_store

    def idle_fraction_during_pass(self) -> float:
        """Fraction of a pass during which a given cell is *not* accessed."""
        return (self.n_wordlines - 1.0) / self.n_wordlines

    def __str__(self) -> str:
        return (
            f"PowerDomain(N={self.n_wordlines}, M={self.word_bits}, "
            f"{self.size_bytes:.0f} B)"
        )


def build_cell_array(
    rows: int,
    cols: int,
    vdd: float = 0.9,
    nfsw: int = 7,
    nfet: FinFETParams = NFET_20NM_HP,
    pfet: FinFETParams = PFET_20NM_HP,
    mtj_params: MTJParams = MTJ_TABLE1,
    lint: bool = True,
) -> "ArrayTestbench":
    """Build a small SPICE-level NV-SRAM array with shared lines.

    Each row has its own word line, virtual-VDD rail (fed by a power
    switch of ``nfsw * cols`` fins), SR and CTRL lines; each column has a
    BL/BLB pair shared by all rows.  All control lines are ideal voltage
    sources so integration tests can script arbitrary mode sequences.

    The finished netlist is statically analysed before being returned
    (``lint=True``, the default; see :func:`repro.verify.assert_clean`),
    so a wiring slip in the row/column plumbing fails here with rule
    codes rather than downstream in a transient.
    """
    if rows < 1 or cols < 1:
        raise NetlistError("array dimensions must be >= 1")
    circuit = Circuit(f"nvsram-array-{rows}x{cols}")
    circuit.add(VoltageSource("vdd", "vdd", "0", dc=vdd))

    cells: List[List[NvSramCell]] = []
    for r in range(rows):
        circuit.add(VoltageSource(f"vwl{r}", f"wl{r}", "0", dc=0.0))
        circuit.add(VoltageSource(f"vsr{r}", f"sr{r}", "0", dc=0.0))
        circuit.add(VoltageSource(f"vctrl{r}", f"ctrl{r}", "0", dc=0.0))
        circuit.add(VoltageSource(f"vpg{r}", f"pg{r}", "0", dc=0.0))
        add_power_switch(
            circuit, f"psw{r}", "vdd", f"vvdd{r}", f"pg{r}",
            nfsw=nfsw * cols, pfet=pfet,
        )
        row_cells = []
        for c in range(cols):
            if r == 0:
                circuit.add(VoltageSource(f"vbl{c}", f"bl{c}", "0", dc=vdd))
                circuit.add(VoltageSource(f"vblb{c}", f"blb{c}", "0", dc=vdd))
            cell = add_nvsram(
                circuit, f"cell{r}_{c}",
                vvdd=f"vvdd{r}", bl=f"bl{c}", blb=f"blb{c}",
                wl=f"wl{r}", sr=f"sr{r}", ctrl=f"ctrl{r}",
                nfet=nfet, pfet=pfet, mtj_params=mtj_params,
            )
            row_cells.append(cell)
        cells.append(row_cells)
    if lint:
        from ..verify import assert_clean
        assert_clean(circuit, target=f"array:{rows}x{cols}")
    return ArrayTestbench(circuit=circuit, cells=cells, vdd=vdd)


@dataclass
class ArrayTestbench:
    """A built array netlist plus its cell handles."""

    circuit: Circuit
    cells: List[List[NvSramCell]]
    vdd: float

    @property
    def rows(self) -> int:
        return len(self.cells)

    @property
    def cols(self) -> int:
        return len(self.cells[0]) if self.cells else 0

    def initial_conditions(self, data: List[List[bool]]):
        """IC map storing ``data[r][c]`` in every cell."""
        ic = {}
        for r, row in enumerate(self.cells):
            for c, cell in enumerate(row):
                ic.update(cell.initial_conditions(data[r][c], self.vdd))
        return ic
