"""Header p-channel FinFET power switch (virtual-VDD architecture).

The paper gates each word line's M cells through header p-FinFET power
switches (Fig. 2).  The switch gate is driven to:

* 0 V        — switch on: normal operation / store / restore,
* V_DD       — switch off: ordinary shutdown,
* V_PG = 1.0 V — **super cutoff** [20]: over-driving the gate above the
  rail reverse-biases the switch and crushes the shutdown leakage by
  orders of magnitude (the Fig. 6(c) effect).

``nfsw`` is the fin number *per cell* (Fig. 4 sweeps it; the paper settles
on 7 so the virtual rail retains 97 % of VDD during the store operation).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..circuit import Capacitor, Circuit
from ..devices.finfet import FinFET, FinFETParams
from ..devices.ptm20 import CJUNCTION_PER_FIN, PFET_20NM_HP

#: Super-cutoff gate voltage from the paper (volts).
V_SUPER_CUTOFF = 1.0


@dataclass
class PowerSwitch:
    """Handle to an instantiated power switch."""

    name: str
    vdd: str
    vvdd: str
    gate: str
    nfsw: int
    element_name: str


def add_power_switch(
    circuit: Circuit,
    name: str,
    vdd: str,
    vvdd: str,
    gate: str,
    nfsw: int = 7,
    pfet: FinFETParams = PFET_20NM_HP,
) -> PowerSwitch:
    """Instantiate a header power switch between ``vdd`` and ``vvdd``.

    Parameters
    ----------
    gate:
        Node carrying the power-gating control voltage (0 = on,
        VDD = off, :data:`V_SUPER_CUTOFF` = super cutoff).
    nfsw:
        Fin number of the switch (per cell).
    """
    element = circuit.add(FinFET(f"{name}.sw", vvdd, gate, vdd, pfet, nfsw))
    # Diffusion capacitance loading the virtual rail.
    circuit.add(
        Capacitor(f"{name}.cvvdd", vvdd, "0", max(nfsw, 1) * CJUNCTION_PER_FIN)
    )
    return PowerSwitch(
        name=name,
        vdd=vdd,
        vvdd=vvdd,
        gate=gate,
        nfsw=nfsw,
        element_name=element.name,
    )
