"""The NV-SRAM cell of the paper's Fig. 2.

The cell is a 6T core plus, on each storage node, a **pseudo-spin-FinFET
(PS-FinFET)**: an n-channel FinFET in series with an MTJ.  The PS-FinFET
gates share the **SR** line (V_SR = 0.65 V activates them; 0 V separates
the MTJs from the latch during normal operation) and the far ends of both
MTJs share the **CTRL** line.

MTJ orientation and the restore mechanism
-----------------------------------------
The MTJ *pinned* terminal faces the storage node and the *free* terminal
faces the CTRL line.  With the polarity convention of
:class:`repro.devices.mtj.MTJ` (positive free->pinned current switches
AP -> P):

* **H-store** (step 1, CTRL low): the high node drives current
  node -> MTJ -> CTRL, i.e. pinned -> free (negative), switching that MTJ
  **P -> AP** (high resistance).
* **L-store** (step 2, CTRL = V_CTRL = 0.5 V): current flows
  CTRL -> MTJ -> node into the low node, i.e. free -> pinned (positive),
  switching that MTJ **AP -> P** (low resistance).

On wake-up (SR on, CTRL at ground, virtual VDD ramping) the node behind
the low-resistance (P) MTJ is clamped hardest toward CTRL and resolves
low, while the AP-side node rises — regenerating the stored data exactly
as the paper describes ("restored ... owing to the difference in current
drivability" of the two PS-FinFET paths).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..circuit import Capacitor, Circuit
from ..devices.finfet import FinFET, FinFETParams
from ..devices.mtj import MTJ, MTJParams, MTJState, MTJ_TABLE1
from ..devices.ptm20 import (
    CJUNCTION_PER_FIN,
    NFET_20NM_HP,
    PFET_20NM_HP,
)
from .sram6t import Sram6TCell, add_sram6t


@dataclass
class NvSramCell:
    """Handle to an instantiated NV-SRAM cell."""

    core: Sram6TCell
    sr: str
    ctrl: str
    #: Internal nodes between each PS-FinFET and its MTJ.
    sq: str
    sqb: str
    mtj_q_name: str
    mtj_qb_name: str
    element_names: Dict[str, str] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.core.name

    @property
    def q(self) -> str:
        return self.core.q

    @property
    def qb(self) -> str:
        return self.core.qb

    def initial_conditions(self, data: bool, vdd: float) -> Dict[str, float]:
        return self.core.initial_conditions(data, vdd)

    def read_data(self, solution, vdd: float) -> bool:
        return self.core.read_data(solution, vdd)

    # -- MTJ access ---------------------------------------------------------
    def mtj_q(self, circuit: Circuit) -> MTJ:
        """The MTJ attached to storage node Q."""
        return circuit[self.mtj_q_name]

    def mtj_qb(self, circuit: Circuit) -> MTJ:
        """The MTJ attached to storage node QB."""
        return circuit[self.mtj_qb_name]

    def set_mtj_states(self, circuit: Circuit, q_state: MTJState,
                       qb_state: MTJState) -> None:
        """Force both MTJ magnetisation states (testbench initialisation)."""
        self.mtj_q(circuit).set_state(q_state)
        self.mtj_qb(circuit).set_state(qb_state)

    def stored_data(self, circuit: Circuit) -> Optional[bool]:
        """Bit encoded in the MTJ pair after a store (None if invalid).

        H-store drives the high node's MTJ antiparallel, so Q-high is
        encoded as (MTJ_Q, MTJ_QB) = (AP, P).
        """
        states = (self.mtj_q(circuit).state, self.mtj_qb(circuit).state)
        if states == (MTJState.ANTIPARALLEL, MTJState.PARALLEL):
            return True
        if states == (MTJState.PARALLEL, MTJState.ANTIPARALLEL):
            return False
        return None


def add_nvsram(
    circuit: Circuit,
    name: str,
    vvdd: str,
    bl: str,
    blb: str,
    wl: str,
    sr: str,
    ctrl: str,
    nfl: int = 1,
    nfd: int = 1,
    nfp: int = 1,
    nfps: int = 1,
    nfet: FinFETParams = NFET_20NM_HP,
    pfet: FinFETParams = PFET_20NM_HP,
    mtj_params: MTJParams = MTJ_TABLE1,
    mtj_q_state: MTJState = MTJState.PARALLEL,
    mtj_qb_state: MTJState = MTJState.ANTIPARALLEL,
) -> NvSramCell:
    """Instantiate the Fig. 2 NV-SRAM cell into ``circuit``.

    Parameters
    ----------
    sr, ctrl:
        Testbench nodes driving the PS-FinFET gates and the MTJ far ends.
    nfps:
        Fin number of each PS-FinFET (Table I: 1).
    mtj_q_state, mtj_qb_state:
        Initial magnetisation states.

    Returns an :class:`NvSramCell` handle.
    """
    core = add_sram6t(
        circuit, name, vvdd, bl, blb, wl,
        nfl=nfl, nfd=nfd, nfp=nfp, nfet=nfet, pfet=pfet,
    )
    sq = f"{name}.sq"
    sqb = f"{name}.sqb"

    elements = {
        "psq": circuit.add(FinFET(f"{name}.psq", core.q, sr, sq, nfet, nfps)),
        "psqb": circuit.add(FinFET(f"{name}.psqb", core.qb, sr, sqb, nfet, nfps)),
    }
    mtj_q = circuit.add(MTJ(f"{name}.mtjq", ctrl, sq, mtj_params, mtj_q_state))
    mtj_qb = circuit.add(MTJ(f"{name}.mtjqb", ctrl, sqb, mtj_params, mtj_qb_state))

    # Junction capacitance of the PS-FinFET / MTJ intermediate nodes.
    circuit.add(Capacitor(f"{name}.csq", sq, "0", nfps * CJUNCTION_PER_FIN))
    circuit.add(Capacitor(f"{name}.csqb", sqb, "0", nfps * CJUNCTION_PER_FIN))

    return NvSramCell(
        core=core,
        sr=sr,
        ctrl=ctrl,
        sq=sq,
        sqb=sqb,
        mtj_q_name=mtj_q.name,
        mtj_qb_name=mtj_qb.name,
        element_names={k: e.name for k, e in elements.items()},
    )
