"""Latch-type sense amplifier for the bitline read path.

The paper's testbench senses reads as a bitline differential; a real
array terminates the bitlines in a regenerative sense amplifier.  This
module provides the standard latch-type SA:

* a cross-coupled inverter pair (``out`` / ``outb``),
* a tail n-FinFET enabling regeneration (``sae`` high fires the latch),
* isolation pass-gates that sample the bitlines onto the latch nodes
  while ``iso`` is high and disconnect them during regeneration.

Operation: precharge/track with ``iso`` high and ``sae`` low (the latch
nodes follow BL/BLB), then open ``iso`` and raise ``sae`` — the latch
regenerates the sampled differential to full rails within ~100 ps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..circuit import Capacitor, Circuit
from ..devices.finfet import FinFET, FinFETParams
from ..devices.ptm20 import (
    CJUNCTION_PER_FIN,
    NFET_20NM_HP,
    PFET_20NM_HP,
)


@dataclass
class SenseAmp:
    """Handle to an instantiated sense amplifier."""

    name: str
    bl: str
    blb: str
    out: str
    outb: str
    sae: str
    iso: str
    vvdd: str

    def read_output(self, solution) -> bool:
        """Resolved data (True = BL side was high)."""
        return solution.voltage(self.out) > solution.voltage(self.outb)

    def differential(self, solution) -> float:
        """V(out) - V(outb)."""
        return solution.voltage(self.out) - solution.voltage(self.outb)


def add_senseamp(
    circuit: Circuit,
    name: str,
    bl: str,
    blb: str,
    sae: str,
    iso: str,
    vvdd: str,
    nfin_latch: int = 1,
    nfin_tail: int = 2,
    nfet: FinFETParams = NFET_20NM_HP,
    pfet: FinFETParams = PFET_20NM_HP,
) -> SenseAmp:
    """Instantiate a latch-type sense amplifier under prefix ``name``.

    Parameters
    ----------
    bl, blb:
        Bitlines to sample (testbench- or array-owned nodes).
    sae:
        Sense-amp enable (tail device gate).
    iso:
        Isolation control: high = sample bitlines, low = regenerate.
    nfin_tail:
        Tail device fins; wider = faster regeneration.
    """
    out = f"{name}.out"
    outb = f"{name}.outb"
    tail = f"{name}.tail"

    # Cross-coupled pair with a common tail.
    circuit.add(FinFET(f"{name}.pu1", out, outb, vvdd, pfet, nfin_latch))
    circuit.add(FinFET(f"{name}.pu2", outb, out, vvdd, pfet, nfin_latch))
    circuit.add(FinFET(f"{name}.pd1", out, outb, tail, nfet, nfin_latch))
    circuit.add(FinFET(f"{name}.pd2", outb, out, tail, nfet, nfin_latch))
    circuit.add(FinFET(f"{name}.tail", tail, sae, "0", nfet, nfin_tail))

    # Bitline isolation/sampling gates.
    circuit.add(FinFET(f"{name}.iso1", bl, iso, out, nfet, nfin_latch))
    circuit.add(FinFET(f"{name}.iso2", blb, iso, outb, nfet, nfin_latch))

    load = 3 * nfin_latch * CJUNCTION_PER_FIN
    circuit.add(Capacitor(f"{name}.cout", out, "0", load))
    circuit.add(Capacitor(f"{name}.coutb", outb, "0", load))
    circuit.add(Capacitor(f"{name}.ctail", tail, "0",
                          2 * nfin_latch * CJUNCTION_PER_FIN))

    return SenseAmp(
        name=name, bl=bl, blb=blb, out=out, outb=outb,
        sae=sae, iso=iso, vvdd=vvdd,
    )
