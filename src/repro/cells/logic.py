"""Static CMOS logic primitives used by the flip-flop builders.

Small builder functions in the style of :mod:`repro.cells.sram6t`: each
instantiates FinFETs (and explicit node capacitance) into a parent
circuit under a name prefix and returns the output node name, so larger
cells compose by string wiring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..circuit import Capacitor, Circuit
from ..devices.finfet import FinFET, FinFETParams
from ..devices.ptm20 import (
    CGATE_PER_FIN,
    CJUNCTION_PER_FIN,
    NFET_20NM_HP,
    PFET_20NM_HP,
)


def add_inverter(
    circuit: Circuit,
    name: str,
    input_node: str,
    output_node: str,
    vvdd: str,
    nfin_p: int = 1,
    nfin_n: int = 1,
    nfet: FinFETParams = NFET_20NM_HP,
    pfet: FinFETParams = PFET_20NM_HP,
) -> str:
    """A static CMOS inverter; returns the output node name."""
    circuit.add(FinFET(f"{name}.pu", output_node, input_node, vvdd,
                       pfet, nfin_p))
    circuit.add(FinFET(f"{name}.pd", output_node, input_node, "0",
                       nfet, nfin_n))
    load = (nfin_p + nfin_n) * CJUNCTION_PER_FIN
    circuit.add(Capacitor(f"{name}.cout", output_node, "0", load))
    return output_node


def add_transmission_gate(
    circuit: Circuit,
    name: str,
    a: str,
    b: str,
    clk: str,
    clkb: str,
    nfin: int = 1,
    nfet: FinFETParams = NFET_20NM_HP,
    pfet: FinFETParams = PFET_20NM_HP,
) -> None:
    """A CMOS transmission gate between ``a`` and ``b``.

    Conducts when ``clk`` is high (n-device) and ``clkb`` low (p-device).
    """
    circuit.add(FinFET(f"{name}.tn", a, clk, b, nfet, nfin))
    circuit.add(FinFET(f"{name}.tp", a, clkb, b, pfet, nfin))
    circuit.add(Capacitor(f"{name}.cab", b, "0",
                          2 * nfin * CJUNCTION_PER_FIN))


def add_clock_buffer(
    circuit: Circuit,
    name: str,
    clk_in: str,
    vvdd: str,
    nfet: FinFETParams = NFET_20NM_HP,
    pfet: FinFETParams = PFET_20NM_HP,
) -> Tuple[str, str]:
    """Local clock inverter pair; returns (clk_internal, clkb_internal).

    ``clkb`` is one inversion from the input, ``clk`` two, matching the
    usual flip-flop local clocking and giving both phases finite slew.
    """
    clkb = f"{name}.clkb"
    clk = f"{name}.clk"
    add_inverter(circuit, f"{name}.i1", clk_in, clkb, vvdd,
                 nfet=nfet, pfet=pfet)
    add_inverter(circuit, f"{name}.i2", clkb, clk, vvdd,
                 nfet=nfet, pfet=pfet)
    return clk, clkb
