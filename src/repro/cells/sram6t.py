"""The volatile 6T FinFET SRAM cell (the paper's OSR baseline).

Topology (fin numbers per Table I: N_FL = N_FD = N_FP = 1):

* two p-channel load FinFETs from the (virtual) supply to Q / QB,
* two n-channel driver FinFETs from Q / QB to ground,
* two n-channel access (pass-gate) FinFETs from BL / BLB to Q / QB,
  gated by the word line.

Storage-node and word-line loading capacitances are added explicitly so
the dynamic CV^2 energy is visible in the netlist rather than hidden in
the device model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..circuit import Capacitor, Circuit
from ..devices.finfet import FinFET, FinFETParams
from ..devices.ptm20 import (
    CGATE_PER_FIN,
    CJUNCTION_PER_FIN,
    NFET_20NM_HP,
    PFET_20NM_HP,
)


@dataclass
class Sram6TCell:
    """Handle to an instantiated 6T cell (flat node/element names)."""

    name: str
    q: str
    qb: str
    vvdd: str
    bl: str
    blb: str
    wl: str
    element_names: Dict[str, str] = field(default_factory=dict)

    def initial_conditions(self, data: bool, vdd: float) -> Dict[str, float]:
        """IC map writing ``data`` (True = Q high) into the latch."""
        high, low = (vdd, 0.0) if data else (0.0, vdd)
        return {self.q: high, self.qb: low}

    def read_data(self, solution, vdd: float) -> bool:
        """Decode the stored bit from a solved point (True = Q high)."""
        return solution.voltage(self.q) > solution.voltage(self.qb)


def _storage_node_cap(nfl: int, nfd: int, nfp: int) -> float:
    """Capacitance loading one storage node: junctions + opposing gates."""
    junction = (nfl + nfd + nfp) * CJUNCTION_PER_FIN
    gates = (nfl + nfd) * CGATE_PER_FIN  # cross-coupled inverter input
    return junction + gates


def add_sram6t(
    circuit: Circuit,
    name: str,
    vvdd: str,
    bl: str,
    blb: str,
    wl: str,
    nfl: int = 1,
    nfd: int = 1,
    nfp: int = 1,
    nfet: FinFETParams = NFET_20NM_HP,
    pfet: FinFETParams = PFET_20NM_HP,
    extra_node_cap: float = 0.02e-15,
) -> Sram6TCell:
    """Instantiate a 6T cell into ``circuit`` with prefix ``name``.

    Parameters
    ----------
    vvdd, bl, blb, wl:
        Names of the (testbench-owned) supply, bitline and word-line nodes.
    nfl, nfd, nfp:
        Fin numbers of the load, driver and pass-gate FinFETs.
    extra_node_cap:
        Wiring capacitance added to each storage node (farads).

    Returns a :class:`Sram6TCell` handle with the flat node names.
    """
    q = f"{name}.q"
    qb = f"{name}.qb"

    elements = {
        "pul": circuit.add(FinFET(f"{name}.pul", q, qb, vvdd, pfet, nfl)),
        "pur": circuit.add(FinFET(f"{name}.pur", qb, q, vvdd, pfet, nfl)),
        "pdl": circuit.add(FinFET(f"{name}.pdl", q, qb, "0", nfet, nfd)),
        "pdr": circuit.add(FinFET(f"{name}.pdr", qb, q, "0", nfet, nfd)),
        "pgl": circuit.add(FinFET(f"{name}.pgl", bl, wl, q, nfet, nfp)),
        "pgr": circuit.add(FinFET(f"{name}.pgr", blb, wl, qb, nfet, nfp)),
    }

    node_cap = _storage_node_cap(nfl, nfd, nfp) + extra_node_cap
    circuit.add(Capacitor(f"{name}.cq", q, "0", node_cap))
    circuit.add(Capacitor(f"{name}.cqb", qb, "0", node_cap))
    # Word-line gate load presented by this cell's two pass gates.
    circuit.add(Capacitor(f"{name}.cwl", wl, "0", 2 * nfp * CGATE_PER_FIN))

    return Sram6TCell(
        name=name,
        q=q,
        qb=qb,
        vvdd=vvdd,
        bl=bl,
        blb=blb,
        wl=wl,
        element_names={k: e.name for k, e in elements.items()},
    )
