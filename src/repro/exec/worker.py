"""Worker-process side of the campaign executor.

Each worker is one spawned process running :func:`worker_main`: resolve
the campaign's task function once, then loop pulling ``(task_id,
params, attempt)`` items from a dedicated dispatch queue and pushing
outcome messages onto the shared result queue.

Message protocol (worker -> parent), all tuples
``(kind, worker_id, task_id, payload)``:

``("ready", id, None, {})``
    Sent once after imports finish — the parent uses it to stop applying
    the warm-up grace to this worker's watchdog deadlines.
``("start", id, task_id, {"attempt": n})``
    The task function is about to run; the parent arms the watchdog.
``("done", id, task_id, {"result": ..., "elapsed": s})``
    Task returned a JSON-serialisable result.
``("skip", id, task_id, {"skip": {...}, "elapsed": s})``
    Task raised an :class:`~repro.errors.AnalysisError` after the
    recovery ladder was exhausted — deterministic, record-and-skip.
``("error", id, task_id, {"error", "traceback", "elapsed"})``
    Task raised a non-analysis exception: a poison task.  The parent
    quarantines it instead of retrying.
``("bye", id, None, {})``
    Clean shutdown after the ``None`` sentinel.

Workers ignore SIGINT: interactive Ctrl-C delivers SIGINT to the whole
foreground process group, and the *parent* owns the drain decision (it
terminates workers explicitly when the grace period expires).
"""

from __future__ import annotations

import json
import signal
import time
import traceback
from typing import Any, Dict


def worker_main(worker_id: int, fn_ref: str, task_queue,
                result_queue) -> None:
    """Entry point of one spawned campaign worker."""
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # non-main thread / exotic platform
        pass

    # Heavy imports happen here, inside the worker, so the parent's
    # dispatch loop never pays for them and the watchdog can tell
    # "warming up" from "hung" via the ready message below.
    from ..errors import AnalysisError
    from ..recovery.partial import SkipRecord
    from .campaign import resolve_task_fn

    fn = resolve_task_fn(fn_ref)
    result_queue.put(("ready", worker_id, None, {}))

    while True:
        item = task_queue.get()
        if item is None:
            result_queue.put(("bye", worker_id, None, {}))
            return
        task_id, params, attempt, label = item
        result_queue.put(("start", worker_id, task_id, {"attempt": attempt}))
        t0 = time.monotonic()
        try:
            result = fn(params)
            payload: Dict[str, Any] = {"result": _json_safe(result),
                                       "elapsed": time.monotonic() - t0}
            result_queue.put(("done", worker_id, task_id, payload))
        except AnalysisError as err:
            skip = SkipRecord.from_error(err, index=attempt, label=label,
                                         stage="campaign")
            result_queue.put(("skip", worker_id, task_id,
                              {"skip": skip.to_dict(),
                               "elapsed": time.monotonic() - t0}))
        except BaseException as err:  # noqa: B036  # lint: skip=RV405
            # Poison task: anything non-analysis (programming errors,
            # corrupted params).  The full traceback travels back to the
            # parent's forensics — nothing is swallowed, and the worker
            # survives to take the next task.
            result_queue.put(("error", worker_id, task_id,
                              {"error": repr(err),
                               "traceback": traceback.format_exc(),
                               "elapsed": time.monotonic() - t0}))
            if isinstance(err, (KeyboardInterrupt, SystemExit)):
                raise


def _json_safe(result: Any) -> Any:
    """Reject non-JSON results in the worker, where the traceback helps."""
    json.dumps(result)
    return result
