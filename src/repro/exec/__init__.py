"""repro.exec: fault-tolerant, checkpointed campaign execution.

A *campaign* is a named, content-hashed list of independent tasks (one
per sweep/characterisation/Monte-Carlo point) executed by
process-isolated workers with watchdog timeouts, classified failure
handling (skip / retry-with-backoff / quarantine), an append-only JSONL
journal for crash-safe ``--resume``, and graceful SIGINT/SIGTERM
draining.  See ``docs/ROBUSTNESS.md`` ("Campaigns") for the failure
taxonomy and journal format.
"""

from .campaign import (
    COMPLETED,
    QUARANTINED,
    SKIPPED,
    TERMINAL_STATES,
    Campaign,
    CampaignError,
    CampaignResult,
    TaskOutcome,
    TaskSpec,
    make_task,
    resolve_task_fn,
    stable_hash,
)
from .executor import (
    CampaignInterrupted,
    CampaignOptions,
    retry_delay,
    run_campaign,
)
from .journal import Journal, journal_status, render_status
from .registry import available_campaigns, build_campaign

__all__ = [
    "COMPLETED",
    "QUARANTINED",
    "SKIPPED",
    "TERMINAL_STATES",
    "Campaign",
    "CampaignError",
    "CampaignInterrupted",
    "CampaignOptions",
    "CampaignResult",
    "Journal",
    "TaskOutcome",
    "TaskSpec",
    "available_campaigns",
    "build_campaign",
    "journal_status",
    "make_task",
    "render_status",
    "resolve_task_fn",
    "retry_delay",
    "run_campaign",
    "stable_hash",
]
