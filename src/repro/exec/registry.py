"""Named campaign builders for ``python -m repro campaign run <name>``.

The CLI addresses campaigns by name; each builder turns a small option
dict into a full :class:`~repro.exec.campaign.Campaign`.  Because task
ids and the campaign key are content-derived, running the same named
campaign with the same options always produces the same key — which is
what makes ``--resume`` against an existing journal work from the
command line.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from .campaign import Campaign, CampaignError, make_task


def _build_demo(options: Dict[str, Any]) -> Campaign:
    n = int(options.get("tasks", 8))
    work = float(options.get("work", 0.0))
    tasks = [
        make_task({"x": float(i), "work": work}, label=f"square {i}")
        for i in range(n)
    ]
    return Campaign(name="demo", fn="repro.exec.tasks:demo_task",
                    tasks=tasks)


def _build_store_yield(options: Dict[str, Any]) -> Campaign:
    from ..characterize.variability import store_yield_campaign
    return store_yield_campaign(
        n_samples=int(options.get("samples", 200)),
        seed=int(options.get("seed", 2015)),
    )


def _build_snm(options: Dict[str, Any]) -> Campaign:
    from ..characterize.variability import snm_campaign
    return snm_campaign(
        n_samples=int(options.get("samples", 100)),
        seed=int(options.get("seed", 2015)),
    )


def _build_chaos(options: Dict[str, Any]) -> Campaign:
    from ..recovery.faults import build_executor_chaos_campaign
    scratch = options.get("scratch")
    if not scratch:
        raise CampaignError("the chaos campaign needs a scratch directory")
    return build_executor_chaos_campaign(
        scratch=scratch,
        n_healthy=int(options.get("tasks", 4)),
        seed=int(options.get("seed", 2015)),
    )


_BUILDERS: Dict[str, Callable[[Dict[str, Any]], Campaign]] = {
    "demo": _build_demo,
    "store-yield": _build_store_yield,
    "snm": _build_snm,
    "chaos": _build_chaos,
}

#: Task function behind each named campaign.  This table is the static
#: face of the builders above: building a campaign needs options (the
#: chaos builder refuses to run without a scratch directory), so tools
#: that only need the *roots* — the RV6xx purity lint seeds its call
#: graph reachability from here — read this instead of instantiating
#: campaigns.  ``test_registry`` cross-checks it against the builders.
_TASK_FNS: Dict[str, str] = {
    "demo": "repro.exec.tasks:demo_task",
    "store-yield": "repro.exec.tasks:store_yield_sample_task",
    "snm": "repro.exec.tasks:snm_sample_task",
    "chaos": "repro.exec.tasks:chaos_task",
}


def available_campaigns() -> List[str]:
    """Names accepted by :func:`build_campaign` (and `repro campaign list`)."""
    return sorted(_BUILDERS)


def task_function_refs() -> List[str]:
    """``"module:function"`` refs of every registered campaign's task.

    The purity lint (RV6xx) treats these as task roots even when no
    string literal in the analysed tree references them — a campaign
    built programmatically is still shipped to workers.
    """
    return sorted(set(_TASK_FNS.values()))


def build_campaign(name: str, **options: Any) -> Campaign:
    """Build the named campaign; raises on unknown names."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        known = ", ".join(available_campaigns())
        raise CampaignError(
            f"unknown campaign {name!r} (available: {known})"
        ) from None
    return builder(options)
