"""Fault-tolerant campaign executor: process isolation, watchdog, retry.

:func:`run_campaign` executes a :class:`~repro.exec.campaign.Campaign`
with a pool of persistent spawn-started worker processes.  The contract:

* **One hung solve kills one worker, not the run.**  Each task carries a
  wall-clock watchdog deadline; on expiry the owning worker process is
  terminated and replaced, and the task is retried elsewhere.
* **Failures are classified, not treated alike.**  A deterministic
  :class:`~repro.errors.AnalysisError` (the recovery ladder inside the
  solver has already been exhausted) is *recorded and skipped* — it
  would fail again identically.  A worker crash or watchdog timeout is
  *retried* with exponential backoff + deterministic jitter up to a
  bounded budget, then quarantined.  A task raising any other exception
  is a *poison task* and quarantined immediately.
* **Every terminal outcome is journalled before the run moves on**
  (append-only JSONL, fsync'd), so a killed campaign resumes from its
  journal re-executing only incomplete points, and a resumed run's
  aggregate results are identical to an uninterrupted one.
* **SIGINT/SIGTERM drain gracefully.**  The first signal stops dispatch
  and lets in-flight tasks finish within a grace period (flushing their
  results to the journal); a second signal, or grace expiry, terminates
  the workers.  The partial result is raised as
  :class:`CampaignInterrupted` so callers can print a summary and exit
  non-zero.

``workers=0`` runs the tasks inline in the calling process — same
classification and journal semantics, no isolation (used for overhead
baselines and cheap campaigns).
"""

from __future__ import annotations

import heapq
import random
import signal
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from queue import Empty
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from ..errors import ReproError
from .campaign import (
    COMPLETED,
    QUARANTINED,
    SKIPPED,
    Campaign,
    CampaignResult,
    TaskOutcome,
    TaskSpec,
)
from .journal import Journal


class CampaignInterrupted(ReproError):
    """Raised after a graceful drain; carries the partial result."""

    def __init__(self, message: str, result: CampaignResult):
        super().__init__(message)
        self.result = result


@dataclass
class CampaignOptions:
    """Execution policy knobs.

    Attributes
    ----------
    workers:
        Worker-process count; ``0`` executes inline (no isolation).
    task_timeout:
        Per-task wall-clock watchdog in seconds (``None`` = no watchdog).
    warmup_grace:
        Extra allowance added to the first deadline of a worker that has
        not finished importing yet (spawn + heavy imports are not the
        task's fault).
    max_retries:
        Re-dispatch budget for crash/timeout failures, per task.
    backoff_base / backoff_cap:
        Exponential backoff schedule between retries of one task, in
        seconds; jitter is deterministic per ``(task_id, attempt)``.
    drain_grace:
        Seconds in-flight tasks may keep running after the first
        SIGINT/SIGTERM before workers are terminated.
    forensics_dir:
        When set, every skip/quarantine dumps a JSON post-mortem here
        via :func:`repro.recovery.forensics.dump_failure`.
    resume:
        Replay terminal outcomes from the journal (matched by campaign
        key) instead of re-executing them.
    progress:
        Optional callable receiving one-line progress strings.
    on_outcome:
        Optional tap called with every *terminal* :class:`TaskOutcome`
        right after it is journalled (replayed outcomes are not
        re-announced).  Exceptions from the tap are swallowed — an
        observer must never take down the run.  The serve layer feeds
        campaign progress streams from this.
    stop_requested:
        Optional external-drain poll returning the desired interrupt
        level (``0`` = keep running, ``1`` = graceful drain, ``2`` =
        hard stop).  Polled once per scheduler iteration (pooled) or
        between tasks (inline); it can only *raise* the level.  This is
        how an embedding host (the serve layer's SIGTERM handling)
        routes its shutdown through the executor's two-stage drain
        without owning the process signal handlers.
    """

    workers: int = 1
    task_timeout: Optional[float] = None
    warmup_grace: float = 30.0
    max_retries: int = 2
    backoff_base: float = 0.25
    backoff_cap: float = 5.0
    drain_grace: float = 10.0
    forensics_dir: Optional[Union[str, Path]] = None
    resume: bool = False
    progress: Optional[Callable[[str], None]] = None
    on_outcome: Optional[Callable[[TaskOutcome], None]] = None
    stop_requested: Optional[Callable[[], int]] = None

    def __post_init__(self):
        if self.workers < 0:
            raise ReproError("workers must be >= 0")
        if self.max_retries < 0:
            raise ReproError("max_retries must be >= 0")


def _effective_timeout(task: TaskSpec,
                       options: CampaignOptions) -> Optional[float]:
    """Watchdog limit for one task: its own override, else the global."""
    if task.timeout is not None:
        return task.timeout
    return options.task_timeout


def retry_delay(options: CampaignOptions, task_id: str,
                attempt: int) -> float:
    """Backoff before re-dispatching ``attempt`` (1-based) of a task.

    Deterministic jitter in [0.5, 1.5) seeded from the task identity, so
    two campaigns with the same definition retry on the same schedule
    (and tests are reproducible) while simultaneous retries still spread
    out instead of thundering back in lockstep.
    """
    base = options.backoff_base * (2.0 ** max(attempt - 1, 0))
    base = min(base, options.backoff_cap)
    jitter = 0.5 + random.Random(f"{task_id}:{attempt}").random()
    return min(base * jitter, options.backoff_cap)


# ---------------------------------------------------------------------------
# parent-side worker handle
# ---------------------------------------------------------------------------

@dataclass
class _Inflight:
    task: TaskSpec
    attempt: int
    dispatched_at: float
    started_at: Optional[float] = None


@dataclass
class _Worker:
    worker_id: int
    process: Any
    queue: Any      # parent -> worker task dispatch
    rqueue: Any     # worker -> parent results; one writer per pipe, so a
    #                 worker crashing mid-``put`` (holding the queue's
    #                 write lock) can never wedge the other workers'
    #                 message streams — the failure that a single shared
    #                 result queue cannot survive.
    ready: bool = False
    inflight: Optional[_Inflight] = None

    def deadline(self, options: CampaignOptions) -> Optional[float]:
        if self.inflight is None:
            return None
        timeout = _effective_timeout(self.inflight.task, options)
        if timeout is None:
            return None
        if self.inflight.started_at is not None:
            return self.inflight.started_at + timeout
        grace = 0.0 if self.ready else options.warmup_grace
        return self.inflight.dispatched_at + grace + timeout


def _spawn_worker(ctx, worker_id: int, fn_ref: str) -> _Worker:
    from .worker import worker_main

    task_queue = ctx.Queue()
    result_queue = ctx.Queue()
    process = ctx.Process(
        target=worker_main,
        args=(worker_id, fn_ref, task_queue, result_queue),
        name=f"repro-campaign-w{worker_id}",
        daemon=True,
    )
    process.start()
    return _Worker(worker_id=worker_id, process=process, queue=task_queue,
                   rqueue=result_queue)


def _kill_worker(worker: _Worker) -> None:
    process = worker.process
    if process.is_alive():
        process.terminate()
        process.join(1.0)
        if process.is_alive():
            process.kill()
            process.join(1.0)
    # release the queues' feeder resources; ignore platform quirks
    for queue in (worker.queue, worker.rqueue):
        try:
            queue.close()
        except (OSError, ValueError):
            pass


# ---------------------------------------------------------------------------
# the run loop
# ---------------------------------------------------------------------------

class _CampaignRun:
    """State machine for one campaign execution."""

    def __init__(self, campaign: Campaign, journal: Optional[Journal],
                 options: CampaignOptions):
        self.campaign = campaign
        self.journal = journal
        self.options = options
        self.key = campaign.key
        self.tasks = {t.task_id: t for t in campaign.tasks}
        self.order = [t.task_id for t in campaign.tasks]
        self.outcomes: Dict[str, TaskOutcome] = {}
        self.attempts: Dict[str, int] = {}
        self.failures: Dict[str, List[dict]] = {}
        self.elapsed_acc: Dict[str, float] = {}
        self.ready_tasks: deque = deque()
        self.retry_heap: List[Tuple[float, int, str]] = []
        self._retry_seq = 0
        self.interrupt_level = 0
        self.interrupt_signal = ""

    # -- helpers ---------------------------------------------------------

    def _progress(self, message: str) -> None:
        if self.options.progress is not None:
            self.options.progress(message)

    def _replay_from_journal(self) -> None:
        if not (self.options.resume and self.journal is not None):
            return
        for task_id, outcome in self.journal.outcomes_for(self.key).items():
            if task_id in self.tasks:
                self.outcomes[task_id] = outcome

    def _record(self, outcome: TaskOutcome) -> None:
        self.outcomes[outcome.task_id] = outcome
        if self.journal is not None:
            self.journal.task_end(self.key, outcome)
        if self.options.on_outcome is not None:
            try:
                self.options.on_outcome(outcome)
            except Exception:  # lint: skip=RV405 — observer taps must never take down the run; the outcome is already journalled
                pass
        if outcome.status in (SKIPPED, QUARANTINED):
            self._dump_forensics(outcome)
        self._progress(
            f"[{len(self.outcomes)}/{len(self.order)}] "
            f"{outcome.status}: {outcome.label or outcome.task_id}"
            + (f" ({outcome.attempts} attempts)"
               if outcome.attempts > 1 else "")
        )

    def _dump_forensics(self, outcome: TaskOutcome) -> None:
        directory = self.options.forensics_dir
        if directory is None:
            return
        from ..recovery.forensics import dump_failure

        directory = Path(directory)
        try:
            directory.mkdir(parents=True, exist_ok=True)
            payload = {"kind": "task_failure",
                       "campaign": self.campaign.name, "key": self.key}
            payload.update(outcome.to_dict())
            dump_failure(payload,
                         directory / f"{outcome.task_id}.json")
        except OSError:
            pass  # forensics are best-effort; never take down the run

    def _terminal(self, task: TaskSpec, status: str, *,
                  result: Any = None, skip: Optional[dict] = None,
                  elapsed: float = 0.0) -> None:
        attempts = self.attempts.get(task.task_id, 1)
        self._record(TaskOutcome(
            task_id=task.task_id,
            status=status,
            attempts=attempts,
            elapsed=self.elapsed_acc.get(task.task_id, 0.0) + elapsed,
            label=task.label,
            result=result,
            skip=skip,
            failures=self.failures.get(task.task_id, []),
        ))

    def _fail_attempt(self, task: TaskSpec, kind: str, detail: str,
                      now: float) -> None:
        """A crash/timeout attempt failed: retry with backoff or quarantine."""
        self.failures.setdefault(task.task_id, []).append(
            {"kind": kind, "detail": detail,
             "attempt": self.attempts.get(task.task_id, 1)})
        attempt = self.attempts.get(task.task_id, 1)
        if attempt > self.options.max_retries:
            self._terminal(task, QUARANTINED)
            return
        delay = retry_delay(self.options, task.task_id, attempt)
        self._retry_seq += 1
        heapq.heappush(self.retry_heap,
                       (now + delay, self._retry_seq, task.task_id))
        self._progress(f"retrying {task.label or task.task_id} in "
                       f"{delay:.2f}s after {kind}")

    def _poison(self, task: TaskSpec, payload: dict) -> None:
        self.failures.setdefault(task.task_id, []).append(
            {"kind": "poison", "detail": payload.get("error", ""),
             "traceback": payload.get("traceback", ""),
             "attempt": self.attempts.get(task.task_id, 1)})
        self._terminal(task, QUARANTINED,
                       elapsed=payload.get("elapsed", 0.0))

    def _poll_external_stop(self) -> None:
        """Raise the interrupt level from an embedding host's drain poll."""
        if self.options.stop_requested is None:
            return
        try:
            level = int(self.options.stop_requested())
        except Exception:  # lint: skip=RV405 — a broken drain poll must not kill a healthy run
            return
        if level > self.interrupt_level:
            self.interrupt_level = level
            if not self.interrupt_signal:
                self.interrupt_signal = "external drain"

    def pending(self) -> List[str]:
        return [tid for tid in self.order if tid not in self.outcomes]

    def result(self, interrupted: bool, elapsed: float) -> CampaignResult:
        return CampaignResult(
            campaign=self.campaign.name,
            key=self.key,
            outcomes=dict(self.outcomes),
            order=list(self.order),
            interrupted=interrupted,
            elapsed=elapsed,
        )


def run_campaign(campaign: Campaign,
                 journal: Optional[Union[Journal, str, Path]] = None,
                 options: Optional[CampaignOptions] = None) -> CampaignResult:
    """Execute a campaign; see the module docstring for the contract.

    Raises :class:`CampaignInterrupted` (carrying the partial
    :class:`~repro.exec.campaign.CampaignResult`) after a graceful
    signal drain.
    """
    options = options or CampaignOptions()
    if journal is not None and not isinstance(journal, Journal):
        journal = Journal(journal)
    campaign.resolve_fn()   # fail fast in the parent on a bad reference

    run = _CampaignRun(campaign, journal, options)
    run._replay_from_journal()
    started = time.time()
    if journal is not None:
        journal.begin(campaign, options.workers,
                      resumed=len(run.outcomes))
    if run.outcomes:
        run._progress(f"resuming: {len(run.outcomes)} outcome(s) replayed "
                      f"from {journal.path if journal else 'journal'}")

    for task_id in run.pending():
        run.ready_tasks.append(task_id)
        run.attempts[task_id] = 1

    try:
        if options.workers == 0:
            _run_inline(run)
        else:
            _run_pooled(run)
    finally:
        elapsed = time.time() - started

    interrupted = run.interrupt_level > 0 and run.pending()
    result = run.result(bool(interrupted), elapsed)
    if journal is not None:
        if interrupted:
            journal.interrupted(run.key, run.interrupt_signal,
                                completed=len(run.outcomes),
                                remaining=len(run.pending()))
        else:
            journal.end(run.key, _count(run), elapsed,
                        trust=result.trust_summary())
    if interrupted:
        raise CampaignInterrupted(
            f"campaign {campaign.name!r} interrupted by "
            f"{run.interrupt_signal or 'signal'}: "
            f"{len(run.outcomes)} terminal, {len(run.pending())} remaining",
            result,
        )
    return result


def _count(run: _CampaignRun) -> Dict[str, int]:
    counts = {COMPLETED: 0, SKIPPED: 0, QUARANTINED: 0}
    for outcome in run.outcomes.values():
        counts[outcome.status] = counts.get(outcome.status, 0) + 1
    return counts


# ---------------------------------------------------------------------------
# inline execution (workers=0)
# ---------------------------------------------------------------------------

def _run_inline(run: _CampaignRun) -> None:
    from ..errors import AnalysisError
    from ..recovery.partial import SkipRecord

    fn = run.campaign.resolve_fn()
    while run.ready_tasks:
        run._poll_external_stop()
        if run.interrupt_level > 0:
            return
        task = run.tasks[run.ready_tasks.popleft()]
        t0 = time.monotonic()
        try:
            result = fn(task.params)
            run._terminal(task, COMPLETED, result=result,
                          elapsed=time.monotonic() - t0)
        except AnalysisError as err:
            skip = SkipRecord.from_error(err, label=task.label,
                                         stage="campaign")
            run._terminal(task, SKIPPED, skip=skip.to_dict(),
                          elapsed=time.monotonic() - t0)
        except KeyboardInterrupt:
            run.interrupt_level += 1
            run.interrupt_signal = "SIGINT"
            return
        except Exception as err:  # lint: skip=RV405 — poison path keeps the traceback
            run._poison(task, {"error": repr(err),
                               "traceback": traceback.format_exc(),
                               "elapsed": time.monotonic() - t0})


# ---------------------------------------------------------------------------
# pooled execution
# ---------------------------------------------------------------------------

def _run_pooled(run: _CampaignRun) -> None:
    import multiprocessing as mp

    options = run.options
    ctx = mp.get_context("spawn")
    workers: Dict[int, _Worker] = {}
    next_worker_id = 0
    drain_deadline: Optional[float] = None

    def want_workers() -> int:
        outstanding = (len(run.ready_tasks) + len(run.retry_heap)
                       + sum(1 for w in workers.values() if w.inflight))
        return max(0, min(options.workers, outstanding))

    # -- signal handling -------------------------------------------------
    old_handlers: Dict[int, Any] = {}

    def _on_signal(signum, frame):
        # Flag-setting only: this runs between bytecodes inside
        # whatever the main thread was doing, where buffered IO (even
        # the progress print) can raise "reentrant call".  The main
        # loop announces the drain at the flag transition.
        run.interrupt_level += 1
        run.interrupt_signal = signal.Signals(signum).name

    in_main_thread = threading.current_thread() is threading.main_thread()
    if in_main_thread:
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                old_handlers[signum] = signal.signal(signum, _on_signal)
            except (ValueError, OSError):
                pass

    try:
        while True:
            now = time.monotonic()
            run._poll_external_stop()

            # promote due retries
            while run.retry_heap and run.retry_heap[0][0] <= now:
                _, _, task_id = heapq.heappop(run.retry_heap)
                run.attempts[task_id] += 1
                run.ready_tasks.append(task_id)

            draining = run.interrupt_level > 0
            if draining and drain_deadline is None:
                drain_deadline = now + options.drain_grace
                run._progress(
                    f"{run.interrupt_signal}: draining — in-flight "
                    f"tasks get {options.drain_grace:g}s, journal will "
                    "be flushed (signal again to stop now)"
                )
            hard_stop = run.interrupt_level >= 2 or (
                drain_deadline is not None and now >= drain_deadline)

            if hard_stop:
                break
            if not draining:
                # top up the pool and dispatch
                while len(workers) < want_workers():
                    worker = _spawn_worker(ctx, next_worker_id,
                                           run.campaign.fn)
                    workers[worker.worker_id] = worker
                    next_worker_id += 1
                for worker in workers.values():
                    if worker.inflight is None and run.ready_tasks:
                        task = run.tasks[run.ready_tasks.popleft()]
                        attempt = run.attempts[task.task_id]
                        worker.inflight = _Inflight(task, attempt, now)
                        worker.queue.put((task.task_id, task.params,
                                          attempt, task.label))

            # computed *after* dispatch: a just-dispatched task counts
            # as in flight, or the exit checks below fire one loop early
            inflight = [w for w in workers.values() if w.inflight]
            if draining and not inflight:
                break  # drained: nothing running, stop dispatching
            if not run.pending():
                break
            if (not draining and not inflight and not run.ready_tasks
                    and not run.retry_heap):
                break  # nothing left anywhere (defensive)

            # -- receive ------------------------------------------------
            # Drain every worker's own result queue.  This runs before
            # the liveness check below, so a worker whose terminal
            # message ("done"/"skip") beat its own death is credited
            # with the result instead of a spurious crash retry.
            got_any = False
            for worker in list(workers.values()):
                while True:
                    try:
                        kind, worker_id, task_id, payload = (
                            worker.rqueue.get_nowait())
                    except Empty:
                        break
                    except (EOFError, OSError):
                        break
                    got_any = True
                    if kind == "ready":
                        worker.ready = True
                    elif kind == "start":
                        if (worker.inflight is not None
                                and worker.inflight.task.task_id
                                == task_id):
                            worker.inflight.started_at = time.monotonic()
                    elif kind in ("done", "skip", "error"):
                        current = worker.inflight
                        if (current is not None
                                and current.task.task_id == task_id
                                and task_id not in run.outcomes):
                            worker.inflight = None
                            task = current.task
                            if kind == "done":
                                run._terminal(
                                    task, COMPLETED,
                                    result=payload.get("result"),
                                    elapsed=payload.get("elapsed", 0.0))
                            elif kind == "skip":
                                run._terminal(
                                    task, SKIPPED,
                                    skip=payload.get("skip"),
                                    elapsed=payload.get("elapsed", 0.0))
                            else:
                                run._poison(task, payload)
                        else:
                            worker.inflight = None
            if not got_any:
                time.sleep(0.02)

            now = time.monotonic()

            # -- watchdog + liveness -------------------------------------
            for worker in list(workers.values()):
                current = worker.inflight
                deadline = worker.deadline(options)
                if (current is not None and deadline is not None
                        and now >= deadline):
                    elapsed = now - (current.started_at
                                     or current.dispatched_at)
                    run.elapsed_acc[current.task.task_id] = (
                        run.elapsed_acc.get(current.task.task_id, 0.0)
                        + elapsed)
                    _kill_worker(worker)
                    del workers[worker.worker_id]
                    limit = _effective_timeout(current.task, options)
                    run._fail_attempt(
                        current.task, "timeout",
                        f"watchdog expired after {elapsed:.2f}s "
                        f"(limit {limit:g}s) on worker "
                        f"{worker.worker_id}", now)
                    continue
                if not worker.process.is_alive():
                    del workers[worker.worker_id]
                    if current is not None:
                        exitcode = worker.process.exitcode
                        run._fail_attempt(
                            current.task, "crash",
                            f"worker {worker.worker_id} died with exit "
                            f"code {exitcode}", now)
                    # idle deaths (failed spawn) are just replaced by the
                    # top-up above on the next iteration
    finally:
        for worker in workers.values():
            if worker.inflight is None and worker.process.is_alive():
                try:
                    worker.queue.put(None)
                except (OSError, ValueError):
                    pass
        deadline = time.monotonic() + 2.0
        for worker in workers.values():
            worker.process.join(max(0.0, deadline - time.monotonic()))
        for worker in workers.values():
            _kill_worker(worker)
        if in_main_thread:
            for signum, handler in old_handlers.items():
                try:
                    signal.signal(signum, handler)
                except (ValueError, OSError):
                    pass
