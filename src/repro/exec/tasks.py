"""Importable campaign task functions.

Spawn-based workers resolve the campaign's task function from a
``"module:function"`` string, so every function a campaign runs must
live at module top level and take exactly one JSON dict of parameters.
This module collects the task functions (and the matching params
builders) for the repo's own campaigns:

* :func:`characterize_task` — one cell characterisation (the unit of
  work behind the Fig. 7/8/9 sweeps; results fold back into the
  experiment context's memo and the disk cache).
* :func:`nvff_task` — one NV flip-flop characterisation (the register
  -file counterpart; the serve layer's ``/v1/nvff`` route).
* :func:`store_yield_sample_task` / :func:`snm_sample_task` — one
  Monte-Carlo sample of :mod:`repro.characterize.variability`.  Each
  sample seeds its own generator from ``(seed, index)`` so serial,
  parallel and resumed runs draw identical variates.
* :func:`chaos_task` — the controllable misbehaver used by the executor
  chaos harness (``repro chaos --executor``) and the stress tests.
* :func:`demo_task` — a trivial task for CLI smoke tests and overhead
  benchmarks.

Everything crossing the process boundary is plain JSON: parameter
dataclasses are sent as ``asdict`` payloads and rebuilt here, results
are returned as dicts.
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..errors import ConvergenceError


# ---------------------------------------------------------------------------
# dataclass <-> JSON payload helpers
# ---------------------------------------------------------------------------

def _cond(payload: Optional[Dict[str, Any]]):
    from ..pg.modes import OperatingConditions
    return None if payload is None else OperatingConditions(**payload)


def _domain(payload: Optional[Dict[str, Any]]):
    from ..cells import PowerDomain
    return None if payload is None else PowerDomain(**payload)


def _fet(payload: Optional[Dict[str, Any]]):
    from ..devices.finfet import FinFETParams
    return None if payload is None else FinFETParams(**payload)


def _mtj(payload: Optional[Dict[str, Any]]):
    from ..devices.mtj import MTJParams
    return None if payload is None else MTJParams(**payload)


def _variation(payload: Optional[Dict[str, Any]]):
    from ..characterize.variability import VariationModel
    return VariationModel(**payload) if payload else VariationModel()


def _asdict(value) -> Optional[Dict[str, Any]]:
    return None if value is None else asdict(value)


# ---------------------------------------------------------------------------
# characterisation
# ---------------------------------------------------------------------------

def characterize_params(kind: str, cond=None, domain=None, nfet=None,
                        pfet=None, mtj_params=None,
                        cache_dir: Optional[Union[str, Path]] = None,
                        ) -> Dict[str, Any]:
    """Params dict for :func:`characterize_task` from the dataclasses."""
    return {
        "kind": kind,
        "cond": _asdict(cond),
        "domain": _asdict(domain),
        "nfet": _asdict(nfet),
        "pfet": _asdict(pfet),
        "mtj": _asdict(mtj_params),
        "cache_dir": None if cache_dir is None else str(cache_dir),
    }


def characterize_task(params: Dict[str, Any]) -> Dict[str, Any]:
    """Run one cell characterisation; returns its flat data payload.

    The worker writes through the shared disk cache (when one is
    configured), so a prewarm campaign leaves the cache hot for the
    serial figure-assembly pass that follows; the returned payload lets
    the parent fold the result into its in-memory memo even when the
    cache is disabled.
    """
    import json as _json

    from ..characterize.runner import characterize_cell
    from ..devices.mtj import MTJ_TABLE1
    from ..devices.ptm20 import NFET_20NM_HP, PFET_20NM_HP

    result = characterize_cell(
        params["kind"],
        cond=_cond(params.get("cond")),
        domain=_domain(params.get("domain")),
        nfet=_fet(params.get("nfet")) or NFET_20NM_HP,
        pfet=_fet(params.get("pfet")) or PFET_20NM_HP,
        mtj_params=_mtj(params.get("mtj")) or MTJ_TABLE1,
        cache_dir=params.get("cache_dir"),
    )
    return _json.loads(result.to_json())


def nvff_params(cond=None, nfet=None, pfet=None, mtj_params=None,
                cache_dir: Optional[Union[str, Path]] = None,
                ) -> Dict[str, Any]:
    """Params dict for :func:`nvff_task` from the dataclasses."""
    return {
        "cond": _asdict(cond),
        "nfet": _asdict(nfet),
        "pfet": _asdict(pfet),
        "mtj": _asdict(mtj_params),
        "cache_dir": None if cache_dir is None else str(cache_dir),
    }


def nvff_task(params: Dict[str, Any]) -> Dict[str, Any]:
    """Run one NV flip-flop characterisation; returns its data payload.

    Register-file counterpart of :func:`characterize_task`; the serve
    layer schedules ``/v1/nvff`` requests through this.
    """
    import json as _json

    from ..characterize.ff_runner import characterize_nvff
    from ..devices.mtj import MTJ_TABLE1
    from ..devices.ptm20 import NFET_20NM_HP, PFET_20NM_HP

    result = characterize_nvff(
        cond=_cond(params.get("cond")),
        nfet=_fet(params.get("nfet")) or NFET_20NM_HP,
        pfet=_fet(params.get("pfet")) or PFET_20NM_HP,
        mtj_params=_mtj(params.get("mtj")) or MTJ_TABLE1,
        cache_dir=params.get("cache_dir"),
    )
    return _json.loads(result.to_json())


# ---------------------------------------------------------------------------
# Monte-Carlo variability samples
# ---------------------------------------------------------------------------

def store_yield_sample_params(index: int, seed: int, cond=None, domain=None,
                              variation=None) -> Dict[str, Any]:
    """Params dict for :func:`store_yield_sample_task` from the dataclasses."""
    return {
        "index": index,
        "seed": seed,
        "cond": _asdict(cond),
        "domain": _asdict(domain),
        "variation": _asdict(variation),
    }


def store_yield_sample_task(params: Dict[str, Any]) -> Dict[str, Any]:
    """One store-margin Monte-Carlo sample (see ``store_yield_analysis``)."""
    import numpy as np

    from ..characterize.variability import _store_margin_sample

    rng = np.random.default_rng([params["seed"], params["index"]])
    margin = _store_margin_sample(
        _cond(params.get("cond")),
        _domain(params.get("domain")),
        _variation(params.get("variation")),
        rng,
    )
    return {"index": params["index"], "margin": float(margin)}


def snm_sample_params(index: int, seed: int, cond=None, read_mode=True,
                      points: int = 41, variation=None, nfet=None,
                      pfet=None) -> Dict[str, Any]:
    """Params dict for :func:`snm_sample_task` from the dataclasses."""
    return {
        "index": index,
        "seed": seed,
        "cond": _asdict(cond),
        "read_mode": bool(read_mode),
        "points": int(points),
        "variation": _asdict(variation),
        "nfet": _asdict(nfet),
        "pfet": _asdict(pfet),
    }


def snm_sample_task(params: Dict[str, Any]) -> Dict[str, Any]:
    """One SNM Monte-Carlo sample (see ``read_snm_distribution``)."""
    import numpy as np

    from ..characterize.variability import _snm_sample
    from ..devices.ptm20 import NFET_20NM_HP, PFET_20NM_HP

    rng = np.random.default_rng([params["seed"], params["index"]])
    snm = _snm_sample(
        _cond(params.get("cond")),
        bool(params.get("read_mode", True)),
        _variation(params.get("variation")),
        rng,
        int(params.get("points", 41)),
        _fet(params.get("nfet")) or NFET_20NM_HP,
        _fet(params.get("pfet")) or PFET_20NM_HP,
    )
    return {"index": params["index"], "snm": float(snm)}


# ---------------------------------------------------------------------------
# chaos + demo
# ---------------------------------------------------------------------------

def chaos_task(params: Dict[str, Any]) -> Dict[str, Any]:
    """Deliberately misbehaving task for the executor chaos harness.

    ``params["fault"]`` selects the injected behaviour (see
    ``repro.recovery.faults.EXEC_FAULT_KINDS``); ``None`` is a healthy
    task.  ``flaky_crash`` uses a marker file under ``params["scratch"]``
    to crash on the first attempt and succeed on the retry — exactly the
    transient failure the retry budget exists for.
    """
    index = params.get("index", 0)
    fault = params.get("fault")
    time.sleep(float(params.get("work", 0.0)))
    if fault == "worker_crash":
        os._exit(13)
    elif fault == "worker_hang":
        time.sleep(float(params.get("hang", 3600.0)))
    elif fault == "slow_task":
        time.sleep(float(params.get("delay", 1.0)))
    elif fault == "flaky_crash":
        marker = Path(params["scratch"]) / f"flaky-{index}.attempted"
        if not marker.exists():
            # The marker write IS the injected fault: crash-once-then
            # succeed needs cross-attempt state, and the scratch dir is
            # owned by the chaos harness.  Real tasks must not do this.
            marker.touch()  # lint: skip=RV603
            os._exit(13)
    elif fault == "task_error":
        raise RuntimeError(f"injected poison in task {index}")
    elif fault == "conv_skip":
        raise ConvergenceError(
            f"injected convergence failure in task {index}",
            iterations=50, residual=1e-3,
            worst_nodes=[("q", 1e-3)],
        )
    elif fault is not None:
        raise RuntimeError(f"unknown chaos fault kind {fault!r}")
    return {"index": index, "value": index * index}


def demo_task(params: Dict[str, Any]) -> Dict[str, Any]:
    """Square a number, optionally slowly (CLI smoke tests, benchmarks)."""
    time.sleep(float(params.get("work", 0.0)))
    x = float(params.get("x", 0.0))
    return {"x": x, "y": x * x}
