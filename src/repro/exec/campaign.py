"""Campaign abstraction: a named, hashable list of pure tasks.

A :class:`Campaign` is the unit of fault-tolerant execution: a name, a
task function (referenced by an importable ``"module:attr"`` string so
spawn-based workers can resolve it without pickling closures) and a list
of :class:`TaskSpec` entries whose parameters are plain JSON data.

Everything is content-addressed: each task gets a deterministic
``task_id`` hashed from its parameters, and the campaign as a whole gets
a :attr:`Campaign.key` hashed from the name, the function reference and
every task.  The journal (:mod:`repro.exec.journal`) stamps that key on
every record, so a ``--resume`` can only ever replay results that came
from the *same* campaign definition — edit one parameter and the key
changes, and stale journal entries are ignored.
"""

from __future__ import annotations

import hashlib
import importlib
import json
from dataclasses import asdict, dataclass, field, is_dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from ..errors import ReproError

#: Terminal task states.  Every task of a finished campaign lands in
#: exactly one of these (the N-in/N-out invariant); an interrupted
#: campaign may additionally leave tasks absent (= not yet executed).
COMPLETED = "completed"
SKIPPED = "skipped"
QUARANTINED = "quarantined"
TERMINAL_STATES = (COMPLETED, SKIPPED, QUARANTINED)


class CampaignError(ReproError):
    """A campaign definition or journal is malformed."""


def _normalise(value: Any) -> Any:
    """Canonicalise a value for hashing (mirrors the cache-key rules)."""
    if is_dataclass(value) and not isinstance(value, type):
        payload = asdict(value)
        payload["__type__"] = type(value).__name__
        return {k: _normalise(v) for k, v in payload.items()}
    if isinstance(value, dict):
        return {k: _normalise(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_normalise(v) for v in value]
    if isinstance(value, float):
        return float(repr(value))
    return value


def stable_hash(value: Any, length: int = 16) -> str:
    """Deterministic content hash of any JSON-able structure."""
    blob = json.dumps(_normalise(value), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:length]


@dataclass(frozen=True)
class TaskSpec:
    """One point of a campaign.

    Attributes
    ----------
    task_id:
        Stable identifier; by default the content hash of ``params``.
    params:
        JSON-serialisable argument mapping handed to the task function.
    label:
        Human-readable description for summaries and forensics.
    timeout:
        Per-task watchdog override in seconds.  ``None`` falls back to
        :attr:`~repro.exec.executor.CampaignOptions.task_timeout`.  Like
        ``label`` it is execution policy, not content: it does not enter
        the task id or the campaign key, so a journal written under one
        deadline still resumes a run submitted under another (the serve
        layer maps per-request deadlines here).
    """

    task_id: str
    params: Dict[str, Any] = field(default_factory=dict)
    label: str = ""
    timeout: Optional[float] = None

    def __post_init__(self):
        try:
            json.dumps(self.params)
        except (TypeError, ValueError) as exc:
            raise CampaignError(
                f"task {self.task_id!r} params are not JSON-serialisable: "
                f"{exc}"
            ) from exc
        if self.timeout is not None and self.timeout <= 0:
            raise CampaignError(
                f"task {self.task_id!r} timeout must be positive, got "
                f"{self.timeout!r}"
            )


def make_task(params: Dict[str, Any], label: str = "",
              task_id: Optional[str] = None,
              timeout: Optional[float] = None) -> TaskSpec:
    """Build a :class:`TaskSpec` with a content-derived id."""
    if task_id is None:
        try:
            task_id = stable_hash(params)
        except (TypeError, ValueError) as exc:
            raise CampaignError(
                f"task params are not JSON-serialisable: {exc}"
            ) from exc
    return TaskSpec(task_id=task_id, params=dict(params), label=label,
                    timeout=timeout)


def resolve_task_fn(ref: str) -> Callable[[Dict[str, Any]], Any]:
    """Import a ``"package.module:function"`` task-function reference."""
    module_name, sep, attr = ref.partition(":")
    if not sep or not module_name or not attr:
        raise CampaignError(
            f"task fn reference must look like 'pkg.mod:fn', got {ref!r}"
        )
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise CampaignError(f"cannot import task module {module_name!r}: "
                            f"{exc}") from exc
    fn = getattr(module, attr, None)
    if not callable(fn):
        raise CampaignError(f"{ref!r} does not name a callable")
    return fn


@dataclass
class Campaign:
    """A named, hashable batch of independent tasks.

    Attributes
    ----------
    name:
        Campaign name (used for journal records and summaries).
    fn:
        ``"module:function"`` reference to the pure task function; it
        receives one task's ``params`` dict and returns a
        JSON-serialisable result.
    tasks:
        The task list.  Order defines the index used in summaries, but
        tasks are independent and may complete in any order.
    """

    name: str
    fn: str
    tasks: List[TaskSpec] = field(default_factory=list)

    def __post_init__(self):
        seen: Dict[str, int] = {}
        for i, task in enumerate(self.tasks):
            if task.task_id in seen:
                raise CampaignError(
                    f"duplicate task_id {task.task_id!r} at positions "
                    f"{seen[task.task_id]} and {i}"
                )
            seen[task.task_id] = i

    def __len__(self) -> int:
        return len(self.tasks)

    @property
    def key(self) -> str:
        """Content hash of the full campaign definition."""
        return stable_hash({
            "name": self.name,
            "fn": self.fn,
            "tasks": [[t.task_id, t.params] for t in self.tasks],
        }, length=24)

    def resolve_fn(self) -> Callable[[Dict[str, Any]], Any]:
        return resolve_task_fn(self.fn)

    def task(self, task_id: str) -> TaskSpec:
        for t in self.tasks:
            if t.task_id == task_id:
                return t
        raise CampaignError(f"no task {task_id!r} in campaign {self.name!r}")


# ---------------------------------------------------------------------------
# outcomes
# ---------------------------------------------------------------------------

@dataclass
class TaskOutcome:
    """Terminal record of one task.

    ``failures`` lists every failed attempt (worker crash, watchdog
    timeout, poison error) that preceded the terminal state, so a task
    that crashed twice and then completed still tells the whole story.
    """

    task_id: str
    status: str
    attempts: int = 1
    elapsed: float = 0.0
    label: str = ""
    result: Optional[Any] = None
    skip: Optional[Dict[str, Any]] = None
    failures: List[Dict[str, Any]] = field(default_factory=list)
    #: True when the outcome was replayed from a journal, not executed.
    replayed: bool = False

    def to_dict(self) -> dict:
        return {
            "task_id": self.task_id,
            "status": self.status,
            "attempts": self.attempts,
            "elapsed": self.elapsed,
            "label": self.label,
            "result": self.result,
            "skip": self.skip,
            "failures": list(self.failures),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any],
                  replayed: bool = False) -> "TaskOutcome":
        return cls(
            task_id=payload["task_id"],
            status=payload["status"],
            attempts=int(payload.get("attempts", 1)),
            elapsed=float(payload.get("elapsed", 0.0)),
            label=payload.get("label", ""),
            result=payload.get("result"),
            skip=payload.get("skip"),
            failures=list(payload.get("failures") or []),
            replayed=replayed,
        )


@dataclass
class CampaignResult:
    """Aggregate outcome of one campaign run (or resume).

    ``outcomes`` holds one entry per *terminal* task; an interrupted run
    leaves unfinished tasks absent, and :attr:`interrupted` is set.
    """

    campaign: str
    key: str
    outcomes: Dict[str, TaskOutcome] = field(default_factory=dict)
    order: List[str] = field(default_factory=list)
    interrupted: bool = False
    elapsed: float = 0.0

    def _by_status(self, status: str) -> List[TaskOutcome]:
        return [self.outcomes[tid] for tid in self.order
                if tid in self.outcomes
                and self.outcomes[tid].status == status]

    @property
    def completed(self) -> List[TaskOutcome]:
        return self._by_status(COMPLETED)

    @property
    def skipped(self) -> List[TaskOutcome]:
        return self._by_status(SKIPPED)

    @property
    def quarantined(self) -> List[TaskOutcome]:
        return self._by_status(QUARANTINED)

    @property
    def remaining(self) -> List[str]:
        """Task ids with no terminal outcome (interrupt leftovers)."""
        return [tid for tid in self.order if tid not in self.outcomes]

    @property
    def n_replayed(self) -> int:
        return sum(1 for o in self.outcomes.values() if o.replayed)

    @property
    def retries(self) -> int:
        """Total extra attempts spent across all tasks."""
        return sum(o.attempts - 1 for o in self.outcomes.values())

    def counts(self) -> Dict[str, int]:
        out = {status: 0 for status in TERMINAL_STATES}
        for outcome in self.outcomes.values():
            out[outcome.status] = out.get(outcome.status, 0) + 1
        return out

    def results(self) -> Dict[str, Any]:
        """``task_id -> result payload`` for the completed tasks."""
        return {o.task_id: o.result for o in self.completed}

    def trust_summary(self) -> Dict[str, float]:
        """Worst-case numerical-trust aggregate over completed results.

        Scans each completed task's result payload for the ``trust_*``
        extras the characterisation runner records (worst KCL residual,
        worst condition estimate, defended/certified solve counts — see
        :mod:`repro.analysis.trust`) and folds them into one campaign
        -level summary.  Returns ``{}`` when no completed result carries
        trust data, so untrusting task functions cost nothing.
        """
        residual_max = 0.0
        cond_max = 0.0
        defended = 0.0
        certified = 0.0
        found = 0
        for outcome in self.completed:
            payload = outcome.result
            if not isinstance(payload, dict):
                continue
            extras = payload.get("extras")
            source = extras if isinstance(extras, dict) else payload
            if "trust_certified_solves" not in source:
                continue
            found += 1
            residual_max = max(residual_max, float(
                source.get("trust_residual_norm_max", 0.0)))
            cond_max = max(cond_max, float(
                source.get("trust_cond_estimate_max", 0.0)))
            defended += float(source.get("trust_defended_solves", 0.0))
            certified += float(source.get("trust_certified_solves", 0.0))
        if not found:
            return {}
        return {
            "trust_residual_norm_max": residual_max,
            "trust_cond_estimate_max": cond_max,
            "trust_defended_solves": defended,
            "trust_certified_solves": certified,
            "trust_tasks": float(found),
        }

    def outcome(self, task_id: str) -> Optional[TaskOutcome]:
        return self.outcomes.get(task_id)

    def summary(self) -> str:
        counts = self.counts()
        parts = [f"{counts[COMPLETED]}/{len(self.order)} completed"]
        if self.n_replayed:
            parts.append(f"{self.n_replayed} replayed from journal")
        if counts[SKIPPED]:
            parts.append(f"{counts[SKIPPED]} skipped")
        if counts[QUARANTINED]:
            parts.append(f"{counts[QUARANTINED]} quarantined")
        if self.retries:
            parts.append(f"{self.retries} retried attempt(s)")
        if self.interrupted:
            parts.append(f"INTERRUPTED ({len(self.remaining)} remaining)")
        return f"campaign {self.campaign!r}: " + ", ".join(parts)

    def render(self) -> str:
        """Multi-line completion/skip/quarantine report."""
        lines = [self.summary()]
        for status, title in ((SKIPPED, "skipped (record-and-skip)"),
                              (QUARANTINED, "quarantined")):
            rows = self._by_status(status)
            if not rows:
                continue
            lines.append(f"  {title}:")
            for o in rows:
                label = o.label or o.task_id
                detail = ""
                if o.skip:
                    detail = (f" — {o.skip.get('error_type')}: "
                              f"{o.skip.get('reason')}")
                elif o.failures:
                    last = o.failures[-1]
                    detail = (f" — {last.get('kind')}: "
                              f"{last.get('detail')}")
                lines.append(f"    [{o.attempts} attempt(s)] {label}{detail}")
        if self.interrupted and self.remaining:
            lines.append(f"  not executed: {len(self.remaining)} task(s) "
                         "(resume with --resume)")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "kind": "campaign_result",
            "campaign": self.campaign,
            "key": self.key,
            "interrupted": self.interrupted,
            "elapsed": self.elapsed,
            "counts": self.counts(),
            "outcomes": [self.outcomes[tid].to_dict()
                         for tid in self.order if tid in self.outcomes],
            "remaining": self.remaining,
        }
