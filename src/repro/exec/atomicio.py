"""One atomic durable-write protocol for every store in the repo.

Three writers grew their own copy of the stage-then-rename dance (the
characterisation cache, the lint cache envelope, the journal's sibling
artifacts); this module is the single shared implementation the RV900
codemod rewrites bare writes to, and the instrumented boundary the
crash-injection harness (:mod:`repro.verify.crashcheck`) kills children
at.

The protocol, in order:

1. ``tempfile.mkstemp`` in the destination directory — same filesystem,
   so the final rename is atomic; a unique name per writer, so
   concurrent writers of the same key never interleave.
2. write the full text, flush.
3. ``os.fsync`` the staged file — the data must be on stable storage
   *before* the rename publishes it, otherwise a power cut can leave
   the new name pointing at unwritten blocks (the RV901 hazard).
4. ``os.replace`` onto the destination: readers see the old bytes or
   the new bytes, never a mixture, and the old value survives a crash
   at any earlier point.

Failures propagate as ``OSError`` after the staged file is removed;
callers own their degrade policy (the caches warn once and disable
themselves, the CLI surfaces the error).
"""

from __future__ import annotations

import contextlib
import os
import tempfile
from pathlib import Path
from typing import Callable, Optional, Union

#: The instrumented effect boundaries, in protocol order.  The crash
#: harness kills a child at each one and asserts reader-side recovery.
CRASHPOINTS = ("post-write", "pre-fsync", "pre-rename", "post-rename")

#: Test-only injection hook: called with the crashpoint name at each
#: boundary.  ``repro.verify.crashcheck`` installs an ``os._exit`` here
#: in child processes; production leaves it ``None`` (zero-cost check).
_CRASH_HOOK: Optional[Callable[[str], None]] = None


def _checkpoint(point: str) -> None:
    if _CRASH_HOOK is not None:
        _CRASH_HOOK(point)


def atomic_write_text(path: Union[str, Path], text: str, *,
                      encoding: str = "utf-8",
                      durable: bool = True) -> None:
    """Atomically replace ``path``'s contents with ``text``.

    Stages into a ``mkstemp`` sibling, fsyncs (unless ``durable=False``
    — only for stores whose loss is acceptable *and* detectable), then
    renames over the destination.  Raises ``OSError`` on failure with
    the staged file cleaned up; the destination is never left torn.
    """
    target = Path(path)
    fd, tmp_name = tempfile.mkstemp(dir=target.parent,
                                    prefix=f"{target.name}.",
                                    suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
            _checkpoint("post-write")
            handle.flush()
            _checkpoint("pre-fsync")
            if durable:
                os.fsync(handle.fileno())
        _checkpoint("pre-rename")
        os.replace(tmp_name, target)
        _checkpoint("post-rename")
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise
