"""Crash-safe campaign journal: an append-only JSONL checkpoint file.

Every terminal task outcome is appended as one JSON line and flushed +
fsync'd before the executor moves on, so a ``kill -9`` at any moment
loses at most the single record being written.  Appends are one
``write()`` call of one complete line; on POSIX, O_APPEND writes from
concurrent processes never interleave mid-line for these record sizes.

Replay is tolerant by construction: a torn trailing line (the crash
artefact) is ignored, and every record carries the campaign
:attr:`~repro.exec.campaign.Campaign.key` so a journal can only resume
the exact campaign definition that wrote it.
"""

from __future__ import annotations

import io
import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from .campaign import (
    COMPLETED,
    QUARANTINED,
    SKIPPED,
    Campaign,
    CampaignError,
    TaskOutcome,
)


class Journal:
    """Append-only JSONL journal for one (or more) campaign runs."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)

    def __repr__(self) -> str:
        return f"Journal({str(self.path)!r})"

    # -- writing ---------------------------------------------------------

    def append(self, record: Dict[str, Any]) -> None:
        """Durably append one record (single write + flush + fsync)."""
        record = dict(record)
        record.setdefault("ts", time.time())
        line = json.dumps(record, sort_keys=True) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())

    # -- reading ---------------------------------------------------------

    def replay(self) -> List[Dict[str, Any]]:
        """All well-formed records, tolerating a torn final line.

        A torn line *before* the end means the file was corrupted by
        something other than a crash-mid-append; replay stops there (the
        suffix cannot be trusted) rather than guessing.
        """
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return []
        records: List[Dict[str, Any]] = []
        for line in io.StringIO(text):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                break
            if isinstance(record, dict):
                records.append(record)
        return records

    def exists(self) -> bool:
        return self.path.exists()

    # -- campaign bookkeeping -------------------------------------------

    def begin(self, campaign: Campaign, workers: int,
              resumed: int = 0) -> None:
        self.append({
            "kind": "campaign_begin",
            "campaign": campaign.name,
            "key": campaign.key,
            "fn": campaign.fn,
            "n_tasks": len(campaign),
            "workers": workers,
            "resumed": resumed,
        })

    def task_end(self, key: str, outcome: TaskOutcome) -> None:
        record = {"kind": "task_end", "key": key}
        record.update(outcome.to_dict())
        self.append(record)

    def interrupted(self, key: str, signame: str, completed: int,
                    remaining: int) -> None:
        self.append({
            "kind": "campaign_interrupted",
            "key": key,
            "signal": signame,
            "completed": completed,
            "remaining": remaining,
        })

    def end(self, key: str, counts: Dict[str, int], elapsed: float,
            trust: Optional[Dict[str, float]] = None) -> None:
        record = {
            "kind": "campaign_end",
            "key": key,
            "counts": dict(counts),
            "elapsed": elapsed,
        }
        if trust:
            # Campaign-level numerical-trust summary (worst residual /
            # condition estimate over every completed solve).
            record["trust"] = dict(trust)
        self.append(record)

    def outcomes_for(self, key: str) -> Dict[str, TaskOutcome]:
        """Terminal outcomes previously journalled for campaign ``key``.

        Later records win (a resumed run may re-execute a task whose
        earlier record was, e.g., a quarantine after transient crashes).
        """
        outcomes: Dict[str, TaskOutcome] = {}
        for record in self.replay():
            if record.get("kind") != "task_end":
                continue
            if record.get("key") != key:
                continue
            try:
                outcome = TaskOutcome.from_dict(record, replayed=True)
            except (KeyError, TypeError, ValueError):
                continue
            outcomes[outcome.task_id] = outcome
        return outcomes


def journal_status(path: Union[str, Path]) -> Dict[str, Any]:
    """Summarise a journal file for ``repro campaign status``."""
    journal = Journal(path)
    records = journal.replay()
    if not records:
        raise CampaignError(f"no journal records at {path}")

    campaigns: Dict[str, Dict[str, Any]] = {}
    order: List[str] = []
    for record in records:
        key = record.get("key")
        if key is None:
            continue
        if key not in campaigns:
            campaigns[key] = {
                "key": key,
                "campaign": None,
                "n_tasks": None,
                "runs": 0,
                "statuses": {},          # task_id -> latest terminal status
                "interrupted": False,
                "ended": False,
            }
            order.append(key)
        entry = campaigns[key]
        kind = record.get("kind")
        if kind == "campaign_begin":
            entry["campaign"] = record.get("campaign")
            entry["n_tasks"] = record.get("n_tasks")
            entry["runs"] += 1
            entry["interrupted"] = False
            entry["ended"] = False
        elif kind == "task_end":
            # later records win: a resume may re-execute a task whose
            # earlier record was a transient quarantine
            entry["statuses"][record.get("task_id")] = record.get("status")
        elif kind == "campaign_interrupted":
            entry["interrupted"] = True
        elif kind == "campaign_end":
            entry["ended"] = True
    for entry in campaigns.values():
        counts = {COMPLETED: 0, SKIPPED: 0, QUARANTINED: 0}
        for status in entry.pop("statuses").values():
            if status in counts:
                counts[status] += 1
        entry["counts"] = counts
        entry["n_terminal"] = sum(counts.values())
    return {
        "path": str(path),
        "campaigns": [campaigns[k] for k in order],
    }


def render_status(status: Dict[str, Any]) -> str:
    """Human-readable ``repro campaign status`` report."""
    lines = [f"journal: {status['path']}"]
    for entry in status["campaigns"]:
        name = entry["campaign"] or "?"
        total = entry["n_tasks"]
        done = entry["counts"][COMPLETED]
        state = "complete" if entry["ended"] else (
            "interrupted" if entry["interrupted"] else "in progress/killed")
        lines.append(
            f"  {name} [{entry['key']}] — {state}, runs: {entry['runs']}"
        )
        lines.append(
            f"    {done}/{total if total is not None else '?'} completed, "
            f"{entry['counts'][SKIPPED]} skipped, "
            f"{entry['counts'][QUARANTINED]} quarantined "
            f"({entry['n_terminal']} terminal records)"
        )
    return "\n".join(lines)
