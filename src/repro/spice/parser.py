"""SPICE netlist parser.

Grammar (case-insensitive; a practical subset of Berkeley SPICE):

* the first line is the title; ``*`` lines and ``;``/``$``-tails are
  comments; ``+`` continues the previous card;
* element cards by leading letter::

    Rxxx n1 n2 value
    Cxxx n1 n2 value [IC=volts]
    Vxxx n+ n- [DC] value
    Vxxx n+ n- PULSE(v1 v2 td tr tf pw [per])
    Vxxx n+ n- PWL(t1 v1 t2 v2 ...)
    Ixxx n+ n- <same drive forms>
    Sxxx p n cp cn [RON=] [ROFF=] [VON=] [VOFF=]
    Mxxx d g s modelname [NFIN=int]
    Yxxx free pinned modelname [STATE=P|AP]
    Xxxx node1 ... nodeN subcktname

* directives::

    .SUBCKT name port1 ... portN   /  .ENDS [name]
    .MODEL name NFET|PFET ([VTH0=] [SLOPE=] [ISPEC=] [DIBL=])
    .MODEL name MTJ ([TMR0=] [RA=] [VHALF=] [JC=] [DIAMETER=] ...)
    .PARAM name=value ...
    .IC V(node)=volts ...
    .TRAN tstop | .TRAN tstep tstop     (tstep = initial-step hint)
    .DC srcname start stop step
    .OP
    .MEASURE TRAN name MAX|MIN|AVG|PP|INTEG v(node)
    .MEASURE TRAN name WHEN v(node)=value [RISE|FALL]
    .END

``{param}`` references in any numeric position are substituted from
``.PARAM`` definitions.  Two FinFET models are built in: ``NFET20HP``
and ``PFET20HP`` (the calibrated cards of :mod:`repro.devices.ptm20`);
``MTJ_TABLE1`` likewise for the MTJ.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import NetlistError
from ..circuit import (
    Capacitor,
    Circuit,
    CurrentSource,
    Resistor,
    SubCircuit,
    VoltageControlledSwitch,
    VoltageSource,
)
from ..circuit.waveforms import PiecewiseLinear, Pulse, Waveform
from ..devices.finfet import FinFET, FinFETParams
from ..devices.mtj import MTJ, MTJParams, MTJState, MTJ_TABLE1
from ..devices.ptm20 import NFET_20NM_HP, PFET_20NM_HP
from ..units import parse_quantity


@dataclass(frozen=True)
class TranCard:
    """A ``.TRAN`` request."""

    t_stop: float
    t_step: Optional[float] = None


@dataclass(frozen=True)
class DcCard:
    """A ``.DC`` source sweep request."""

    source: str
    start: float
    stop: float
    step: float

    def values(self) -> List[float]:
        if self.step <= 0:
            raise NetlistError(".DC step must be positive")
        out = []
        v = self.start
        # Inclusive of the endpoint within half a step (SPICE behaviour).
        while v <= self.stop + 0.5 * self.step:
            out.append(v)
            v += self.step
        return out


@dataclass(frozen=True)
class OpCard:
    """A ``.OP`` request."""


@dataclass(frozen=True)
class MeasureCard:
    """A ``.MEASURE TRAN`` post-processing request.

    Supported forms::

        .measure tran <name> MAX|MIN|AVG|PP v(node)
        .measure tran <name> INTEG v(node)
        .measure tran <name> WHEN v(node)=<value> [RISE|FALL]

    Evaluated by the runner against the deck's last transient result.
    """

    name: str
    kind: str                  # max / min / avg / pp / integ / when
    node: str
    target: Optional[float] = None
    direction: str = "rise"


AnalysisCard = Union[TranCard, DcCard, OpCard]


@dataclass
class ParsedDeck:
    """Everything extracted from one netlist."""

    title: str
    circuit: Circuit
    analyses: List[AnalysisCard] = field(default_factory=list)
    measures: List[MeasureCard] = field(default_factory=list)
    ic: Dict[str, float] = field(default_factory=dict)
    models: Dict[str, object] = field(default_factory=dict)
    subcircuits: Dict[str, SubCircuit] = field(default_factory=dict)
    params: Dict[str, float] = field(default_factory=dict)


#: Built-in device model cards usable without a .MODEL definition.
BUILTIN_MODELS: Dict[str, object] = {
    "nfet20hp": NFET_20NM_HP,
    "pfet20hp": PFET_20NM_HP,
    "mtj_table1": MTJ_TABLE1,
}

_PAREN_RE = re.compile(r"(\w+)\s*\((.*)\)\s*$", re.S)


def parse_file(path: "str | Path") -> ParsedDeck:
    """Parse a netlist file."""
    return parse_deck(Path(path).read_text())


def parse_deck(text: str) -> ParsedDeck:
    """Parse netlist ``text`` into a :class:`ParsedDeck`."""
    lines = _logical_lines(text)
    if not lines:
        raise NetlistError("empty deck")
    title = lines[0].strip()
    parser = _DeckParser(title)
    for line in lines[1:]:
        parser.feed(line)
    return parser.finish()


def _logical_lines(text: str) -> List[str]:
    """Strip comments, join ``+`` continuations."""
    out: List[str] = []
    for raw in text.splitlines():
        line = raw.split(";")[0].split("$")[0].rstrip()
        if not line.strip():
            continue
        stripped = line.strip()
        if stripped.startswith("*"):
            if not out:
                out.append("")  # a comment before any title: keep slot
            continue
        if stripped.startswith("+"):
            if not out:
                raise NetlistError("continuation line before any card")
            out[-1] += " " + stripped[1:].strip()
        else:
            out.append(stripped)
    return out


def _tokenize(line: str) -> List[str]:
    """Split a card into tokens, keeping ``fn(...)`` groups intact."""
    tokens: List[str] = []
    buf = ""
    depth = 0
    for ch in line:
        if ch == "(":
            depth += 1
            buf += ch
        elif ch == ")":
            depth -= 1
            buf += ch
        elif ch.isspace() and depth == 0:
            if buf:
                tokens.append(buf)
                buf = ""
        else:
            buf += ch
    if depth != 0:
        raise NetlistError(f"unbalanced parentheses: {line!r}")
    if buf:
        tokens.append(buf)
    return tokens


class _DeckParser:
    def __init__(self, title: str):
        self.deck = ParsedDeck(title=title, circuit=Circuit(title))
        self._current_sub: Optional[SubCircuit] = None
        self._ended = False

    # -- dispatch ---------------------------------------------------------
    def feed(self, line: str) -> None:
        if self._ended:
            return
        tokens = _tokenize(line)
        if not tokens:
            return
        head = tokens[0].lower()
        if head.startswith("."):
            self._directive(head, tokens, line)
        else:
            self._element(head, tokens, line)

    def finish(self) -> ParsedDeck:
        if self._current_sub is not None:
            raise NetlistError(
                f".subckt {self._current_sub.name} never closed"
            )
        return self.deck

    # -- numeric helpers ----------------------------------------------------
    def _value(self, token: str) -> float:
        token = token.strip()
        if token.startswith("{") and token.endswith("}"):
            name = token[1:-1].strip().lower()
            try:
                return self.deck.params[name]
            except KeyError:
                raise NetlistError(f"undefined parameter: {name}") from None
        return parse_quantity(token)

    def _kwargs(self, tokens: Sequence[str]) -> Dict[str, str]:
        out = {}
        for token in tokens:
            if "=" not in token:
                raise NetlistError(f"expected key=value, got {token!r}")
            key, _, value = token.partition("=")
            out[key.lower()] = value
        return out

    # -- directives -----------------------------------------------------------
    def _directive(self, head: str, tokens: List[str], line: str) -> None:
        if head == ".end":
            self._ended = True
        elif head == ".subckt":
            if self._current_sub is not None:
                raise NetlistError("nested .subckt is not supported")
            if len(tokens) < 3:
                raise NetlistError(".subckt needs a name and ports")
            self._current_sub = SubCircuit(tokens[1].lower(),
                                           [t.lower() for t in tokens[2:]])
        elif head == ".ends":
            if self._current_sub is None:
                raise NetlistError(".ends without .subckt")
            self.deck.subcircuits[self._current_sub.name] = self._current_sub
            self._current_sub = None
        elif head == ".param":
            for token in tokens[1:]:
                key, _, value = token.partition("=")
                if not value:
                    raise NetlistError(f"malformed .param: {token!r}")
                self.deck.params[key.lower()] = self._value(value)
        elif head == ".model":
            self._model(tokens, line)
        elif head == ".ic":
            for token in tokens[1:]:
                match = re.match(r"(?i)v\(([^)]+)\)=(.+)", token)
                if not match:
                    raise NetlistError(f"malformed .ic entry: {token!r}")
                self.deck.ic[match.group(1).lower()] = self._value(
                    match.group(2)
                )
        elif head == ".tran":
            values = [self._value(t) for t in tokens[1:]]
            if len(values) == 1:
                self.deck.analyses.append(TranCard(t_stop=values[0]))
            elif len(values) >= 2:
                self.deck.analyses.append(
                    TranCard(t_stop=values[1], t_step=values[0])
                )
            else:
                raise NetlistError(".tran needs a stop time")
        elif head == ".dc":
            if len(tokens) != 5:
                raise NetlistError(".dc needs: source start stop step")
            self.deck.analyses.append(DcCard(
                source=tokens[1].lower(),
                start=self._value(tokens[2]),
                stop=self._value(tokens[3]),
                step=self._value(tokens[4]),
            ))
        elif head == ".op":
            self.deck.analyses.append(OpCard())
        elif head in (".measure", ".meas"):
            self._measure(tokens)
        else:
            raise NetlistError(f"unsupported directive: {head}")

    def _measure(self, tokens: List[str]) -> None:
        if len(tokens) < 5 or tokens[1].lower() != "tran":
            raise NetlistError(
                ".measure needs: tran <name> <MAX|MIN|AVG|PP|INTEG|WHEN>"
                " v(node)[=value]"
            )
        name = tokens[2].lower()
        kind = tokens[3].lower()
        expr = tokens[4]
        if kind in ("max", "min", "avg", "pp", "integ"):
            match = re.match(r"(?i)v\(([^)]+)\)$", expr)
            if not match:
                raise NetlistError(f"malformed .measure probe: {expr!r}")
            self.deck.measures.append(MeasureCard(
                name=name, kind=kind, node=match.group(1).lower(),
            ))
        elif kind == "when":
            match = re.match(r"(?i)v\(([^)]+)\)=(.+)$", expr)
            if not match:
                raise NetlistError(
                    f"malformed .measure WHEN expression: {expr!r}"
                )
            direction = "rise"
            if len(tokens) > 5:
                direction = tokens[5].lower()
                if direction not in ("rise", "fall"):
                    raise NetlistError(
                        f"WHEN direction must be RISE or FALL, "
                        f"got {tokens[5]!r}"
                    )
            self.deck.measures.append(MeasureCard(
                name=name, kind="when", node=match.group(1).lower(),
                target=self._value(match.group(2)), direction=direction,
            ))
        else:
            raise NetlistError(f"unsupported .measure kind: {kind}")

    def _model(self, tokens: List[str], line: str) -> None:
        if len(tokens) < 3:
            raise NetlistError(".model needs a name and a type")
        name = tokens[1].lower()
        rest = line.split(None, 2)[2]
        match = _PAREN_RE.match(rest.strip())
        if match:
            kind = match.group(1).lower()
            body = match.group(2)
            kwargs = self._kwargs(_tokenize(body)) if body.strip() else {}
        else:
            kind = tokens[2].lower()
            kwargs = self._kwargs(tokens[3:])

        if kind in ("nfet", "pfet"):
            base = NFET_20NM_HP if kind == "nfet" else PFET_20NM_HP
            card = base.with_(
                vth0=self._opt(kwargs, "vth0", base.vth0),
                slope_factor=self._opt(kwargs, "slope", base.slope_factor),
                i_spec=self._opt(kwargs, "ispec", base.i_spec),
                dibl=self._opt(kwargs, "dibl", base.dibl),
                label=name,
            )
        elif kind == "mtj":
            base = MTJ_TABLE1
            card = base.with_(
                tmr0=self._opt(kwargs, "tmr0", base.tmr0),
                ra_product=self._opt(kwargs, "ra", base.ra_product),
                v_half=self._opt(kwargs, "vhalf", base.v_half),
                jc=self._opt(kwargs, "jc", base.jc),
                diameter=self._opt(kwargs, "diameter", base.diameter),
                tau0=self._opt(kwargs, "tau0", base.tau0),
                label=name,
            )
        else:
            raise NetlistError(f"unsupported model type: {kind}")
        self.deck.models[name] = card

    def _opt(self, kwargs: Dict[str, str], key: str,
             default: float) -> float:
        return self._value(kwargs[key]) if key in kwargs else default

    # -- elements -------------------------------------------------------------
    def _target(self):
        return self._current_sub if self._current_sub is not None \
            else self.deck.circuit

    def _element(self, head: str, tokens: List[str], line: str) -> None:
        letter = head[0]
        name = tokens[0].lower()
        builder = {
            "r": self._resistor,
            "c": self._capacitor,
            "v": self._vsource,
            "i": self._isource,
            "s": self._switch,
            "m": self._finfet,
            "y": self._mtj,
            "x": self._subckt_instance,
        }.get(letter)
        if builder is None:
            raise NetlistError(f"unsupported element card: {tokens[0]!r}")
        builder(name, [t for t in tokens[1:]], line)

    def _resistor(self, name, args, line):
        if len(args) != 3:
            raise NetlistError(f"{name}: R needs 2 nodes + value")
        self._target().add(Resistor(name, args[0].lower(), args[1].lower(),
                                    self._value(args[2])))

    def _capacitor(self, name, args, line):
        if len(args) < 3:
            raise NetlistError(f"{name}: C needs 2 nodes + value")
        ic = None
        rest = args[3:]
        if rest:
            kwargs = self._kwargs(rest)
            if "ic" in kwargs:
                ic = self._value(kwargs["ic"])
        self._target().add(Capacitor(name, args[0].lower(), args[1].lower(),
                                     self._value(args[2]), ic=ic))

    def _drive(self, name, args) -> Tuple[float, Optional[Waveform]]:
        """Parse the source drive: DC level, PULSE(...) or PWL(...)."""
        drive = args[:]
        if drive and drive[0].lower() == "dc":
            drive = drive[1:]
        if not drive:
            raise NetlistError(f"{name}: source needs a drive")
        spec = drive[0]
        match = _PAREN_RE.match(spec)
        if match is None:
            return self._value(spec), None
        fn = match.group(1).lower()
        values = [self._value(v) for v in
                  re.split(r"[\s,]+", match.group(2).strip()) if v]
        if fn == "pulse":
            if len(values) < 6:
                raise NetlistError(
                    f"{name}: PULSE needs v1 v2 td tr tf pw [per]"
                )
            v1, v2, td, tr, tf, pw = values[:6]
            per = values[6] if len(values) > 6 else None
            wave = Pulse(v1, v2, delay=td, rise=max(tr, 1e-15),
                         fall=max(tf, 1e-15), width=pw, period=per)
            return v1, wave
        if fn == "pwl":
            if len(values) < 2 or len(values) % 2:
                raise NetlistError(f"{name}: PWL needs t/v pairs")
            points = list(zip(values[0::2], values[1::2]))
            return points[0][1], PiecewiseLinear(points)
        raise NetlistError(f"{name}: unsupported drive {fn!r}")

    def _vsource(self, name, args, line):
        if len(args) < 3:
            raise NetlistError(f"{name}: V needs 2 nodes + drive")
        dc, wave = self._drive(name, args[2:])
        self._target().add(VoltageSource(name, args[0].lower(),
                                         args[1].lower(), dc=dc,
                                         waveform=wave))

    def _isource(self, name, args, line):
        if len(args) < 3:
            raise NetlistError(f"{name}: I needs 2 nodes + drive")
        dc, wave = self._drive(name, args[2:])
        self._target().add(CurrentSource(name, args[0].lower(),
                                         args[1].lower(), dc=dc,
                                         waveform=wave))

    def _switch(self, name, args, line):
        if len(args) < 4:
            raise NetlistError(f"{name}: S needs 4 nodes")
        kwargs = self._kwargs(args[4:]) if len(args) > 4 else {}
        self._target().add(VoltageControlledSwitch(
            name, args[0].lower(), args[1].lower(), args[2].lower(),
            args[3].lower(),
            r_on=self._opt(kwargs, "ron", 1.0),
            r_off=self._opt(kwargs, "roff", 1e12),
            v_on=self._opt(kwargs, "von", 1.0),
            v_off=self._opt(kwargs, "voff", 0.0),
        ))

    def _lookup_model(self, name: str, expected: type):
        model = self.deck.models.get(name, BUILTIN_MODELS.get(name))
        if model is None:
            raise NetlistError(f"unknown model: {name}")
        if not isinstance(model, expected):
            raise NetlistError(
                f"model {name} is not a {expected.__name__} card"
            )
        return model

    def _finfet(self, name, args, line):
        if len(args) < 4:
            raise NetlistError(f"{name}: M needs d g s + model")
        kwargs = self._kwargs(args[4:]) if len(args) > 4 else {}
        params = self._lookup_model(args[3].lower(), FinFETParams)
        nfin = int(self._opt(kwargs, "nfin", 1))
        self._target().add(FinFET(name, args[0].lower(), args[1].lower(),
                                  args[2].lower(), params, nfin))

    def _mtj(self, name, args, line):
        if len(args) < 2:
            raise NetlistError(f"{name}: Y(MTJ) needs free + pinned nodes")
        model_name = args[2].lower() if len(args) > 2 and "=" not in args[2] \
            else "mtj_table1"
        kw_start = 3 if (len(args) > 2 and "=" not in args[2]) else 2
        kwargs = self._kwargs(args[kw_start:]) if len(args) > kw_start else {}
        params = self._lookup_model(model_name, MTJParams)
        state_token = kwargs.get("state", "p").upper()
        try:
            state = MTJState(state_token)
        except ValueError:
            raise NetlistError(
                f"{name}: state must be P or AP, got {state_token!r}"
            ) from None
        self._target().add(MTJ(name, args[0].lower(), args[1].lower(),
                               params, state))

    def _subckt_instance(self, name, args, line):
        if len(args) < 2:
            raise NetlistError(f"{name}: X needs nodes + subckt name")
        sub_name = args[-1].lower()
        sub = self.deck.subcircuits.get(sub_name)
        if sub is None:
            raise NetlistError(f"unknown subcircuit: {sub_name}")
        nodes = [a.lower() for a in args[:-1]]
        if len(nodes) != len(sub.ports):
            raise NetlistError(
                f"{name}: {sub_name} has {len(sub.ports)} ports, "
                f"got {len(nodes)} nodes"
            )
        if self._current_sub is not None:
            raise NetlistError(
                "subcircuit instances inside .subckt are not supported"
            )
        sub.instantiate(self.deck.circuit, name,
                        dict(zip(sub.ports, nodes)))
