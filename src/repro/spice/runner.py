"""Execute the analysis cards of a parsed SPICE deck."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from ..errors import AnalysisError
from ..analysis import dc_sweep, operating_point, transient
from ..analysis.results import Solution, TransientResult
from ..analysis.sweep import SweepResult
from ..analysis.transient import TransientOptions
from .parser import DcCard, MeasureCard, OpCard, ParsedDeck, TranCard

AnalysisResult = Union[Solution, TransientResult, SweepResult]


@dataclass
class DeckResults:
    """Results of every analysis card, in deck order."""

    deck: ParsedDeck
    results: List[AnalysisResult] = field(default_factory=list)
    measurements: "dict[str, Optional[float]]" = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index: int) -> AnalysisResult:
        return self.results[index]

    def transients(self) -> List[TransientResult]:
        return [r for r in self.results if isinstance(r, TransientResult)]

    def operating_points(self) -> List[Solution]:
        return [r for r in self.results if isinstance(r, Solution)]

    def sweeps(self) -> List[SweepResult]:
        return [r for r in self.results if isinstance(r, SweepResult)]


def run_deck(deck: ParsedDeck,
             transient_options: Optional[TransientOptions] = None,
             lint: bool = True) -> DeckResults:
    """Run each ``.OP`` / ``.DC`` / ``.TRAN`` card of ``deck``.

    ``.IC`` entries apply to every analysis; a ``.TRAN`` card's optional
    step hint is translated into the integrator's initial step.

    Before the first analysis the flattened circuit is passed through
    the static analyser (:func:`repro.verify.assert_clean`); an
    error-severity finding raises
    :class:`~repro.errors.VerificationError` instead of letting the
    solver fail cryptically.  Disable with ``lint=False`` or the
    ``REPRO_LINT=0`` environment escape hatch.
    """
    if not deck.analyses:
        raise AnalysisError("deck has no analysis cards (.op/.dc/.tran)")
    if lint:
        from ..verify import assert_clean
        assert_clean(deck.circuit, target=deck.title or "deck")
    out = DeckResults(deck=deck)
    ic = deck.ic or None
    for card in deck.analyses:
        if isinstance(card, OpCard):
            out.results.append(operating_point(deck.circuit, ic=ic))
        elif isinstance(card, DcCard):
            out.results.append(
                dc_sweep(deck.circuit, card.source, card.values(), ic=ic)
            )
        elif isinstance(card, TranCard):
            options = transient_options
            if options is None and card.t_step is not None:
                options = TransientOptions(dt_initial=card.t_step)
            out.results.append(
                transient(deck.circuit, card.t_stop, ic=ic,
                          options=options)
            )
        else:  # pragma: no cover - parser emits only the above
            raise AnalysisError(f"unknown analysis card: {card!r}")
    if deck.measures:
        transients = out.transients()
        if not transients:
            raise AnalysisError(".measure cards need a .tran analysis")
        out.measurements = {
            card.name: _evaluate_measure(card, transients[-1])
            for card in deck.measures
        }
    return out


def _evaluate_measure(card: MeasureCard, result) -> Optional[float]:
    """Evaluate one .MEASURE card against a transient result."""
    import numpy as np

    if card.kind == "when":
        return result.crossing_time(card.node, card.target,
                                    direction=card.direction)
    wave = result.voltage(card.node)
    if card.kind == "max":
        return float(np.max(wave))
    if card.kind == "min":
        return float(np.min(wave))
    if card.kind == "pp":
        return float(np.max(wave) - np.min(wave))
    if card.kind == "avg":
        span = float(result.time[-1] - result.time[0])
        if span <= 0:
            return float(wave[0])
        return float(np.trapezoid(wave, result.time) / span)
    if card.kind == "integ":
        return float(np.trapezoid(wave, result.time))
    raise AnalysisError(f"unknown .measure kind: {card.kind}")
