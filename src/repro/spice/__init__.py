"""SPICE-deck front end.

Parses classic SPICE netlists (the lingua franca of the paper's domain)
into :class:`repro.circuit.Circuit` objects and executes their analysis
cards with :mod:`repro.analysis`:

* elements: ``R``, ``C`` (with ``IC=``), ``V``/``I`` (DC / ``PULSE`` /
  ``PWL``), ``S`` (voltage-controlled switch), ``M`` (FinFET, via
  ``.MODEL`` cards or the built-in 20 nm cards), ``Y`` (MTJ macromodel)
  and ``X`` subcircuit instances;
* directives: ``.SUBCKT``/``.ENDS``, ``.MODEL``, ``.PARAM``, ``.IC``,
  ``.TRAN``, ``.DC``, ``.OP``, ``.END``, comments and ``+`` line
  continuation.

Entry points: :func:`parse_deck` (text -> :class:`ParsedDeck`) and
:func:`run_deck` (execute every analysis card).
"""

from .parser import ParsedDeck, parse_deck, parse_file
from .runner import DeckResults, run_deck

__all__ = [
    "ParsedDeck",
    "parse_deck",
    "parse_file",
    "DeckResults",
    "run_deck",
]
