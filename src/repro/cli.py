"""Command-line interface: regenerate any paper artefact from a shell.

Usage::

    python -m repro table1
    python -m repro fig3 --points 21
    python -m repro fig7a
    python -m repro fig9 --panel b
    python -m repro characterize --kind nv --wordlines 512
    python -m repro bet --n-rw 100 --wordlines 512 [--store-free]
    python -m repro snm [--read] [--wl-underdrive 0.1]
    python -m repro retention
    python -m repro lint examples/decks/*.sp nv 6t [--format sarif]
    python -m repro lint-source src/repro [--format sarif]
    python -m repro equiv run --strict      # solver-equivalence gate
    python -m repro equiv update            # refreeze the golden corpus
    python -m repro diagnose failure.json   # or --demo
    python -m repro chaos --target nv --faults 20 [--json report.json]
    python -m repro chaos --executor --workers 2
    python -m repro chaos --crashpoints     # crash-safety validation
    python -m repro chaos --serve           # serving-layer chaos suite
    python -m repro serve --port 8023 --journal serve.jsonl
    python -m repro campaign run demo --workers 2 --journal run.jsonl
    python -m repro campaign resume demo --journal run.jsonl
    python -m repro campaign status run.jsonl
    python -m repro fig7b --workers 4 --journal fig7b.jsonl

Every subcommand prints the same rows/series the paper reports; see
``benchmarks/`` for the timed versions with archived artifacts.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

from .cells import PowerDomain
from .pg.modes import OperatingConditions
from .pg.sequences import Architecture
from .units import format_eng


def _conditions(args) -> OperatingConditions:
    cond = OperatingConditions()
    overrides = {}
    if getattr(args, "frequency", None):
        overrides["frequency"] = float(args.frequency)
    if getattr(args, "wl_underdrive", None):
        overrides["wl_underdrive"] = float(args.wl_underdrive)
    return cond.with_(**overrides) if overrides else cond


def _domain(args) -> PowerDomain:
    return PowerDomain(
        n_wordlines=getattr(args, "wordlines", 512),
        word_bits=getattr(args, "word_bits", 32),
    )


def _cmd_table1(args) -> int:
    from .experiments import run_table1

    print(run_table1(_conditions(args)).render())
    return 0


def _cmd_fig1(args) -> int:
    from .experiments import ExperimentContext, run_fig1

    ctx = ExperimentContext(cond=_conditions(args))
    print(run_fig1(ctx, _domain(args)).render())
    return 0


def _cmd_fig3(args) -> int:
    from .experiments import run_fig3

    print(run_fig3(_conditions(args), _domain(args),
                   points=args.points).render())
    return 0


def _cmd_fig4(args) -> int:
    from .experiments import run_fig4

    print(run_fig4(_conditions(args), _domain(args)).render())
    return 0


def _cmd_fig5(args) -> int:
    from .experiments import run_fig5

    print(run_fig5(_conditions(args)).render())
    return 0


def _cmd_fig6(args) -> int:
    from .experiments import ExperimentContext, run_fig6

    ctx = ExperimentContext(cond=_conditions(args))
    print(run_fig6(ctx, _domain(args)).render())
    return 0


def _campaign_kwargs(args) -> dict:
    """``--workers/--journal`` pass-through for campaign-aware runners."""
    return {"workers": getattr(args, "workers", None),
            "journal": getattr(args, "journal", None)}


def _cmd_fig7(args, panel: str) -> int:
    from .experiments import (
        ExperimentContext,
        run_fig7a,
        run_fig7b,
        run_fig7c,
    )

    ctx = ExperimentContext(cond=_conditions(args))
    runner = {"a": run_fig7a, "b": run_fig7b, "c": run_fig7c}[panel]
    if panel == "b":
        print(runner(ctx, **_campaign_kwargs(args)).render())
    else:
        print(runner(ctx, _domain(args), **_campaign_kwargs(args)).render())
    return 0


def _cmd_fig8(args) -> int:
    from .experiments import ExperimentContext, run_fig8

    ctx = ExperimentContext(cond=_conditions(args))
    print(run_fig8(ctx, _domain(args), **_campaign_kwargs(args)).render())
    return 0


def _cmd_fig9(args) -> int:
    from .experiments import ExperimentContext, run_fig9

    ctx = ExperimentContext(cond=_conditions(args))
    print(run_fig9(ctx, panel=args.panel,
                   **_campaign_kwargs(args)).render())
    return 0


def _cmd_characterize(args) -> int:
    from .characterize import characterize_cell

    result = characterize_cell(args.kind, _conditions(args), _domain(args))
    print(result.to_json())
    return 0


def _cmd_bet(args) -> int:
    from .experiments import ExperimentContext
    from .pg.bet import break_even_time

    ctx = ExperimentContext(cond=_conditions(args))
    model = ctx.energy_model(_domain(args))
    arch = Architecture(args.architecture)
    result = break_even_time(model, arch, n_rw=args.n_rw,
                             t_sl=args.t_sl, store_free=args.store_free)
    print(f"architecture:     {arch.value}")
    print(f"n_RW:             {result.n_rw}")
    print(f"store-free:       {args.store_free}")
    print(f"overhead energy:  {format_eng(result.overhead_energy, 'J')}")
    print(f"saving power:     {format_eng(result.saving_power, 'W')}")
    print(f"break-even time:  {format_eng(result.bet, 's')}")
    return 0


def _cmd_snm(args) -> int:
    from .characterize.snm import butterfly_curve

    curve = butterfly_curve(_conditions(args), read_mode=args.read)
    print(f"{curve.mode} SNM: {curve.snm * 1e3:.1f} mV "
          f"(lobes: {curve.lobe_margins[0] * 1e3:.1f} / "
          f"{curve.lobe_margins[1] * 1e3:.1f} mV)")
    return 0


def _cmd_variability(args) -> int:
    from .characterize.variability import (
        read_snm_distribution,
        store_yield_analysis,
    )

    cond = _conditions(args)
    yield_result = store_yield_analysis(cond, _domain(args),
                                        n_samples=args.samples,
                                        **_campaign_kwargs(args))
    print(f"store-yield Monte Carlo ({args.samples} samples):")
    print(f"  switching yield (I > Ic):   "
          f"{yield_result.switching_yield:.1%}")
    print(f"  full-margin yield (>= "
          f"{yield_result.target_margin:g} x Ic): "
          f"{yield_result.margin_yield:.1%}")
    print(f"  margin p1 / p50:            "
          f"{yield_result.percentile(1):.2f} / "
          f"{yield_result.percentile(50):.2f} x Ic")
    if yield_result.n_failed:
        print(f"  !! {yield_result.n_failed} sample(s) skipped after "
              "recovery-ladder exhaustion (counted as failing)")
    snm = read_snm_distribution(cond, n_samples=args.samples,
                                **_campaign_kwargs(args))
    print(f"read-SNM Monte Carlo: mean {snm.mean * 1e3:.0f} mV, "
          f"sigma {snm.std * 1e3:.0f} mV, "
          f"bistable yield {snm.stability_yield:.1%}")
    if snm.n_failed:
        print(f"  !! {snm.n_failed} sample(s) skipped after "
              "recovery-ladder exhaustion (counted as unstable)")
    return 0


def _cmd_ff(args) -> int:
    from .characterize.ff_runner import characterize_nvff
    from .pg.registers import RegisterBankModel

    ff = characterize_nvff(_conditions(args))
    print(ff.to_json())
    bank = RegisterBankModel(ff, num_ffs=args.bits)
    print(f"\n{args.bits}-bit register bank:")
    print(f"  idle power:      {format_eng(bank.idle_power(), 'W')}")
    print(f"  shutdown power:  {format_eng(bank.shutdown_power(), 'W')}")
    print(f"  gating overhead: {format_eng(bank.gating_overhead, 'J')}")
    print(f"  break-even time: "
          f"{format_eng(bank.break_even_time(), 's')}")
    return 0


def _cmd_wer(args) -> int:
    from .devices.mtj import MTJ_TABLE1
    from .units import parse_quantity

    duration = parse_quantity(args.duration)
    ic = MTJ_TABLE1.critical_current
    print(f"store window: {format_eng(duration, 's')}, "
          f"Ic = {format_eng(ic, 'A')}")
    for mult in (1.1, 1.2, 1.5, 2.0, 3.0):
        wer = MTJ_TABLE1.write_error_rate(mult * ic, duration)
        print(f"  I = {mult:.1f} x Ic: WER = {wer:.3g}")
    required = MTJ_TABLE1.required_current_for_wer(duration, args.target)
    print(f"WER <= {args.target:g} needs I >= "
          f"{format_eng(required, 'A')} ({required / ic:.2f} x Ic)")
    return 0


def _cmd_all(args) -> int:
    from .experiments import ExperimentContext
    from .experiments.summary import run_summary

    ctx = ExperimentContext(cond=_conditions(args))
    result = run_summary(ctx, include_figures=not args.scorecard_only)
    print(result.render())
    return 0 if result.all_passed else 1


#: Built-in lint targets: aliases for the shipped cell testbenches.
LINT_ALIASES = ("nv", "6t", "nvff", "array")


def _lint_alias_circuit(alias: str):
    """Build the circuit behind a ``repro lint`` cell alias."""
    from .characterize.testbench import build_cell_testbench

    if alias in ("nv", "6t"):
        return build_cell_testbench(alias).circuit
    if alias == "nvff":
        from .characterize.ff_runner import _build_ff_bench
        from .devices.mtj import MTJ_TABLE1
        from .devices.ptm20 import NFET_20NM_HP, PFET_20NM_HP

        circuit, _ff = _build_ff_bench(OperatingConditions(), NFET_20NM_HP,
                                       PFET_20NM_HP, MTJ_TABLE1)
        return circuit
    if alias == "array":
        from .cells.array import build_cell_array

        return build_cell_array(2, 2).circuit
    raise ValueError(f"unknown lint alias: {alias}")


def _lint_config(args):
    """Layered lint policy: pyproject < REPRO_LINT_DISABLE < --disable."""
    from .verify.config import effective_config

    disable = frozenset(
        token.strip() for spec in args.disable
        for token in spec.split(",") if token.strip()
    )
    return effective_config(cli_disable=disable)


def _list_rules() -> int:
    from .verify import REGISTRY

    for rule_ in REGISTRY.rules():
        print(f"{rule_.code}  {rule_.severity.value:7s} "
              f"[{rule_.scope}] {rule_.name}: {rule_.description}")
    return 0


def _apply_lint_baseline(args, report):
    """Baseline handling shared by ``lint`` and ``lint-source``.

    Returns ``(report, exit code | None)``: ``--update-baseline``
    records the current findings and short-circuits; ``--baseline``
    filters known findings out (reporting how many were suppressed and
    how many baseline entries are stale); ``--prune`` first deletes
    stale entries from the baseline file in place (it never adds any,
    so regressions stay visible — unlike re-recording).
    """
    from .verify import (apply_baseline, load_baseline, prune_baseline,
                         write_baseline)

    if getattr(args, "update_baseline", None):
        count = write_baseline(args.update_baseline, report)
        print(f"recorded {count} finding(s) into {args.update_baseline}")
        return report, 0
    if getattr(args, "prune", False):
        if not getattr(args, "baseline", None):
            print("repro lint: --prune requires --baseline FILE",
                  file=sys.stderr)
            return report, 2
        try:
            removed = prune_baseline(args.baseline, report)
        except ValueError as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return report, 2
        print(f"baseline: pruned {removed} stale entr(y/ies) from "
              f"{args.baseline}", file=sys.stderr)
    if getattr(args, "baseline", None):
        try:
            fingerprints = load_baseline(args.baseline)
        except ValueError as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return report, 2
        report, suppressed, stale = apply_baseline(report, fingerprints)
        if suppressed:
            print(f"baseline: suppressed {suppressed} known finding(s)",
                  file=sys.stderr)
        if stale:
            print(f"baseline: {stale} entr(y/ies) matched nothing — "
                  "fixed findings, prune them with --update-baseline",
                  file=sys.stderr)
    return report, None


def _cmd_lint(args) -> int:
    from .verify import (
        Report,
        render_json,
        render_sarif,
        render_text,
        verify_circuit,
        verify_deck_file,
    )

    if args.list_rules:
        return _list_rules()
    if not args.targets:
        print("repro lint: no targets (deck paths or one of "
              + "/".join(LINT_ALIASES) + ")", file=sys.stderr)
        return 2
    config = _lint_config(args)
    report = Report(target=", ".join(args.targets))
    for target in args.targets:
        if target in LINT_ALIASES:
            part = verify_circuit(_lint_alias_circuit(target),
                                  config=config, target=f"cell:{target}")
        else:
            try:
                part = verify_deck_file(target, config=config)
            except OSError as exc:
                print(f"repro lint: cannot read {target!r}: "
                      f"{exc.strerror or exc}", file=sys.stderr)
                return 2
        report.extend(part)
    report, short_circuit = _apply_lint_baseline(args, report)
    if short_circuit is not None:
        return short_circuit
    renderer = {"text": render_text, "json": render_json,
                "sarif": render_sarif}[args.format]
    print(renderer(report))
    failed = report.has_errors or (args.strict and report.warnings())
    return 1 if failed else 0


def _cmd_lint_source(args) -> int:
    from .verify import (
        default_source_paths,
        render_json,
        render_sarif,
        render_text,
        verify_source,
    )
    from .verify.cache import default_lint_cache_dir

    if args.list_rules:
        return _list_rules()
    paths = args.paths or default_source_paths()
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print("repro lint-source: no such path: "
              + ", ".join(repr(p) for p in missing), file=sys.stderr)
        return 2
    try:
        from .exec.registry import task_function_refs
        task_refs = task_function_refs()
    except ImportError:         # lint must not die on exec-side drift
        task_refs = []
    cache_dir = None if args.no_cache else default_lint_cache_dir()
    report = verify_source(paths, config=_lint_config(args),
                           cache_dir=cache_dir, jobs=args.jobs,
                           extra_task_refs=task_refs)
    report, short_circuit = _apply_lint_baseline(args, report)
    if short_circuit is not None:
        return short_circuit
    renderer = {"text": render_text, "json": render_json,
                "sarif": render_sarif}[args.format]
    print(renderer(report))
    failed = report.has_errors or (args.strict and report.warnings())
    return 1 if failed else 0


#: Rewrites to these subtrees can shift solver numerics; ``repro fix
#: --apply`` refuses to keep them unless the equivalence gate passes.
_EQUIV_RELEVANT = ("src/repro/analysis", "src/repro/devices",
                   "src/repro/circuit", "src/repro/recovery")


def _cmd_fix(args) -> int:
    from .verify import default_source_paths, verify_source
    from .verify import fix as fixmod
    from .verify.cache import default_lint_cache_dir

    if args.check and args.apply:
        print("repro fix: --check and --apply are mutually exclusive",
              file=sys.stderr)
        return 2
    paths = args.paths or default_source_paths()
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print("repro fix: no such path: "
              + ", ".join(repr(p) for p in missing), file=sys.stderr)
        return 2
    rules = None
    if args.rules:
        rules = {token.strip() for spec in args.rules
                 for token in spec.split(",") if token.strip()}
        unknown = rules - set(fixmod.FIXABLE_RULES)
        if unknown:
            print("repro fix: no codemod for "
                  + ", ".join(sorted(unknown)) + " (have: "
                  + ", ".join(fixmod.FIXABLE_RULES) + ")",
                  file=sys.stderr)
            return 2
    cache_dir = None if args.no_cache else default_lint_cache_dir()
    report = verify_source(paths, config=_lint_config(args),
                           cache_dir=cache_dir, jobs=args.jobs)
    report, short_circuit = _apply_lint_baseline(args, report)
    if short_circuit is not None:
        return short_circuit

    plans = fixmod.plan_fixes(report, rules)
    for plan in plans:
        print(plan.render())
    fixable = [p for p in plans if p.fixable]
    if not fixable:
        print("nothing mechanically fixable")
        return 0
    texts = fixmod.rewritten_texts(plans)

    if not args.apply:
        for path, (before, after) in texts.items():
            print(fixmod.unified_diff(path, before, after), end="")
        print(f"\n{len(fixable)} finding(s) mechanically fixable in "
              f"{len(texts)} file(s); re-run with --apply to rewrite")
        return 1

    for path, (_before, after) in texts.items():
        Path(path).write_text(after, encoding="utf-8")
        print(f"rewrote {path}")
    touchy = [p for p in texts
              if any(sub in p.replace("\\", "/")
                     for sub in _EQUIV_RELEVANT)]
    if touchy and not args.no_equiv:
        print("equivalence gate: solver-relevant module(s) rewritten "
              "(" + ", ".join(touchy) + "); running repro equiv run")
        # Fresh interpreter, not in-process: this process imported the
        # solver modules *before* the rewrite, so an in-process gate
        # would certify the stale code.  The timeout guards against a
        # rewrite that makes a solve spin instead of drift (a clean run
        # takes ~1 s).
        import subprocess
        try:
            gate = subprocess.run(
                [sys.executable, "-m", "repro", "equiv", "run",
                 "--strict"],
                capture_output=True, text=True, timeout=300,
                env=os.environ.copy())
            sys.stdout.write(gate.stdout)
            sys.stderr.write(gate.stderr)
            gate_ok = gate.returncode == 0
        except subprocess.TimeoutExpired:
            print("repro fix: equiv gate timed out after 300 s — "
                  "treating the rewrite as non-equivalent",
                  file=sys.stderr)
            gate_ok = False
        if not gate_ok:
            for path, (before, _after) in texts.items():
                Path(path).write_text(before, encoding="utf-8")
            print("equivalence gate FAILED — all rewrites reverted",
                  file=sys.stderr)
            return 2
        print("equivalence gate passed")
    print(f"applied {len(fixable)} fix(es) across {len(texts)} file(s)")
    return 0


def _cmd_equiv(args) -> int:
    # Imported lazily: equiv pulls in the characterisation benches.
    from .verify import equiv

    try:
        if args.action == "update":
            written = equiv.update_corpus(args.case or None,
                                          _corpus_dir(args))
            for path in written:
                print(f"wrote {path}")
            return 0
        report = equiv.run_suite(args.case or None, _corpus_dir(args),
                                 checks=not args.no_checks)
    except equiv.EquivError as exc:
        print(f"repro equiv: {exc}", file=sys.stderr)
        return 2
    print(report.render(verbose=args.action == "diff"))
    if args.json:
        Path(args.json).write_text(
            json.dumps(report.to_dict(), indent=2) + "\n",
            encoding="utf-8")
        print(f"report written to {args.json}")
    if report.ok:
        return 0
    # Without --strict, harness-level errors (e.g. a corpus entry not
    # yet generated) only warn; measured drift always fails the gate.
    drift = any(r.failures for r in report.cases if r.error is None)
    bad_checks = any(not c.ok for c in report.checks)
    if args.strict or drift or bad_checks:
        return 1
    return 0


def _corpus_dir(args):
    return Path(args.corpus) if args.corpus else None


def _cmd_diagnose(args) -> int:
    from .recovery import load_failure, render_failure

    if args.demo:
        return _diagnose_demo()
    if not args.path:
        print("repro diagnose: need a JSON failure dump (or --demo)",
              file=sys.stderr)
        return 2
    try:
        payload = load_failure(args.path)
    except OSError as exc:
        print(f"repro diagnose: cannot read {args.path!r}: "
              f"{exc.strerror or exc}", file=sys.stderr)
        return 2
    print(render_failure(payload))
    return 0


def _diagnose_demo() -> int:
    """Run a deliberately unsolvable deck and show the forensics live."""
    from .analysis import operating_point
    from .analysis.dc import OperatingPointOptions
    from .circuit import Circuit, Resistor, VoltageSource
    from .devices import FinFET, NFET_20NM_HP, PFET_20NM_HP
    from .errors import ConvergenceError
    from .recovery import render_failure
    from .recovery.ladder import RecoveryOptions

    # A latch with a starved Newton budget and every rung disabled: the
    # textbook hopeless solve.
    c = Circuit("diagnose-demo latch")
    c.add(VoltageSource("vdd", "vdd", "0", dc=0.9))
    c.add(Resistor("rload", "vdd", "q", 1e5))
    c.add(FinFET("pu1", "q", "qb", "vdd", PFET_20NM_HP))
    c.add(FinFET("pd1", "q", "qb", "0", NFET_20NM_HP))
    c.add(FinFET("pu2", "qb", "q", "vdd", PFET_20NM_HP))
    c.add(FinFET("pd2", "qb", "q", "0", NFET_20NM_HP))
    opts = OperatingPointOptions(recovery=RecoveryOptions(
        damping_factors=(0.5,), damping_iteration_boost=1,
        pseudo_transient=False, source_ramp=False))
    opts.newton.max_iterations = 2
    opts.gmin_steps = ()
    opts.source_steps = ()
    print("demo: solving a cross-coupled latch with a 2-iteration Newton "
          "budget and the ladder mostly disabled...\n")
    try:
        operating_point(c, options=opts)
    except ConvergenceError as err:
        print(render_failure(err))
        return 0
    print("demo unexpectedly converged (solver got too good!)")
    return 1


def _cmd_campaign(args) -> int:
    from .exec import (
        CampaignError,
        CampaignInterrupted,
        CampaignOptions,
        available_campaigns,
        build_campaign,
        journal_status,
        render_status,
        run_campaign,
    )

    if args.action == "list":
        for name in available_campaigns():
            print(name)
        return 0
    if args.action == "status":
        try:
            status = journal_status(args.journal)
        except (OSError, CampaignError) as exc:
            print(f"repro campaign status: cannot read {args.journal!r}: "
                  f"{exc}", file=sys.stderr)
            return 2
        print(render_status(status))
        return 0

    # run / resume
    resume = args.action == "resume" or args.resume
    if resume and not args.journal:
        print("repro campaign: --resume needs --journal PATH",
              file=sys.stderr)
        return 2
    options = {k: v for k, v in (
        ("tasks", args.tasks), ("samples", args.samples),
        ("seed", args.seed), ("scratch", args.scratch),
    ) if v is not None}
    try:
        campaign = build_campaign(args.name, **options)
    except CampaignError as exc:
        print(f"repro campaign: {exc}", file=sys.stderr)
        return 2
    opts = CampaignOptions(
        workers=args.workers,
        task_timeout=args.timeout,
        max_retries=args.retries,
        forensics_dir=args.forensics_dir,
        resume=resume,
        progress=print,
    )
    try:
        result = run_campaign(campaign, journal=args.journal, options=opts)
    except CampaignInterrupted as exc:
        print(exc.result.render())
        if args.journal:
            print(f"\ninterrupted — resume with: python -m repro campaign "
                  f"resume {args.name} --journal {args.journal}",
                  file=sys.stderr)
        return 130
    print(result.render())
    return 1 if result.quarantined else 0


def _cmd_chaos(args) -> int:
    from .recovery import dump_failure
    from .recovery.faults import chaos_operating_points, chaos_store_transient

    if args.serve:
        return _chaos_serve(args)
    if args.executor:
        return _chaos_executor(args)
    if args.crashpoints:
        return _chaos_crashpoints(args)
    if args.transient:
        report = chaos_store_transient(n_faults=args.faults, seed=args.seed)
    else:
        report = chaos_operating_points(target=args.target,
                                        n_faults=args.faults,
                                        seed=args.seed)
    print(report.render())
    if args.json:
        dump_failure(report.to_dict(), args.json)
        print(f"\nreport written to {args.json}")
    counts = report.counts()
    unhandled = counts.get("error", 0)
    return 1 if unhandled else 0


def _chaos_crashpoints(args) -> int:
    """``repro chaos --crashpoints``: kill writers at effect boundaries."""
    from .recovery import dump_failure
    from .verify.crashcheck import render_crashpoints, run_crashpoints

    report = run_crashpoints(args.scratch, progress=print)
    print(render_crashpoints(report))
    if args.json:
        dump_failure(report, args.json)
        print(f"\nreport written to {args.json}")
    return 0 if report["ok"] else 1


def _chaos_serve(args) -> int:
    """``repro chaos --serve``: attack the serving layer."""
    import tempfile

    from .recovery import dump_failure
    from .serve.chaos import chaos_serve, render_serve_chaos

    scratch = args.scratch or tempfile.mkdtemp(prefix="repro-serve-chaos-")
    workers = 0 if args.workers is None else args.workers
    report = chaos_serve(scratch, n_clients=args.clients,
                         seed=args.seed, workers=workers,
                         progress=print)
    print()
    print(render_serve_chaos(report))
    if args.json:
        dump_failure(report, args.json)
        print(f"\nreport written to {args.json}")
    return 0 if report["ok"] else 1


def _chaos_executor(args) -> int:
    """``repro chaos --executor``: fault-inject the campaign engine."""
    import tempfile

    from .recovery import dump_failure
    from .recovery.faults import chaos_executor, render_exec_chaos

    scratch = args.scratch or tempfile.mkdtemp(prefix="repro-exec-chaos-")
    workers = 2 if args.workers is None else args.workers
    report = chaos_executor(scratch, n_healthy=args.faults,
                            workers=workers, seed=args.seed,
                            progress=print)
    print(render_exec_chaos(report))
    if args.json:
        dump_failure(report, args.json)
        print(f"\nreport written to {args.json}")
    return 0 if report["ok"] else 1


def _cmd_serve(args) -> int:
    """``repro serve``: run the characterisation HTTP service.

    First SIGTERM/SIGINT starts a graceful drain (``/readyz`` flips,
    in-flight work finishes, the journal is flushed); a second signal
    stops immediately.
    """
    import asyncio
    import signal

    from .serve.server import ReproServer, ServeOptions

    options = ServeOptions(
        host=args.host,
        port=args.port,
        extra_routes=tuple(args.extra_routes),
        workers=args.workers,
        max_retries=args.retries,
        journal=args.journal,
        cache_dir=None if args.no_cache else (args.cache_dir or "auto"),
        forensics_dir=args.forensics_dir,
        interactive_slots=args.interactive_slots,
        campaign_slots=args.campaign_slots,
        drain_grace=args.drain_grace,
        progress=print,
    )

    async def _serve() -> None:
        server = ReproServer(options)
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, server.begin_drain)
        await server.run()

    asyncio.run(_serve())
    return 0


def _cmd_retention(args) -> int:
    from .characterize.retention import retention_voltage_sweep

    sweep = retention_voltage_sweep(_conditions(args))
    for rail, snm in sweep.rows():
        print(f"  rail {rail:5.3f} V   hold SNM {snm * 1e3:6.1f} mV")
    if sweep.retention_voltage is None:
        print("retention voltage: not reached in the swept range")
    else:
        print(f"retention voltage (DRV): {sweep.retention_voltage:.3f} V")
        print(f"sleep rail headroom:     {sweep.sleep_headroom:.3f} V")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse tree for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of the DATE 2015 NV-SRAM power-gating "
            "comparative study: regenerate tables, figures and "
            "characterisations."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, domain=True):
        p.add_argument("--frequency", type=float, default=None,
                       help="read/write frequency in Hz (default Table I)")
        p.add_argument("--wl-underdrive", type=float, default=None,
                       help="word-line underdrive in volts")
        if domain:
            p.add_argument("--wordlines", type=int, default=512,
                           help="domain depth N (default 512)")
            p.add_argument("--word-bits", type=int, default=32,
                           help="word length M in bits (default 32)")

    def campaign_opts(p):
        p.add_argument("--workers", type=int, default=None,
                       help="prewarm characterisations through a "
                            "fault-tolerant parallel campaign with N "
                            "workers (default: serial)")
        p.add_argument("--journal", default=None, metavar="PATH",
                       help="campaign journal (JSONL) for crash-safe "
                            "checkpoint/resume")

    common(sub.add_parser("table1", help="regenerate Table I"),
           domain=False)
    common(sub.add_parser("fig1", help="conceptual power timelines"))

    p = sub.add_parser("fig3", help="leakage & store-current curves")
    common(p)
    p.add_argument("--points", type=int, default=31)

    common(sub.add_parser("fig4", help="virtual-VDD vs N_FSW"))
    common(sub.add_parser("fig5", help="benchmark sequence timelines"),
           domain=False)
    common(sub.add_parser("fig6", help="power traces & static power"))
    for name, help_ in (("fig7a", "E_cyc vs n_RW (t_SL family)"),
                        ("fig7b", "E_cyc vs n_RW (N family)"),
                        ("fig7c", "E_cyc vs n_RW (t_SD family)"),
                        ("fig8", "E_cyc vs t_SD and BET")):
        p = sub.add_parser(name, help=help_)
        common(p)
        campaign_opts(p)

    p = sub.add_parser("fig9", help="BET vs domain depth")
    common(p, domain=False)
    p.add_argument("--panel", choices=("a", "b"), default="a")
    campaign_opts(p)

    p = sub.add_parser("characterize", help="characterise one cell")
    common(p)
    p.add_argument("--kind", choices=("nv", "6t"), default="nv")

    p = sub.add_parser("bet", help="closed-form break-even time")
    common(p)
    p.add_argument("--architecture", choices=("nvpg", "nof"),
                   default="nvpg")
    p.add_argument("--n-rw", type=int, default=100)
    p.add_argument("--t-sl", type=float, default=100e-9)
    p.add_argument("--store-free", action="store_true")

    p = sub.add_parser("snm", help="static noise margin")
    common(p, domain=False)
    p.add_argument("--read", action="store_true",
                   help="read mode (default: hold)")

    common(sub.add_parser("retention", help="data-retention voltage"),
           domain=False)

    p = sub.add_parser("variability", help="Monte-Carlo yield analysis")
    common(p)
    p.add_argument("--samples", type=int, default=100)
    campaign_opts(p)

    p = sub.add_parser("ff", help="NV flip-flop characterisation")
    common(p, domain=False)
    p.add_argument("--bits", type=int, default=1024,
                   help="register-bank width (default 1024)")

    p = sub.add_parser("all", help="full reproduction report + scorecard")
    common(p, domain=False)
    p.add_argument("--scorecard-only", action="store_true",
                   help="skip the per-figure bodies")

    p = sub.add_parser("lint", help="static-analyse decks / cell benches")
    p.add_argument("targets", nargs="*", metavar="TARGET",
                   help="SPICE deck path or cell alias "
                        "(nv, 6t, nvff, array)")
    p.add_argument("--format", choices=("text", "json", "sarif"),
                   default="text", help="output format (default text)")
    p.add_argument("--disable", action="append", default=[],
                   metavar="RULES",
                   help="comma-separated rule codes/names to skip "
                        "(repeatable)")
    p.add_argument("--strict", action="store_true",
                   help="exit non-zero on warnings too")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalog and exit")
    p.add_argument("--baseline", metavar="FILE",
                   help="suppress findings recorded in this baseline "
                        "file; only new findings remain")
    p.add_argument("--update-baseline", metavar="FILE",
                   help="record the current findings as the baseline "
                        "and exit 0")
    p.add_argument("--prune", action="store_true",
                   help="with --baseline: delete stale entries from "
                        "the file in place (never adds entries)")

    p = sub.add_parser("lint-source",
                       help="static-analyse the simulator's own "
                            "Python source (RV4xx-RV7xx)")
    p.add_argument("paths", nargs="*", metavar="PATH",
                   help="Python files or directories "
                        "(default: the installed repro package)")
    p.add_argument("--format", choices=("text", "json", "sarif"),
                   default="text", help="output format (default text)")
    p.add_argument("--disable", action="append", default=[],
                   metavar="RULES",
                   help="comma-separated rule codes/names to skip "
                        "(repeatable)")
    p.add_argument("--strict", action="store_true",
                   help="exit non-zero on warnings too")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalog and exit")
    p.add_argument("--baseline", metavar="FILE",
                   help="suppress findings recorded in this baseline "
                        "file; only new findings remain")
    p.add_argument("--update-baseline", metavar="FILE",
                   help="record the current findings as the baseline "
                        "and exit 0")
    p.add_argument("--prune", action="store_true",
                   help="with --baseline: delete stale entries from "
                        "the file in place (never adds entries)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the incremental result cache")
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="parser worker threads (default: CPU count)")

    p = sub.add_parser("fix",
                       help="apply mechanical codemods for RV702/"
                            "RV703/RV803/RV900 lint findings")
    p.add_argument("paths", nargs="*", metavar="PATH",
                   help="Python files or directories "
                        "(default: the installed repro package)")
    p.add_argument("--check", action="store_true",
                   help="plan + diff only, exit 1 if anything is "
                        "fixable (the default mode, spelled out)")
    p.add_argument("--apply", action="store_true",
                   help="rewrite the files (default: print plans and "
                        "diffs only, exit 1 if anything is fixable)")
    p.add_argument("--rules", action="append", default=[],
                   metavar="RULES",
                   help="comma-separated rule codes to fix "
                        "(default: all of RV702,RV703,RV803,RV900)")
    p.add_argument("--disable", action="append", default=[],
                   metavar="RULES",
                   help="comma-separated rule codes/names to skip "
                        "during the lint pass (repeatable)")
    p.add_argument("--baseline", metavar="FILE",
                   help="ignore findings recorded in this baseline "
                        "file; only new findings are fixed")
    p.add_argument("--no-equiv", action="store_true",
                   help="skip the solver-equivalence gate after "
                        "--apply (not recommended)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the incremental result cache")
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="parser worker threads (default: CPU count)")

    p = sub.add_parser("equiv",
                       help="solver-equivalence gate: golden corpus + "
                            "metamorphic invariants")
    p.add_argument("action", choices=("run", "update", "diff"),
                   help="run = compare against the corpus; update = "
                        "refreeze the golden files; diff = run, "
                        "printing every quantity")
    p.add_argument("--case", action="append", default=[], metavar="NAME",
                   help="restrict to one corpus case (repeatable)")
    p.add_argument("--corpus", default=None, metavar="DIR",
                   help="corpus directory (default: the committed "
                        "src/repro/verify/equiv_corpus)")
    p.add_argument("--strict", action="store_true",
                   help="also fail on missing/corrupt corpus entries")
    p.add_argument("--no-checks", action="store_true",
                   help="skip the metamorphic invariant checks")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="also dump the machine-readable report")

    p = sub.add_parser("diagnose",
                       help="render a solver-failure JSON dump")
    p.add_argument("path", nargs="?", default=None,
                   help="JSON file written by repro.recovery.dump_failure")
    p.add_argument("--demo", action="store_true",
                   help="run a deliberately failing solve and render "
                        "its forensics live")

    p = sub.add_parser("chaos",
                       help="fault-injection stress run on a cell deck")
    p.add_argument("--target", choices=("nv", "6t", "nvff"), default="nv")
    p.add_argument("--faults", type=int, default=20,
                   help="number of faults to inject (default 20)")
    p.add_argument("--seed", type=int, default=2015)
    p.add_argument("--json", default=None, metavar="PATH",
                   help="also dump the chaos report as JSON")
    p.add_argument("--transient", action="store_true",
                   help="run shortened store transients instead of DC "
                        "operating points (slower; NV only)")
    p.add_argument("--executor", action="store_true",
                   help="fault-inject the campaign engine itself "
                        "(worker crash/hang/slow/flaky faults) instead "
                        "of the solver")
    p.add_argument("--crashpoints", action="store_true",
                   help="kill child writers at each atomic-write "
                        "protocol boundary and assert reader-side "
                        "recovery (RV900/RV901 cross-validation)")
    p.add_argument("--serve", action="store_true",
                   help="chaos-test the serving layer: coalescing, "
                        "storm, shedding, breaker and drain phases "
                        "against an in-process server")
    p.add_argument("--clients", type=int, default=24,
                   help="concurrent clients for --serve (default 24)")
    p.add_argument("--workers", type=int, default=None,
                   help="worker processes (default 2 for --executor, "
                        "0 = inline for --serve)")
    p.add_argument("--scratch", default=None, metavar="DIR",
                   help="scratch directory for --executor/--serve "
                        "state (default: a fresh temp dir)")

    p = sub.add_parser("serve",
                       help="run the characterisation HTTP service "
                            "(coalescing, backpressure, deadlines, "
                            "graceful drain)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8023,
                   help="listen port (0 = ephemeral; default 8023)")
    p.add_argument("--workers", type=int, default=1,
                   help="executor processes per request (0 = inline, "
                        "fast but no crash isolation; default 1)")
    p.add_argument("--retries", type=int, default=1,
                   help="retry budget per request (default 1)")
    p.add_argument("--journal", default=None, metavar="PATH",
                   help="append-only JSONL journal shared by all "
                        "served executions")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="characterisation disk cache "
                        "(default: the repo cache)")
    p.add_argument("--no-cache", action="store_true",
                   help="serve without the disk cache")
    p.add_argument("--forensics-dir", default=None, metavar="DIR",
                   help="dump per-failure forensics JSON here")
    p.add_argument("--interactive-slots", type=int, default=4,
                   help="concurrent interactive executions (default 4)")
    p.add_argument("--campaign-slots", type=int, default=1,
                   help="concurrent campaign runs (default 1)")
    p.add_argument("--drain-grace", type=float, default=10.0,
                   help="seconds in-flight work gets after SIGTERM "
                        "(default 10)")
    p.add_argument("--extra-routes", nargs="*", default=(),
                   choices=("demo", "chaos"),
                   help="also mount the demo/chaos test routes")

    p = sub.add_parser("campaign",
                       help="run / inspect fault-tolerant task campaigns")
    csub = p.add_subparsers(dest="action", required=True)
    csub.add_parser("list", help="list the named campaigns")
    pc = csub.add_parser("status",
                         help="summarise a campaign journal")
    pc.add_argument("journal", help="journal JSONL path")
    for action in ("run", "resume"):
        pc = csub.add_parser(
            action,
            help=("execute a named campaign" if action == "run"
                  else "continue a journalled campaign run"))
        pc.add_argument("name", help="campaign name (see: campaign list)")
        pc.add_argument("--workers", type=int, default=2,
                        help="worker processes (0 = in-process, "
                             "default 2)")
        pc.add_argument("--journal", default=None, metavar="PATH",
                        help="append-only JSONL journal for "
                             "checkpoint/resume")
        pc.add_argument("--timeout", type=float, default=None,
                        help="per-task wall-clock watchdog in seconds")
        pc.add_argument("--retries", type=int, default=2,
                        help="retry budget per task (default 2)")
        pc.add_argument("--forensics-dir", default=None, metavar="DIR",
                        help="dump per-failure forensics JSON here")
        pc.add_argument("--tasks", type=int, default=None,
                        help="task count (demo / chaos campaigns)")
        pc.add_argument("--samples", type=int, default=None,
                        help="sample count (store-yield / snm campaigns)")
        pc.add_argument("--seed", type=int, default=None,
                        help="Monte-Carlo seed (default 2015)")
        pc.add_argument("--scratch", default=None, metavar="DIR",
                        help="scratch directory (chaos campaign)")
        if action == "run":
            pc.add_argument("--resume", action="store_true",
                            help="replay finished tasks from --journal "
                                 "and run only the rest")
        else:
            pc.set_defaults(resume=True)

    p = sub.add_parser("wer", help="MTJ write-error-rate model")
    common(p, domain=False)
    p.add_argument("--duration", default="10n",
                   help="store window, SPICE units (default 10n)")
    p.add_argument("--target", type=float, default=1e-6,
                   help="target write error rate (default 1e-6)")
    return parser


_HANDLERS = {
    "table1": _cmd_table1,
    "fig1": _cmd_fig1,
    "fig3": _cmd_fig3,
    "fig4": _cmd_fig4,
    "fig5": _cmd_fig5,
    "fig6": _cmd_fig6,
    "fig7a": lambda a: _cmd_fig7(a, "a"),
    "fig7b": lambda a: _cmd_fig7(a, "b"),
    "fig7c": lambda a: _cmd_fig7(a, "c"),
    "fig8": _cmd_fig8,
    "fig9": _cmd_fig9,
    "characterize": _cmd_characterize,
    "bet": _cmd_bet,
    "snm": _cmd_snm,
    "retention": _cmd_retention,
    "variability": _cmd_variability,
    "ff": _cmd_ff,
    "wer": _cmd_wer,
    "all": _cmd_all,
    "lint": _cmd_lint,
    "lint-source": _cmd_lint_source,
    "fix": _cmd_fix,
    "equiv": _cmd_equiv,
    "diagnose": _cmd_diagnose,
    "chaos": _cmd_chaos,
    "campaign": _cmd_campaign,
    "serve": _cmd_serve,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
