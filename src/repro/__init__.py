"""repro — reproduction of *"Comparative study of power-gating
architectures for nonvolatile FinFET-SRAM using spintronics-based
retention technology"* (Shuto, Yamamoto, Sugahara; DATE 2015).

The library is layered bottom-up:

* :mod:`repro.circuit` / :mod:`repro.analysis` — a nonlinear circuit
  simulator (MNA + Newton, DC / sweep / adaptive transient) standing in
  for HSPICE;
* :mod:`repro.devices` — the 20 nm FinFET compact model (PTM-like card)
  and the STT-MTJ macromodel of the paper's Table I;
* :mod:`repro.cells` — the 6T and NV-SRAM bitcells, header power switch
  and power-domain arithmetic;
* :mod:`repro.pg` — the paper's contribution: NVPG / NOF / OSR operating
  modes, Fig. 5 benchmark sequences, E_cyc composition and break-even
  time;
* :mod:`repro.characterize` — SPICE-level extraction of per-mode
  energies, leakage, store currents, power-switch sizing and SNM;
* :mod:`repro.experiments` — regeneration of every table and figure;
* :mod:`repro.spice` — a SPICE-deck front end for the whole stack.

Quickstart::

    from repro import (
        OperatingConditions, PowerDomain, ExperimentContext,
        Architecture, BenchmarkSpec, break_even_time,
    )

    ctx = ExperimentContext()
    model = ctx.energy_model(PowerDomain(n_wordlines=512, word_bits=32))
    print(model.e_cyc(BenchmarkSpec(Architecture.NVPG, n_rw=100,
                                    t_sl=100e-9, t_sd=1e-3)))
    print(break_even_time(model, Architecture.NVPG, n_rw=100).bet)
"""

from .errors import (
    ReproError,
    NetlistError,
    AnalysisError,
    ConvergenceError,
    DeviceError,
    CharacterizationError,
    SequenceError,
)
from .circuit import Circuit, Resistor, Capacitor, VoltageSource
from .analysis import operating_point, dc_sweep, transient
from .devices import (
    FinFET,
    FinFETParams,
    MTJ,
    MTJParams,
    MTJState,
    MTJ_TABLE1,
    NFET_20NM_HP,
    PFET_20NM_HP,
)
from .cells import (
    PowerDomain,
    add_nvsram,
    add_sram6t,
    add_power_switch,
    build_cell_array,
)
from .pg import (
    Architecture,
    BenchmarkSpec,
    CellEnergyModel,
    Mode,
    OperatingConditions,
    benchmark_sequence,
    break_even_time,
)
from .characterize import (
    CellCharacterization,
    characterize_cell,
    build_cell_testbench,
)
from .experiments import ExperimentContext
from .spice import parse_deck, run_deck

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "NetlistError",
    "AnalysisError",
    "ConvergenceError",
    "DeviceError",
    "CharacterizationError",
    "SequenceError",
    "Circuit",
    "Resistor",
    "Capacitor",
    "VoltageSource",
    "operating_point",
    "dc_sweep",
    "transient",
    "FinFET",
    "FinFETParams",
    "MTJ",
    "MTJParams",
    "MTJState",
    "MTJ_TABLE1",
    "NFET_20NM_HP",
    "PFET_20NM_HP",
    "PowerDomain",
    "add_nvsram",
    "add_sram6t",
    "add_power_switch",
    "build_cell_array",
    "Architecture",
    "BenchmarkSpec",
    "CellEnergyModel",
    "Mode",
    "OperatingConditions",
    "benchmark_sequence",
    "break_even_time",
    "CellCharacterization",
    "characterize_cell",
    "build_cell_testbench",
    "ExperimentContext",
    "parse_deck",
    "run_deck",
    "__version__",
]
