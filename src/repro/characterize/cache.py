"""Disk cache for characterisation results.

Characterising a cell costs several transient simulations; the figure
sweeps (Fig. 7-9) reuse the same characterisations across dozens of
parameter points.  Results are cached as JSON keyed by a hash of every
input that affects them (cell kind, operating conditions, domain
geometry, device cards).

Each entry is an integrity envelope — ``{"schema", "sha256",
"payload"}`` — checksummed over the payload, so a truncated write, a
bit-flip or a stale-schema file is *detected* rather than silently
deserialised: the offending file is moved to ``<cache>/corrupt/`` and a
warning names it, instead of the old silent ``return None``.

The cache also degrades gracefully on unwritable directories (read-only
mounts, permission drift mid-sweep): the first failure warns once and
turns caching off for that directory instead of killing a long campaign
with an ``OSError`` at point 900 of 1000.

Set the ``REPRO_CACHE_DIR`` environment variable to relocate the cache;
pass ``cache_dir=None`` through the runner to disable caching entirely.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Set

from ..exec.atomicio import atomic_write_text
from .data import CellCharacterization

#: Bump when characterisation semantics change to invalidate old entries.
#: 5: integrity envelope (schema + payload checksum) around each entry.
#: 6: numerical-trust extras (worst residual / condition estimate /
#:    defended-solve count) recorded with every characterisation.
CACHE_SCHEMA_VERSION = 6

#: Subdirectory quarantining entries that failed integrity checks.
CORRUPT_SUBDIR = "corrupt"

#: Cache directories that already warned about being unwritable; caching
#: is disabled for them for the rest of the process (warn once, not per
#: sweep point).
_UNWRITABLE: Set[str] = set()


def default_cache_dir() -> Path:
    """Cache directory: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-nvsram``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-nvsram"


def _normalise(value: Any) -> Any:
    if is_dataclass(value) and not isinstance(value, type):
        payload = asdict(value)
        payload["__type__"] = type(value).__name__
        return {k: _normalise(v) for k, v in payload.items()}
    if isinstance(value, dict):
        return {k: _normalise(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_normalise(v) for v in value]
    if isinstance(value, float):
        return float(repr(value))
    return value


def cache_key(**inputs: Any) -> str:
    """Deterministic hash of the characterisation inputs."""
    inputs["__schema__"] = CACHE_SCHEMA_VERSION
    blob = json.dumps(_normalise(inputs), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:24]


def _payload_checksum(payload: Dict[str, Any]) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()


def _quarantine(path: Path, reason: str) -> None:
    """Move a bad entry to ``<cache>/corrupt/`` and warn about it."""
    target = path.parent / CORRUPT_SUBDIR / path.name
    moved = ""
    try:
        target.parent.mkdir(parents=True, exist_ok=True)
        os.replace(path, target)
        moved = f"; moved to {target}"
    except OSError:
        pass    # read-only cache: leave it in place, still warn
    warnings.warn(
        f"discarding cache entry {path.name}: {reason}{moved} "
        "(it will be recomputed)",
        RuntimeWarning,
        stacklevel=3,
    )


def load(cache_dir: Optional[Path], key: str) -> Optional[CellCharacterization]:
    """Fetch a cached characterisation, or None.

    Entries failing the integrity check (unparseable JSON, missing or
    mismatched checksum, stale schema, payload that no longer fits
    :class:`CellCharacterization`) are quarantined with a warning rather
    than silently ignored — a corrupt cache should be *visible*.
    """
    if cache_dir is None:
        return None
    path = Path(cache_dir) / f"{key}.json"
    try:
        text = path.read_text()
    except FileNotFoundError:
        return None
    except OSError as err:
        warnings.warn(f"cannot read cache entry {path}: {err}",
                      RuntimeWarning, stacklevel=2)
        return None
    try:
        envelope = json.loads(text)
    except json.JSONDecodeError as err:
        _quarantine(path, f"unparseable JSON ({err})")
        return None
    if not isinstance(envelope, dict) or "payload" not in envelope:
        _quarantine(path, "not an integrity envelope (pre-schema-5 entry?)")
        return None
    schema = envelope.get("schema")
    if schema != CACHE_SCHEMA_VERSION:
        _quarantine(path, f"schema {schema!r} != {CACHE_SCHEMA_VERSION}")
        return None
    payload = envelope["payload"]
    expected = envelope.get("sha256")
    if not isinstance(payload, dict) or not isinstance(expected, str):
        _quarantine(path, "malformed envelope fields")
        return None
    actual = _payload_checksum(payload)
    if actual != expected:
        _quarantine(path, f"checksum mismatch (stored {expected[:12]}..., "
                          f"computed {actual[:12]}...)")
        return None
    try:
        return CellCharacterization(**payload)
    except TypeError as err:
        _quarantine(path, f"payload does not fit CellCharacterization "
                          f"({err})")
        return None


def _warn_unwritable(directory: Path, err: OSError) -> None:
    marker = str(directory)
    if marker in _UNWRITABLE:
        return
    # Deliberate module-state write on a task-reachable path: the
    # warn-once set only gates *warning noise*, never results — a task
    # rerun without it produces identical payloads, just louder.
    _UNWRITABLE.add(marker)  # lint: skip=RV601
    warnings.warn(
        f"cache directory {directory} is not writable ({err}); "
        "continuing with caching disabled for this directory",
        RuntimeWarning,
        stacklevel=3,
    )


def store(cache_dir: Optional[Path], key: str,
          result: CellCharacterization) -> None:
    """Persist a characterisation result.

    Safe under concurrent writers (parallel figure sweeps sharing one
    cache): each writer stages into its own ``mkstemp`` file before the
    atomic rename, so two processes storing the same key can never
    interleave into a corrupt entry.

    An unwritable directory (read-only mount, permission change mid
    sweep) warns once and degrades to cache-off instead of raising —
    losing the cache must never lose the run.
    """
    if cache_dir is None:
        return
    directory = Path(cache_dir)
    if str(directory) in _UNWRITABLE:
        return
    payload = json.loads(result.to_json())
    envelope = json.dumps(
        {"schema": CACHE_SCHEMA_VERSION,
         "sha256": _payload_checksum(payload),
         "payload": payload},
        indent=2, sort_keys=True,
    )
    path = directory / f"{key}.json"
    try:
        directory.mkdir(parents=True, exist_ok=True)
        atomic_write_text(path, envelope)
    except OSError as err:
        _warn_unwritable(directory, err)
