"""Disk cache for characterisation results.

Characterising a cell costs several transient simulations; the figure
sweeps (Fig. 7-9) reuse the same characterisations across dozens of
parameter points.  Results are cached as JSON keyed by a hash of every
input that affects them (cell kind, operating conditions, domain
geometry, device cards).

Each entry is an integrity envelope — ``{"schema", "sha256",
"payload"}`` — checksummed over the payload, so a truncated write, a
bit-flip or a stale-schema file is *detected* rather than silently
deserialised: the offending file is moved to ``<cache>/corrupt/`` and a
warning names it, instead of the old silent ``return None``.

The cache also degrades gracefully on unwritable directories (read-only
mounts, permission drift mid-sweep): the first failure warns once and
turns caching off for that directory instead of killing a long campaign
with an ``OSError`` at point 900 of 1000.

Every load/store lands in process-wide :class:`CacheStats` counters
(hits, misses, quarantines, served-entry ages) so the serve layer's
``/metrics`` endpoint and degraded-mode decisions can see cache health
without touching cache behaviour.

Set the ``REPRO_CACHE_DIR`` environment variable to relocate the cache;
pass ``cache_dir=None`` through the runner to disable caching entirely.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
import warnings
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Set

from ..exec.atomicio import atomic_write_text
from .data import CellCharacterization

#: Bump when characterisation semantics change to invalidate old entries.
#: 5: integrity envelope (schema + payload checksum) around each entry.
#: 6: numerical-trust extras (worst residual / condition estimate /
#:    defended-solve count) recorded with every characterisation.
#: 7: NV-FF entries moved from raw JSON into the same integrity
#:    envelope (generic payload API); raw pre-7 files get fresh keys.
CACHE_SCHEMA_VERSION = 7

#: Subdirectory quarantining entries that failed integrity checks.
CORRUPT_SUBDIR = "corrupt"

#: Cache directories that already warned about being unwritable; caching
#: is disabled for them for the rest of the process (warn once, not per
#: sweep point).
_UNWRITABLE: Set[str] = set()


class CacheStats:
    """Process-wide cache observability counters.

    Pure telemetry for ``/metrics`` and degraded-mode decisions in the
    serve layer: hits, misses, quarantines, stores, and the age of the
    entries actually served.  Counters never influence what a load
    returns — a process with the counters zeroed behaves identically.

    Thread-safe: the serve layer probes the cache from request threads
    while campaign workers store into it.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.quarantined = 0
        self.stores = 0
        self.store_failures = 0
        self.last_hit_age_s: Optional[float] = None
        self.max_hit_age_s: float = 0.0

    def note(self, event: str, age_s: Optional[float] = None) -> None:
        with self._lock:
            if event == "hit":
                self.hits += 1
                if age_s is not None:
                    self.last_hit_age_s = age_s
                    self.max_hit_age_s = max(self.max_hit_age_s, age_s)
            elif event == "miss":
                self.misses += 1
            elif event == "quarantine":
                self.quarantined += 1
            elif event == "store":
                self.stores += 1
            elif event == "store_failure":
                self.store_failures += 1

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            total = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "quarantined": self.quarantined,
                "stores": self.stores,
                "store_failures": self.store_failures,
                "hit_rate": (self.hits / total) if total else None,
                "last_hit_age_s": self.last_hit_age_s,
                "max_hit_age_s": self.max_hit_age_s,
            }

    def reset(self) -> None:
        with self._lock:
            self.hits = self.misses = self.quarantined = 0
            self.stores = self.store_failures = 0
            self.last_hit_age_s = None
            self.max_hit_age_s = 0.0


#: The process-wide counter object (see :class:`CacheStats`).
STATS = CacheStats()


def _note(event: str, age_s: Optional[float] = None) -> None:
    """Single funnel for counter bumps on task-reachable paths.

    Deliberate module-state mutation: the counters are observability
    only — a task rerun with them zeroed produces identical payloads
    (mirrors the ``_UNWRITABLE`` warn-once precedent above).
    """
    STATS.note(event, age_s)  # lint: skip=RV601


def _entry_age_s(path: Path) -> Optional[float]:
    """Age of a cache entry in seconds, from its mtime; None if unknown.

    Wall-clock read on a task-reachable path is deliberate: the age
    feeds counters and degraded-mode staleness stamps, never the cached
    payload itself.
    """
    try:
        mtime = path.stat().st_mtime
        return max(0.0, time.time() - mtime)  # lint: skip=RV602
    except OSError:
        return None


def default_cache_dir() -> Path:
    """Cache directory: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-nvsram``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-nvsram"


def _normalise(value: Any) -> Any:
    if is_dataclass(value) and not isinstance(value, type):
        payload = asdict(value)
        payload["__type__"] = type(value).__name__
        return {k: _normalise(v) for k, v in payload.items()}
    if isinstance(value, dict):
        return {k: _normalise(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_normalise(v) for v in value]
    if isinstance(value, float):
        return float(repr(value))
    return value


def cache_key(**inputs: Any) -> str:
    """Deterministic hash of the characterisation inputs."""
    inputs["__schema__"] = CACHE_SCHEMA_VERSION
    blob = json.dumps(_normalise(inputs), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:24]


def _payload_checksum(payload: Dict[str, Any]) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()


def _quarantine(path: Path, reason: str) -> None:
    """Move a bad entry to ``<cache>/corrupt/`` and warn about it."""
    target = path.parent / CORRUPT_SUBDIR / path.name
    moved = ""
    try:
        target.parent.mkdir(parents=True, exist_ok=True)
        os.replace(path, target)
        moved = f"; moved to {target}"
    except OSError:
        pass    # read-only cache / concurrent quarantine: still warn
    _note("quarantine")
    warnings.warn(
        f"discarding cache entry {path.name}: {reason}{moved} "
        "(it will be recomputed)",
        RuntimeWarning,
        stacklevel=3,
    )


def entry_age_s(cache_dir: Optional[Path], key: str) -> Optional[float]:
    """Age of the entry for ``key`` in seconds, or None if absent."""
    if cache_dir is None:
        return None
    return _entry_age_s(Path(cache_dir) / f"{key}.json")


def load_payload(cache_dir: Optional[Path],
                 key: str) -> Optional[Dict[str, Any]]:
    """Fetch a cached payload dict through the integrity envelope.

    Entries failing the integrity check (unparseable JSON, missing or
    mismatched checksum, stale schema) are quarantined with a warning
    rather than silently ignored — a corrupt cache should be *visible*.
    Callers that then find the payload does not fit their result type
    should hand it back via :func:`reject_payload`.

    Every call lands in the counters: one ``hit`` (with the entry's
    age) or one ``miss``; quarantines additionally count as
    ``quarantine``.
    """
    if cache_dir is None:
        return None
    path = Path(cache_dir) / f"{key}.json"
    try:
        text = path.read_text()
    except FileNotFoundError:
        _note("miss")
        return None
    except OSError as err:
        warnings.warn(f"cannot read cache entry {path}: {err}",
                      RuntimeWarning, stacklevel=2)
        _note("miss")
        return None
    age_s = _entry_age_s(path)
    try:
        envelope = json.loads(text)
    except json.JSONDecodeError as err:
        _quarantine(path, f"unparseable JSON ({err})")
        _note("miss")
        return None
    if not isinstance(envelope, dict) or "payload" not in envelope:
        _quarantine(path, "not an integrity envelope (pre-schema-5 entry?)")
        _note("miss")
        return None
    schema = envelope.get("schema")
    if schema != CACHE_SCHEMA_VERSION:
        _quarantine(path, f"schema {schema!r} != {CACHE_SCHEMA_VERSION}")
        _note("miss")
        return None
    payload = envelope["payload"]
    expected = envelope.get("sha256")
    if not isinstance(payload, dict) or not isinstance(expected, str):
        _quarantine(path, "malformed envelope fields")
        _note("miss")
        return None
    actual = _payload_checksum(payload)
    if actual != expected:
        _quarantine(path, f"checksum mismatch (stored {expected[:12]}..., "
                          f"computed {actual[:12]}...)")
        _note("miss")
        return None
    _note("hit", age_s)
    return payload


def reject_payload(cache_dir: Optional[Path], key: str,
                   reason: str) -> None:
    """Quarantine an entry whose payload failed the caller's type fit.

    The envelope was intact (so :func:`load_payload` counted a hit) but
    the payload no longer matches the result dataclass — schema drift
    the envelope cannot see.  Quarantines and warns like any other bad
    entry.
    """
    if cache_dir is None:
        return
    _quarantine(Path(cache_dir) / f"{key}.json", reason)


def load(cache_dir: Optional[Path], key: str) -> Optional[CellCharacterization]:
    """Fetch a cached characterisation, or None.

    :func:`load_payload` semantics, plus the payload must fit
    :class:`CellCharacterization` (else the entry is quarantined).
    """
    payload = load_payload(cache_dir, key)
    if payload is None:
        return None
    try:
        return CellCharacterization(**payload)
    except TypeError as err:
        reject_payload(cache_dir, key,
                       f"payload does not fit CellCharacterization ({err})")
        return None


def _warn_unwritable(directory: Path, err: OSError) -> None:
    marker = str(directory)
    if marker in _UNWRITABLE:
        return
    # Deliberate module-state write on a task-reachable path: the
    # warn-once set only gates *warning noise*, never results — a task
    # rerun without it produces identical payloads, just louder.
    _UNWRITABLE.add(marker)  # lint: skip=RV601
    warnings.warn(
        f"cache directory {directory} is not writable ({err}); "
        "continuing with caching disabled for this directory",
        RuntimeWarning,
        stacklevel=3,
    )


def store_payload(cache_dir: Optional[Path], key: str,
                  payload: Dict[str, Any]) -> None:
    """Persist a payload dict inside the integrity envelope.

    Safe under concurrent writers (parallel figure sweeps sharing one
    cache): each writer stages into its own ``mkstemp`` file before the
    atomic rename, so two processes storing the same key can never
    interleave into a corrupt entry.

    An unwritable directory (read-only mount, permission change mid
    sweep) warns once and degrades to cache-off instead of raising —
    losing the cache must never lose the run.
    """
    if cache_dir is None:
        return
    directory = Path(cache_dir)
    if str(directory) in _UNWRITABLE:
        return
    envelope = json.dumps(
        {"schema": CACHE_SCHEMA_VERSION,
         "sha256": _payload_checksum(payload),
         "payload": payload},
        indent=2, sort_keys=True,
    )
    path = directory / f"{key}.json"
    try:
        directory.mkdir(parents=True, exist_ok=True)
        atomic_write_text(path, envelope)
    except OSError as err:
        _note("store_failure")
        _warn_unwritable(directory, err)
    else:
        _note("store")


def store(cache_dir: Optional[Path], key: str,
          result: CellCharacterization) -> None:
    """Persist a characterisation result (see :func:`store_payload`)."""
    if cache_dir is None:
        return
    store_payload(cache_dir, key, json.loads(result.to_json()))
