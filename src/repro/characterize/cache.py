"""Disk cache for characterisation results.

Characterising a cell costs several transient simulations; the figure
sweeps (Fig. 7-9) reuse the same characterisations across dozens of
parameter points.  Results are cached as JSON keyed by a hash of every
input that affects them (cell kind, operating conditions, domain
geometry, device cards).

Set the ``REPRO_CACHE_DIR`` environment variable to relocate the cache;
pass ``cache_dir=None`` through the runner to disable caching entirely.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Any, Dict, Optional

from .data import CellCharacterization

#: Bump when characterisation semantics change to invalidate old entries.
CACHE_SCHEMA_VERSION = 4


def default_cache_dir() -> Path:
    """Cache directory: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro-nvsram``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-nvsram"


def _normalise(value: Any) -> Any:
    if is_dataclass(value) and not isinstance(value, type):
        payload = asdict(value)
        payload["__type__"] = type(value).__name__
        return {k: _normalise(v) for k, v in payload.items()}
    if isinstance(value, dict):
        return {k: _normalise(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_normalise(v) for v in value]
    if isinstance(value, float):
        return float(repr(value))
    return value


def cache_key(**inputs: Any) -> str:
    """Deterministic hash of the characterisation inputs."""
    inputs["__schema__"] = CACHE_SCHEMA_VERSION
    blob = json.dumps(_normalise(inputs), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:24]


def load(cache_dir: Optional[Path], key: str) -> Optional[CellCharacterization]:
    """Fetch a cached characterisation, or None."""
    if cache_dir is None:
        return None
    path = Path(cache_dir) / f"{key}.json"
    if not path.exists():
        return None
    try:
        return CellCharacterization.from_json(path.read_text())
    except (json.JSONDecodeError, TypeError, ValueError):
        # Corrupt or stale entry: ignore, it will be recomputed.
        return None


def store(cache_dir: Optional[Path], key: str,
          result: CellCharacterization) -> None:
    """Persist a characterisation result.

    Safe under concurrent writers (parallel figure sweeps sharing one
    cache): each writer stages into its own ``mkstemp`` file before the
    atomic rename, so two processes storing the same key can never
    interleave into a corrupt entry.
    """
    if cache_dir is None:
        return
    directory = Path(cache_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{key}.json"
    fd, tmp_name = tempfile.mkstemp(dir=directory, prefix=f"{key}.",
                                    suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(result.to_json())
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise
