"""Cell characterisation: SPICE-level extraction of per-mode quantities.

This layer runs the circuit simulator on single-cell testbenches and
distils the numbers the energy composition of Figs. 7-9 needs:

* :func:`~repro.characterize.runner.characterize_cell` — read/write/store/
  restore energies, per-mode static powers, delays and functional checks,
  returned as a :class:`~repro.characterize.data.CellCharacterization`.
* :mod:`~repro.characterize.leakage` — the Fig. 3(a) leakage-vs-V_CTRL
  sweeps.
* :mod:`~repro.characterize.store` — the Fig. 3(b)/(c) store-current
  sweeps.
* :mod:`~repro.characterize.vvdd` — the Fig. 4 power-switch sizing sweep.
* :mod:`~repro.characterize.snm` — static-noise-margin butterfly analysis
  (the design constraint the paper cites for the (1,1) fin choice).
"""

from .data import CellCharacterization
from .testbench import CellTestbench, build_cell_testbench
from .runner import characterize_cell
from .leakage import leakage_vs_vctrl
from .store import (
    store_current_vs_vsr,
    store_current_vs_vctrl,
    derive_store_biases,
    verify_store_bias_choice,
)
from .vvdd import vvdd_vs_nfsw
from .snm import butterfly_curve, static_noise_margin
from .retention import RetentionSweep, retention_voltage_sweep
from .variability import (
    VariationModel,
    store_yield_analysis,
    read_snm_distribution,
)
from .ff_runner import FlipFlopCharacterization, characterize_nvff
from .disturb import DisturbReport, nof_access_disturb, nvpg_access_disturb

__all__ = [
    "CellCharacterization",
    "CellTestbench",
    "build_cell_testbench",
    "characterize_cell",
    "leakage_vs_vctrl",
    "store_current_vs_vsr",
    "store_current_vs_vctrl",
    "derive_store_biases",
    "verify_store_bias_choice",
    "vvdd_vs_nfsw",
    "butterfly_curve",
    "static_noise_margin",
    "RetentionSweep",
    "retention_voltage_sweep",
    "VariationModel",
    "store_yield_analysis",
    "read_snm_distribution",
    "FlipFlopCharacterization",
    "characterize_nvff",
    "DisturbReport",
    "nof_access_disturb",
    "nvpg_access_disturb",
]
