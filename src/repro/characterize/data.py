"""Characterisation result records (JSON-serialisable for caching)."""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..errors import CharacterizationError


@dataclass
class CellCharacterization:
    """Per-mode energies, static powers and delays of one cell flavour.

    All energies are joules *per cell*; powers are watts per cell.  The
    read/write energies are totals over the cell's own access cycle
    (including its quiescent power during that cycle); idle time is
    accounted separately via the static powers.

    Attributes
    ----------
    kind:
        ``"nv"`` (NV-SRAM cell) or ``"6t"`` (volatile baseline).
    n_wordlines:
        Domain depth the bitline capacitance was extracted for (the
        read/write energies depend on it).
    e_read / e_write:
        Energy of one read / one write cycle.
    p_normal:
        Static power in the normal operation mode (precharged bitlines,
        word line low; V_CTRL = 0.07 V for the NV cell).
    p_sleep:
        Static power in the sleep / low-voltage-retention mode
        (rail at 0.7 V; V_CTRL = 0.04 V for the NV cell).
    p_shutdown:
        Static power in the super-cutoff shutdown mode (NV cell; for the
        6T baseline this mode is unreachable and is set equal to sleep).
    p_shutdown_nominal:
        Shutdown static power with the ordinary V_PG = VDD gate drive
        (Fig. 6(c) contrast against super cutoff).
    e_store / t_store:
        Energy and duration of the full two-step store (H-store +
        L-store); zero for the 6T cell.
    e_store_h / e_store_l:
        Per-step breakdown of the store energy.
    e_restore / t_restore:
        Wake-up (recall) energy and allotted duration; zero for 6T.
    read_delay:
        Word-line assertion to 100 mV bitline differential.
    write_delay:
        Word-line assertion to storage-node crossover.
    store_current_h / store_current_l:
        Peak MTJ current during each store step (CIMS margin check).
    store_events / restore_ok:
        Functional checks: number of MTJ switching events seen during the
        store, and whether the restore recovered the stored data.
    """

    kind: str
    n_wordlines: int
    vdd: float
    frequency: float
    e_read: float = 0.0
    e_write: float = 0.0
    p_normal: float = 0.0
    p_sleep: float = 0.0
    p_shutdown: float = 0.0
    p_shutdown_nominal: float = 0.0
    e_store: float = 0.0
    e_store_h: float = 0.0
    e_store_l: float = 0.0
    t_store: float = 0.0
    e_restore: float = 0.0
    t_restore: float = 0.0
    read_delay: float = 0.0
    write_delay: float = 0.0
    store_current_h: float = 0.0
    store_current_l: float = 0.0
    store_events: int = 0
    restore_ok: bool = True
    extras: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self):
        if self.kind not in ("nv", "6t"):
            raise CharacterizationError(f"unknown cell kind: {self.kind}")

    @property
    def is_nonvolatile(self) -> bool:
        return self.kind == "nv"

    def validate(self) -> None:
        """Sanity-check physical consistency; raise on nonsense."""
        checks = [
            ("e_read", self.e_read >= 0.0),
            ("e_write", self.e_write >= 0.0),
            ("p_normal", self.p_normal > 0.0),
            ("p_sleep", self.p_sleep > 0.0),
            ("p_shutdown", self.p_shutdown >= 0.0),
            ("sleep<=normal", self.p_sleep <= self.p_normal * 1.5),
        ]
        if self.is_nonvolatile:
            checks += [
                ("e_store", self.e_store > 0.0),
                ("shutdown<sleep", self.p_shutdown < self.p_sleep),
                ("store switched both MTJs", self.store_events >= 2),
                ("restore recovered data", self.restore_ok),
            ]
        failed = [name for name, ok in checks if not ok]
        if failed:
            raise CharacterizationError(
                f"characterisation failed sanity checks: {failed}"
            )

    # -- serialisation ---------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(dataclasses.asdict(self), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CellCharacterization":
        payload = json.loads(text)
        return cls(**payload)
