"""Full-cell characterisation: the SPICE-level extraction pass.

:func:`characterize_cell` produces the
:class:`~repro.characterize.data.CellCharacterization` consumed by the
Fig. 7-9 energy composition.  It runs:

1. DC operating points for the static power of every mode (normal /
   sleep / shutdown / super-cutoff shutdown);
2. a read-burst transient (energy of one steady-state read cycle plus
   the read delay);
3. a write-burst transient (ditto for writes);
4. a store transient (two-step store, MTJ switching verified, store
   currents measured against the 1.5 x Ic margin);
5. a restore transient from a fully collapsed rail (recall correctness
   verified, wake-up energy measured).

Results are cached on disk (see :mod:`repro.characterize.cache`).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import CharacterizationError
from ..analysis import operating_point, transient
from ..analysis.results import TransientResult
from ..analysis.transient import TransientOptions
from ..analysis.trust import TrustAccumulator
from ..cells import PowerDomain
from ..devices.finfet import FinFETParams
from ..devices.mtj import MTJ, MTJParams, MTJState, MTJ_TABLE1
from ..devices.ptm20 import NFET_20NM_HP, PFET_20NM_HP
from ..pg.modes import Mode, OperatingConditions
from ..pg.scheduler import PhaseWindow, Schedule, ScheduleStep
from . import cache
from .data import CellCharacterization
from .testbench import SUPPLY_SOURCES, CellTestbench, build_cell_testbench

#: Bitline differential treated as a completed read (volts).
READ_SENSE_THRESHOLD = 0.10


def characterize_cell(
    kind: str,
    cond: Optional[OperatingConditions] = None,
    domain: Optional[PowerDomain] = None,
    nfet: FinFETParams = NFET_20NM_HP,
    pfet: FinFETParams = PFET_20NM_HP,
    mtj_params: MTJParams = MTJ_TABLE1,
    cache_dir: "Optional[Path] | str" = "auto",
    validate: bool = True,
    lint: bool = True,
) -> CellCharacterization:
    """Characterise one cell flavour under the given conditions.

    Parameters
    ----------
    kind:
        ``"nv"`` or ``"6t"``.
    cache_dir:
        Directory for the JSON result cache; the default ``"auto"``
        resolves :func:`repro.characterize.cache.default_cache_dir` (which
        honours ``REPRO_CACHE_DIR``) at call time; ``None`` disables
        caching.
    validate:
        Run the physical sanity checks on the result (recommended).
    lint:
        Statically analyse the testbench netlist before simulating
        (:func:`repro.verify.assert_clean`); error findings raise
        :class:`~repro.errors.VerificationError`.  ``REPRO_LINT=0``
        disables the check globally.
    """
    if cache_dir == "auto":
        cache_dir = cache.default_cache_dir()
    cond = cond or OperatingConditions()
    domain = domain or PowerDomain()
    key = cache.cache_key(kind=kind, cond=cond, domain=domain, nfet=nfet,
                          pfet=pfet, mtj=mtj_params)
    cached = cache.load(cache_dir, key)
    if cached is not None:
        return cached

    result = CellCharacterization(
        kind=kind,
        n_wordlines=domain.n_wordlines,
        vdd=cond.vdd,
        frequency=cond.frequency,
    )

    def fresh_tb() -> CellTestbench:
        return build_cell_testbench(kind, cond, domain, nfet=nfet,
                                    pfet=pfet, mtj_params=mtj_params)

    if lint:
        from ..verify import assert_clean
        assert_clean(fresh_tb().circuit, target=f"cell:{kind}")
    # Worst-case numerical-trust aggregate over every solve of the
    # extraction; travels with the cached result (see analysis.trust).
    trust = TrustAccumulator()
    _extract_static_powers(fresh_tb(), result, trust)
    _extract_read(fresh_tb(), result, trust)
    _extract_write(fresh_tb(), result, trust)
    if kind == "nv":
        _extract_store(fresh_tb(), result, trust)
        _extract_restore(fresh_tb(), result, trust)
    result.extras.update(trust.as_extras())
    if validate:
        result.validate()
    cache.store(cache_dir, key, result)
    return result


# ---------------------------------------------------------------------------
# static powers
# ---------------------------------------------------------------------------

def _static_power_of_mode(tb: CellTestbench, mode: Mode,
                          data: bool = True,
                          pg_override: Optional[float] = None,
                          trust: Optional[TrustAccumulator] = None) -> float:
    tb.apply_mode(mode)
    if pg_override is not None:
        tb.circuit["vpg"].set_level(pg_override)
    if mode is Mode.SHUTDOWN:
        ic = None  # the latch holds no state when powered off
    else:
        rail = tb.cond.v_sleep_rail if mode is Mode.SLEEP else tb.cond.vdd
        ic = tb.core.initial_conditions(data, rail)
        ic["vvdd"] = rail
    sol = operating_point(tb.circuit, ic=ic)
    if trust is not None:
        trust.note(sol)
    power = sum(
        tb.circuit[name].delivered_power(sol) for name in SUPPLY_SOURCES
    )
    return max(power, 0.0)


def _extract_static_powers(tb: CellTestbench, out: CellCharacterization,
                           trust: Optional[TrustAccumulator] = None) -> None:
    out.p_normal = _static_power_of_mode(tb, Mode.STANDBY, trust=trust)
    out.p_sleep = _static_power_of_mode(tb, Mode.SLEEP, trust=trust)
    if tb.kind == "nv":
        out.p_shutdown = _static_power_of_mode(tb, Mode.SHUTDOWN, trust=trust)
        out.p_shutdown_nominal = _static_power_of_mode(
            tb, Mode.SHUTDOWN, pg_override=tb.cond.vdd, trust=trust
        )
    else:
        # The volatile cell cannot shut down without losing data; its
        # "long inactive period" is spent in sleep.
        out.p_shutdown = out.p_sleep
        out.p_shutdown_nominal = out.p_sleep


# ---------------------------------------------------------------------------
# transient helpers
# ---------------------------------------------------------------------------

def _run_schedule(tb: CellTestbench, schedule: Schedule, data: bool,
                  mtj_data: Optional[bool] = None,
                  collapsed: bool = False,
                  trust: Optional[TrustAccumulator] = None) -> TransientResult:
    tb.apply_waveforms(schedule.line_waveforms())
    if tb.kind == "nv" and mtj_data is not None:
        tb.set_mtj_data(mtj_data)
    if collapsed:
        ic = {tb.core.q: 0.0, tb.core.qb: 0.0, "vvdd": 0.0}
    else:
        ic = tb.initial_conditions(data)
    options = TransientOptions(
        dt_initial=min(20e-12, tb.cond.t_cycle / 200.0),
        dt_max=schedule.total_duration / 40.0,
    )
    result = transient(tb.circuit, schedule.total_duration, ic=ic,
                       options=options)
    if trust is not None:
        trust.note(result)
    return result


def _window_energy(result: TransientResult, window: PhaseWindow,
                   t_extra: float = 0.0) -> float:
    return result.energy(SUPPLY_SOURCES, window.t_start,
                         window.t_end + t_extra)


# ---------------------------------------------------------------------------
# read / write
# ---------------------------------------------------------------------------

def _extract_read(tb: CellTestbench, out: CellCharacterization,
                  trust: Optional[TrustAccumulator] = None) -> None:
    cond = tb.cond
    t_cyc = cond.t_cycle
    schedule = Schedule(
        [
            ScheduleStep(Mode.STANDBY, 2 * t_cyc),
            ScheduleStep(Mode.READ, t_cyc),
            ScheduleStep(Mode.READ, t_cyc),
            ScheduleStep(Mode.READ, t_cyc),
            ScheduleStep(Mode.STANDBY, t_cyc),
        ],
        cond,
        volatile=tb.kind == "6t",
    )
    result = _run_schedule(tb, schedule, data=True, mtj_data=False,
                           trust=trust)
    window = schedule.windows_of(Mode.READ)[1]
    out.e_read = _window_energy(result, window)
    out.read_delay = _read_delay(result, tb, window)
    if not tb.core.read_data(result.final_solution(), cond.vdd):
        raise CharacterizationError("read disturbed the stored data")


def _read_delay(result: TransientResult, tb: CellTestbench,
                window: PhaseWindow) -> float:
    """Word-line assertion to READ_SENSE_THRESHOLD bitline differential."""
    t_wl = window.t_start + 0.45 * window.duration
    mask = (result.time >= t_wl) & (result.time <= window.t_end)
    diff = np.abs(result.differential(tb.core.bl, tb.core.blb))[mask]
    times = result.time[mask]
    above = np.nonzero(diff >= READ_SENSE_THRESHOLD)[0]
    if above.size == 0:
        raise CharacterizationError(
            "bitline differential never reached the sense threshold"
        )
    return float(times[above[0]] - t_wl)


def _extract_write(tb: CellTestbench, out: CellCharacterization,
                   trust: Optional[TrustAccumulator] = None) -> None:
    cond = tb.cond
    t_cyc = cond.t_cycle
    schedule = Schedule(
        [
            ScheduleStep(Mode.STANDBY, 2 * t_cyc),
            ScheduleStep(Mode.WRITE, t_cyc, data=False),
            ScheduleStep(Mode.WRITE, t_cyc, data=True),
            ScheduleStep(Mode.WRITE, t_cyc, data=False),
            ScheduleStep(Mode.STANDBY, t_cyc),
        ],
        cond,
        volatile=tb.kind == "6t",
    )
    result = _run_schedule(tb, schedule, data=True, mtj_data=False,
                           trust=trust)
    window = schedule.windows_of(Mode.WRITE)[1]  # writes True
    out.e_write = _window_energy(result, window)

    t_wl = window.t_start + 0.25 * window.duration
    crossing = result.crossing_time(tb.core.q, cond.vdd / 2.0,
                                    direction="rise", after=t_wl)
    if crossing is None:
        raise CharacterizationError("write never flipped the cell")
    out.write_delay = crossing - t_wl
    if tb.core.read_data(result.final_solution(), cond.vdd):
        raise CharacterizationError("final write(0) did not stick")


# ---------------------------------------------------------------------------
# store / restore
# ---------------------------------------------------------------------------

def _mtj_peak_current(result: TransientResult, mtj: MTJ,
                      window: PhaseWindow, before: float,
                      state: "MTJState") -> float:
    """Peak |I| of an MTJ inside ``window`` at samples earlier than
    ``before`` — i.e. before its switching event — evaluated with the
    ``state`` the junction held during that interval."""
    free_idx, pinned_idx = mtj.node_index
    mask = (result.time >= window.t_start) & (result.time <= min(window.t_end, before))
    if not np.any(mask):
        return 0.0
    v_free = result.states[mask][:, free_idx] if free_idx >= 0 else 0.0
    v_pinned = result.states[mask][:, pinned_idx] if pinned_idx >= 0 else 0.0
    v = np.asarray(v_free - v_pinned)
    currents = [abs(mtj.current_at(float(vi), state)) for vi in v]
    return max(currents)


def _extract_store(tb: CellTestbench, out: CellCharacterization,
                   trust: Optional[TrustAccumulator] = None) -> None:
    cond = tb.cond
    schedule = Schedule(
        [
            ScheduleStep(Mode.STANDBY, 1e-9),
            ScheduleStep(Mode.STORE_H, cond.t_store_step),
            ScheduleStep(Mode.STORE_L, cond.t_store_step),
            ScheduleStep(Mode.SHUTDOWN, 2e-9),
        ],
        cond,
        volatile=False,
    )
    # Data = True; the MTJs start holding the complement so both must flip.
    result = _run_schedule(tb, schedule, data=True, mtj_data=False,
                           trust=trust)
    cell = tb.nv_cell

    win_h, win_l = (schedule.windows_of(Mode.STORE_H)[0],
                    schedule.windows_of(Mode.STORE_L)[0])
    out.e_store_h = _window_energy(result, win_h)
    out.e_store_l = _window_energy(result, win_l)
    out.e_store = out.e_store_h + out.e_store_l
    out.t_store = cond.t_store
    out.store_events = len(result.events)
    if cell.stored_data(tb.circuit) is not True:
        raise CharacterizationError(
            f"store did not encode the data: events={result.events}"
        )

    mtj_q = cell.mtj_q(tb.circuit)
    mtj_qb = cell.mtj_qb(tb.circuit)
    flip_q = next((t for t, name, _ in result.events if name == mtj_q.name),
                  win_h.t_end)
    flip_qb = next((t for t, name, _ in result.events if name == mtj_qb.name),
                   win_l.t_end)
    # Before its flip, the Q-side MTJ is still parallel (H-store drives
    # P -> AP) and the QB-side is antiparallel (L-store drives AP -> P).
    out.store_current_h = _mtj_peak_current(result, mtj_q, win_h, flip_q,
                                            MTJState.PARALLEL)
    out.store_current_l = _mtj_peak_current(result, mtj_qb, win_l, flip_qb,
                                            MTJState.ANTIPARALLEL)


def _extract_restore(tb: CellTestbench, out: CellCharacterization,
                     trust: Optional[TrustAccumulator] = None) -> None:
    cond = tb.cond
    schedule = Schedule(
        [
            ScheduleStep(Mode.SHUTDOWN, 2e-9),
            ScheduleStep(Mode.RESTORE, cond.t_restore),
            ScheduleStep(Mode.STANDBY, 3e-9),
        ],
        cond,
        volatile=False,
    )
    result = _run_schedule(tb, schedule, data=True, mtj_data=True,
                           collapsed=True, trust=trust)
    window = schedule.windows_of(Mode.RESTORE)[0]
    out.e_restore = _window_energy(result, window)
    out.t_restore = cond.t_restore
    out.restore_ok = tb.core.read_data(result.final_solution(), cond.vdd)
