"""NV flip-flop characterisation.

The register-file counterpart of :mod:`repro.characterize.runner`:
transient testbenches extract the NV-FF's clocking energy, delays,
static powers and store/restore costs, which
:class:`repro.pg.registers.RegisterBankModel` composes into
register-state power-gating figures (BET of a flip-flop bank).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from ..errors import CharacterizationError
from ..analysis import operating_point, transient
from ..analysis.transient import TransientOptions
from ..circuit import (
    Circuit,
    PiecewiseLinear,
    Pulse,
    Step,
    VoltageSource,
)
from ..cells import add_nvff, add_power_switch
from ..cells.nvff import NvFlipFlop
from ..devices.finfet import FinFETParams
from ..devices.mtj import MTJParams, MTJ_TABLE1
from ..devices.ptm20 import NFET_20NM_HP, PFET_20NM_HP
from ..pg.modes import OperatingConditions
from . import cache

#: Sources whose delivered energy constitutes the FF energy.
FF_SUPPLY_SOURCES = ("vdd", "vclk", "vd", "vctrl")

#: Power-switch width for a flip-flop (16 transistors vs 6-8 in a cell).
FF_NFSW = 14


@dataclass
class FlipFlopCharacterization:
    """Per-mode energies and delays of the NV-FF (joules / seconds).

    ``e_clock_toggle`` / ``e_clock_hold`` are per-clock-cycle energies
    with the data input toggling every cycle / held constant; real
    activity factors interpolate between them.
    """

    vdd: float
    clock_frequency: float
    e_clock_toggle: float = 0.0
    e_clock_hold: float = 0.0
    clk_to_q_delay: float = 0.0
    p_normal: float = 0.0
    p_shutdown: float = 0.0
    e_store: float = 0.0
    t_store: float = 0.0
    e_restore: float = 0.0
    t_restore: float = 0.0
    store_events: int = 0
    restore_ok: bool = True
    extras: Dict[str, float] = field(default_factory=dict)

    def e_clock(self, activity: float) -> float:
        """Per-cycle energy at a data activity factor in [0, 1]."""
        if not (0.0 <= activity <= 1.0):
            raise CharacterizationError("activity must be in [0, 1]")
        return (self.e_clock_hold
                + activity * (self.e_clock_toggle - self.e_clock_hold))

    def validate(self) -> None:
        checks = [
            ("e_clock_toggle", self.e_clock_toggle > 0),
            ("toggle >= hold", self.e_clock_toggle >= self.e_clock_hold),
            ("p_normal", self.p_normal > 0),
            ("shutdown < normal", self.p_shutdown < self.p_normal),
            ("e_store", self.e_store > 0),
            ("store switched both MTJs", self.store_events >= 2),
            ("restore recovered data", self.restore_ok),
            ("clk-q delay", 0 < self.clk_to_q_delay < 1.0 /
             self.clock_frequency),
        ]
        failed = [name for name, ok in checks if not ok]
        if failed:
            raise CharacterizationError(
                f"NV-FF characterisation failed sanity checks: {failed}"
            )

    def to_json(self) -> str:
        return json.dumps(dataclasses.asdict(self), indent=2,
                          sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FlipFlopCharacterization":
        return cls(**json.loads(text))


def _build_ff_bench(cond: OperatingConditions,
                    nfet: FinFETParams, pfet: FinFETParams,
                    mtj_params: MTJParams):
    c = Circuit("nvff-characterisation")
    c.add(VoltageSource("vdd", "rail", "0", dc=cond.vdd))
    c.add(VoltageSource("vpg", "pg", "0", dc=0.0))
    add_power_switch(c, "psw", "rail", "vvdd", "pg", nfsw=FF_NFSW,
                     pfet=pfet)
    c.add(VoltageSource("vclk", "clk", "0", dc=0.0))
    c.add(VoltageSource("vd", "d", "0", dc=0.0))
    c.add(VoltageSource("vsr", "sr", "0", dc=0.0))
    c.add(VoltageSource("vctrl", "ctrl", "0", dc=cond.v_ctrl_normal))
    ff = add_nvff(c, "ff", "d", "clk", "vvdd", "sr", "ctrl",
                  nfet=nfet, pfet=pfet, mtj_params=mtj_params)
    return c, ff


def characterize_nvff(
    cond: Optional[OperatingConditions] = None,
    nfet: FinFETParams = NFET_20NM_HP,
    pfet: FinFETParams = PFET_20NM_HP,
    mtj_params: MTJParams = MTJ_TABLE1,
    cache_dir: "Optional[Path] | str" = "auto",
    validate: bool = True,
    lint: bool = True,
) -> FlipFlopCharacterization:
    """Characterise the NV-FF under ``cond``.

    Runs: clocked-toggle and clocked-hold transients (per-cycle energy,
    clk-to-Q delay), static operating points (normal and super-cutoff
    shutdown), a two-step store and a collapsed-rail restore.  With
    ``lint=True`` (default) the bench netlist is statically analysed
    first (:func:`repro.verify.assert_clean`); error findings raise
    :class:`~repro.errors.VerificationError`.
    """
    if cache_dir == "auto":
        cache_dir = cache.default_cache_dir()
    if cache_dir is not None:
        cache_dir = Path(cache_dir)
    cond = cond or OperatingConditions()
    key = cache.cache_key(kind="nvff", cond=cond, nfet=nfet, pfet=pfet,
                          mtj=mtj_params)
    if cache_dir is not None:
        payload = cache.load_payload(cache_dir, key)
        if payload is not None:
            try:
                return FlipFlopCharacterization(**payload)
            except TypeError as err:
                cache.reject_payload(
                    cache_dir, key,
                    f"payload does not fit FlipFlopCharacterization ({err})")

    result = FlipFlopCharacterization(
        vdd=cond.vdd, clock_frequency=cond.frequency,
    )
    if lint:
        from ..verify import assert_clean
        bench, _ = _build_ff_bench(cond, nfet, pfet, mtj_params)
        assert_clean(bench, target="cell:nvff")
    _extract_static(cond, nfet, pfet, mtj_params, result)
    _extract_clocking(cond, nfet, pfet, mtj_params, result)
    _extract_store(cond, nfet, pfet, mtj_params, result)
    _extract_restore(cond, nfet, pfet, mtj_params, result)
    if validate:
        result.validate()
    if cache_dir is not None:
        cache.store_payload(cache_dir, key, json.loads(result.to_json()))
    return result


def _supply_power(circuit, sol) -> float:
    return sum(circuit[name].delivered_power(sol)
               for name in FF_SUPPLY_SOURCES)


def _extract_static(cond, nfet, pfet, mtj_params,
                    out: FlipFlopCharacterization) -> None:
    c, ff = _build_ff_bench(cond, nfet, pfet, mtj_params)
    ic = dict(ff.initial_conditions(True, cond.vdd))
    ic["vvdd"] = cond.vdd
    sol = operating_point(c, ic=ic)
    out.p_normal = max(_supply_power(c, sol), 0.0)

    c2, _ = _build_ff_bench(cond, nfet, pfet, mtj_params)
    c2["vpg"].set_level(cond.v_pg_super)
    c2["vctrl"].set_level(0.0)
    sol = operating_point(c2)
    out.p_shutdown = max(_supply_power(c2, sol), 0.0)


def _clock_run(cond, nfet, pfet, mtj_params, toggle: bool):
    """Four clock cycles; D toggles each cycle or stays constant."""
    t_clk = cond.t_cycle
    cycles = 5
    c, ff = _build_ff_bench(cond, nfet, pfet, mtj_params)
    c["vclk"].set_waveform(Pulse(
        0.0, cond.vdd, delay=0.5 * t_clk, rise=50e-12, fall=50e-12,
        width=0.45 * t_clk, period=t_clk,
    ))
    if toggle:
        # D flips a quarter period before each rising edge.
        points = [(0.0, cond.vdd)]
        level = cond.vdd
        for k in range(1, cycles + 1):
            t = (k + 0.15) * t_clk
            level = 0.0 if level else cond.vdd
            points.append((t, points[-1][1]))
            points.append((t + 100e-12, level))
        c["vd"].set_waveform(PiecewiseLinear(points))
    else:
        c["vd"].set_level(cond.vdd)
    ic = dict(ff.initial_conditions(True, cond.vdd))
    ic["vvdd"] = cond.vdd
    result = transient(c, (cycles + 0.4) * t_clk, ic=ic,
                       options=TransientOptions(dt_initial=20e-12))
    return c, ff, result


def _extract_clocking(cond, nfet, pfet, mtj_params,
                      out: FlipFlopCharacterization) -> None:
    t_clk = cond.t_cycle
    # Steady-state cycle window: the fourth clock period.
    window = (3.5 * t_clk, 4.5 * t_clk)

    c, ff, res = _clock_run(cond, nfet, pfet, mtj_params, toggle=True)
    out.e_clock_toggle = res.energy(FF_SUPPLY_SOURCES, *window)
    # clk-to-Q: the rising edge in that window latches new data.
    edge = 3.5 * t_clk
    q_before = res.sample(ff.q, edge - 0.1 * t_clk)
    direction = "rise" if q_before < cond.vdd / 2 else "fall"
    crossing = res.crossing_time(ff.q, cond.vdd / 2, direction,
                                 after=edge)
    if crossing is None or crossing > edge + t_clk:
        raise CharacterizationError("NV-FF did not latch on the edge")
    out.clk_to_q_delay = crossing - edge

    c, ff, res = _clock_run(cond, nfet, pfet, mtj_params, toggle=False)
    out.e_clock_hold = res.energy(FF_SUPPLY_SOURCES, *window)
    if not ff.read_q(res.final_solution(), cond.vdd):
        raise CharacterizationError("NV-FF lost constant data")


def _extract_store(cond, nfet, pfet, mtj_params,
                   out: FlipFlopCharacterization) -> None:
    c, ff = _build_ff_bench(cond, nfet, pfet, mtj_params)
    c["vsr"].set_waveform(Step(0.0, cond.v_sr, 1e-9, 100e-12))
    c["vctrl"].set_waveform(
        Step(0.0, cond.v_ctrl_store, 1e-9 + cond.t_store_step, 100e-12)
    )
    ff.set_mtj_data(c, False)    # must flip both junctions
    ic = dict(ff.initial_conditions(True, cond.vdd))
    ic["vvdd"] = cond.vdd
    total = 1e-9 + cond.t_store + 1e-9
    res = transient(c, total, ic=ic,
                    options=TransientOptions(dt_initial=20e-12))
    out.e_store = res.energy(FF_SUPPLY_SOURCES, 1e-9, 1e-9 + cond.t_store)
    out.t_store = cond.t_store
    out.store_events = len(res.events)
    if ff.stored_data(c) is not True:
        raise CharacterizationError("NV-FF store did not encode the data")


def _extract_restore(cond, nfet, pfet, mtj_params,
                     out: FlipFlopCharacterization) -> None:
    c, ff = _build_ff_bench(cond, nfet, pfet, mtj_params)
    c["vpg"].set_waveform(Step(cond.v_pg_super, 0.0, 1e-9, 200e-12))
    c["vsr"].set_level(cond.v_sr)
    c["vctrl"].set_level(0.0)
    ff.set_mtj_data(c, True)
    ic = {"vvdd": 0.0, ff.q: 0.0, ff.s: 0.0, ff.s3: 0.0,
          f"{ff.name}.m1": 0.0, f"{ff.name}.m2": 0.0}
    t_window = 1e-9 + cond.t_restore + 4e-9
    res = transient(c, t_window, ic=ic,
                    options=TransientOptions(dt_initial=20e-12))
    out.e_restore = res.energy(FF_SUPPLY_SOURCES, 1e-9,
                               1e-9 + cond.t_restore + 2e-9)
    out.t_restore = cond.t_restore + 2e-9
    out.restore_ok = ff.read_q(res.final_solution(), cond.vdd)
