"""Store-current extraction (paper Figs. 3(b) and 3(c)).

The two-step store must push at least ``store_margin x Ic`` through each
MTJ to guarantee current-induced magnetisation switching:

* **Fig. 3(b)** — H-store: SR is swept with CTRL grounded; the high
  storage node sources the current ``I_MTJ(P->AP)`` through its PS-FinFET
  and (parallel-state) MTJ into CTRL.
* **Fig. 3(c)** — L-store: with SR fixed at its chosen value, CTRL is
  swept; the CTRL line sources ``I_MTJ(AP->P)`` through the (antiparallel)
  MTJ and PS-FinFET into the low storage node.

Both sweeps are DC: the MTJ state is frozen during operating-point
analyses, exactly like sweeping a fixed-state macromodel in HSPICE.
The helpers also report the minimum bias achieving the required margin,
which is how the paper justifies V_SR = 0.65 V / V_CTRL = 0.5 V.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..errors import CharacterizationError
from ..analysis import dc_sweep
from ..recovery.partial import SkipRecord
from ..cells import PowerDomain
from ..devices.mtj import MTJState
from ..devices.finfet import FinFETParams
from ..devices.mtj import MTJParams, MTJ_TABLE1
from ..devices.ptm20 import NFET_20NM_HP, PFET_20NM_HP
from ..pg.modes import Mode, OperatingConditions
from .testbench import build_cell_testbench


@dataclass
class StoreCurrentSweep:
    """One store-current transfer curve plus margin bookkeeping."""

    bias_name: str                 # "v_sr" or "v_ctrl"
    bias: np.ndarray
    current: np.ndarray            # |I_MTJ| at each bias point (amps)
    i_critical: float              # MTJ critical current Ic
    margin: float                  # required multiple of Ic
    bias_at_margin: Optional[float]  # smallest bias reaching margin*Ic
    skips: List[SkipRecord] = field(default_factory=list)  # NaN points

    @property
    def i_required(self) -> float:
        return self.margin * self.i_critical

    def rows(self):
        return [(float(b), float(i)) for b, i in zip(self.bias, self.current)]


def _find_margin_bias(bias: np.ndarray, current: np.ndarray,
                      target: float) -> Optional[float]:
    """Smallest bias where |I| first reaches ``target`` (interpolated).

    NaN entries (skipped sweep points) never satisfy the comparison and
    are never interpolated against: the conservative answer is the first
    *converged* point at or above the target.
    """
    above = np.nonzero(current >= target)[0]
    if above.size == 0:
        return None
    k = int(above[0])
    if k == 0:
        return float(bias[0])
    b0, b1 = bias[k - 1], bias[k]
    i0, i1 = current[k - 1], current[k]
    if not np.isfinite(i0):
        return float(b1)
    if i1 == i0:
        return float(b1)
    return float(b0 + (target - i0) * (b1 - b0) / (i1 - i0))


def store_current_vs_vsr(
    cond: Optional[OperatingConditions] = None,
    domain: Optional[PowerDomain] = None,
    v_sr_values: Optional[Sequence[float]] = None,
    nfet: FinFETParams = NFET_20NM_HP,
    pfet: FinFETParams = PFET_20NM_HP,
    mtj_params: MTJParams = MTJ_TABLE1,
) -> StoreCurrentSweep:
    """Fig. 3(b): H-store current I_MTJ(P->AP) versus V_SR."""
    cond = cond or OperatingConditions()
    domain = domain or PowerDomain()
    if v_sr_values is None:
        v_sr_values = np.linspace(0.0, 0.9, 37)

    tb = build_cell_testbench("nv", cond, domain, nfet=nfet, pfet=pfet,
                              mtj_params=mtj_params)
    tb.apply_mode(Mode.STORE_H)          # CTRL = 0, store bias elsewhere
    cell = tb.nv_cell
    # H-store drives the Q-side MTJ out of the parallel state.
    cell.set_mtj_states(tb.circuit, MTJState.PARALLEL, MTJState.ANTIPARALLEL)
    ic = tb.initial_conditions(True)     # Q high

    sweep = dc_sweep(tb.circuit, "vsr", v_sr_values, ic=ic, on_error="skip")
    mtj = cell.mtj_q(tb.circuit)
    current = np.abs(sweep.measure(mtj.current))
    bias = np.asarray(list(v_sr_values), dtype=float)

    return StoreCurrentSweep(
        bias_name="v_sr",
        bias=bias,
        current=current,
        i_critical=mtj.params.critical_current,
        margin=cond.store_margin,
        bias_at_margin=_find_margin_bias(
            bias, current, cond.store_margin * mtj.params.critical_current
        ),
        skips=list(sweep.skips),
    )


def store_current_vs_vctrl(
    cond: Optional[OperatingConditions] = None,
    domain: Optional[PowerDomain] = None,
    v_ctrl_values: Optional[Sequence[float]] = None,
    nfet: FinFETParams = NFET_20NM_HP,
    pfet: FinFETParams = PFET_20NM_HP,
    mtj_params: MTJParams = MTJ_TABLE1,
) -> StoreCurrentSweep:
    """Fig. 3(c): L-store current I_MTJ(AP->P) versus V_CTRL at fixed V_SR."""
    cond = cond or OperatingConditions()
    domain = domain or PowerDomain()
    if v_ctrl_values is None:
        v_ctrl_values = np.linspace(0.0, 0.9, 37)

    tb = build_cell_testbench("nv", cond, domain, nfet=nfet, pfet=pfet,
                              mtj_params=mtj_params)
    tb.apply_mode(Mode.STORE_L)          # SR = v_sr, CTRL will be swept
    cell = tb.nv_cell
    # After the H-store, the QB-side MTJ still holds the antiparallel
    # state the L-store must overwrite.
    cell.set_mtj_states(tb.circuit, MTJState.ANTIPARALLEL, MTJState.ANTIPARALLEL)
    ic = tb.initial_conditions(True)     # QB low

    sweep = dc_sweep(tb.circuit, "vctrl", v_ctrl_values, ic=ic,
                     on_error="skip")
    mtj = cell.mtj_qb(tb.circuit)
    current = np.abs(sweep.measure(mtj.current))
    bias = np.asarray(list(v_ctrl_values), dtype=float)

    return StoreCurrentSweep(
        bias_name="v_ctrl",
        bias=bias,
        current=current,
        i_critical=mtj.params.critical_current,
        margin=cond.store_margin,
        bias_at_margin=_find_margin_bias(
            bias, current, cond.store_margin * mtj.params.critical_current
        ),
        skips=list(sweep.skips),
    )


def verify_store_bias_choice(cond: Optional[OperatingConditions] = None,
                             domain: Optional[PowerDomain] = None) -> dict:
    """Check that Table I's (V_SR, V_CTRL) = (0.65, 0.5) meets the margin.

    Returns a summary dict; raises if the margin is unreachable anywhere
    in the swept range.
    """
    cond = cond or OperatingConditions()
    h = store_current_vs_vsr(cond, domain)
    l = store_current_vs_vctrl(cond, domain)
    if h.bias_at_margin is None or l.bias_at_margin is None:
        raise CharacterizationError(
            "store-current margin unreachable in the swept bias range"
        )
    return {
        "v_sr_required": h.bias_at_margin,
        "v_ctrl_required": l.bias_at_margin,
        "i_required": h.i_required,
        "i_at_table1_vsr": float(np.interp(cond.v_sr, h.bias, h.current)),
        "i_at_table1_vctrl": float(np.interp(cond.v_ctrl_store, l.bias, l.current)),
    }


def derive_store_biases(
    cond: Optional[OperatingConditions] = None,
    domain: Optional[PowerDomain] = None,
    nfet: FinFETParams = NFET_20NM_HP,
    pfet: FinFETParams = PFET_20NM_HP,
    mtj_params: MTJParams = MTJ_TABLE1,
    guard_band: float = 0.03,
) -> OperatingConditions:
    """Derive (V_SR, V_CTRL) from the Fig. 3(b)/(c) curves.

    This is the paper's design methodology made executable: sweep the two
    store biases, find the smallest values reaching ``store_margin x Ic``
    and add a small guard band.  It is what makes the Fig. 9(b)
    configuration meaningful — with the relaxed Jc = 1e6 A/cm^2 card the
    margin is met at much lower biases, which is where the store-energy
    (and hence BET) reduction comes from.

    Returns a copy of ``cond`` with ``v_sr`` and ``v_ctrl_store`` replaced.

    Raises
    ------
    CharacterizationError
        If either margin is unreachable within the supply range.
    """
    cond = cond or OperatingConditions()
    domain = domain or PowerDomain()
    h = store_current_vs_vsr(cond, domain, nfet=nfet, pfet=pfet,
                             mtj_params=mtj_params)
    if h.bias_at_margin is None:
        raise CharacterizationError(
            "H-store margin unreachable: max "
            f"{np.nanmax(h.current):.3g} A < {h.i_required:.3g} A"
        )
    v_sr = min(h.bias_at_margin + guard_band, cond.vdd)
    cond_h = cond.with_(v_sr=v_sr)
    l = store_current_vs_vctrl(cond_h, domain, nfet=nfet, pfet=pfet,
                               mtj_params=mtj_params)
    if l.bias_at_margin is None:
        raise CharacterizationError(
            "L-store margin unreachable: max "
            f"{np.nanmax(l.current):.3g} A < {l.i_required:.3g} A"
        )
    v_ctrl = min(l.bias_at_margin + guard_band, cond.vdd)
    return cond_h.with_(v_ctrl_store=v_ctrl)
