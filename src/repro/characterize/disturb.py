"""MTJ disturbance analysis for MTJ-connected operation (NOF hazard).

Under NVPG the PS-FinFETs isolate the MTJs whenever the cell is read or
written, so the junctions see no current.  The NOF architecture keeps
nonvolatile retention engaged during normal operation — which means
every read and write drives *some* current through the MTJs.  If that
current approaches the critical current for long enough, ordinary
accesses can corrupt the stored state (an analogue of SRAM read
disturb).

This module runs read and write transients with the SR line active and
reports the worst junction current relative to Ic, plus the accumulated
switching progress predicted by the CIMS model — quantifying a hazard
the paper's architecture comparison implies but does not plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..analysis import transient
from ..analysis.transient import TransientOptions
from ..cells import PowerDomain
from ..devices.finfet import FinFETParams
from ..devices.mtj import MTJParams, MTJState, MTJ_TABLE1
from ..devices.ptm20 import NFET_20NM_HP, PFET_20NM_HP
from ..pg.modes import Mode, OperatingConditions
from ..pg.scheduler import Schedule, ScheduleStep
from .testbench import build_cell_testbench


@dataclass
class DisturbReport:
    """Worst-case MTJ stress during MTJ-connected accesses.

    Attributes
    ----------
    peak_current_ratio:
        max |I_MTJ| / Ic over both junctions and the whole activity
        burst.  Below 1.0 means no switching is possible at all.
    peak_progress:
        Largest CIMS switching progress either junction accumulated
        (1.0 would mean an actual flip).
    flipped:
        True if a junction actually switched during the burst — a hard
        disturb failure.
    mode:
        "read" or "write".
    """

    mode: str
    peak_current_ratio: float
    peak_progress: float
    flipped: bool

    @property
    def safe(self) -> bool:
        """No flip and a healthy margin below the critical current."""
        return not self.flipped and self.peak_current_ratio < 0.95


def _mtj_current_trace(result, mtj) -> np.ndarray:
    free_idx, pinned_idx = mtj.node_index
    v_free = result.states[:, free_idx] if free_idx >= 0 else 0.0
    v_pinned = result.states[:, pinned_idx] if pinned_idx >= 0 else 0.0
    v = np.asarray(v_free - v_pinned)
    return np.array([mtj.current_at(float(vi), mtj.state) for vi in v])


def nof_access_disturb(
    mode: Mode,
    cond: Optional[OperatingConditions] = None,
    domain: Optional[PowerDomain] = None,
    cycles: int = 4,
    data: bool = True,
    nfet: FinFETParams = NFET_20NM_HP,
    pfet: FinFETParams = PFET_20NM_HP,
    mtj_params: MTJParams = MTJ_TABLE1,
) -> DisturbReport:
    """Stress the MTJs with a burst of accesses while SR is active.

    Parameters
    ----------
    mode:
        ``Mode.READ`` or ``Mode.WRITE`` — the access type to burst.
    cycles:
        Number of back-to-back access cycles.

    The MTJ states are set consistent with the stored data (the NOF
    steady state), so any switching event is a genuine disturb.
    """
    cond = cond or OperatingConditions()
    domain = domain or PowerDomain()
    if mode not in (Mode.READ, Mode.WRITE):
        raise ValueError("disturb analysis takes Mode.READ or Mode.WRITE")

    tb = build_cell_testbench("nv", cond, domain, nfet=nfet, pfet=pfet,
                              mtj_params=mtj_params)
    t_cyc = cond.t_cycle
    steps: List[ScheduleStep] = [ScheduleStep(Mode.STANDBY, t_cyc)]
    toggle = data
    for _ in range(cycles):
        if mode is Mode.READ:
            steps.append(ScheduleStep(Mode.READ, t_cyc))
        else:
            toggle = not toggle
            steps.append(ScheduleStep(Mode.WRITE, t_cyc, data=toggle))
    steps.append(ScheduleStep(Mode.STANDBY, t_cyc))
    schedule = Schedule(steps, cond, volatile=False)

    waves = schedule.line_waveforms()
    tb.apply_waveforms(waves)
    # NOF: retention engaged during normal operation.
    tb.circuit["vsr"].set_level(cond.v_sr)
    tb.circuit["vctrl"].set_level(cond.v_ctrl_normal)
    tb.set_mtj_data(data)

    result = transient(
        tb.circuit, schedule.total_duration,
        ic=tb.initial_conditions(data),
        options=TransientOptions(dt_initial=min(20e-12, t_cyc / 200.0)),
    )

    cell = tb.nv_cell
    ratios = []
    progresses = []
    for mtj in (cell.mtj_q(tb.circuit), cell.mtj_qb(tb.circuit)):
        trace = np.abs(_mtj_current_trace(result, mtj))
        ratios.append(float(trace.max()) / mtj.params.critical_current)
        progresses.append(mtj.progress)
    return DisturbReport(
        mode=mode.value,
        peak_current_ratio=max(ratios),
        peak_progress=max(progresses),
        flipped=len(result.events) > 0,
    )


def nvpg_access_disturb(
    mode: Mode,
    cond: Optional[OperatingConditions] = None,
    domain: Optional[PowerDomain] = None,
    **kwargs,
) -> DisturbReport:
    """The NVPG reference: the same burst with SR held off.

    The PS-FinFETs isolate the junctions, so the peak current ratio is
    essentially zero — the contrast that motivates the separation.
    """
    cond = cond or OperatingConditions()
    domain = domain or PowerDomain()
    tb = build_cell_testbench("nv", cond, domain, **kwargs)
    t_cyc = cond.t_cycle
    steps = [ScheduleStep(Mode.STANDBY, t_cyc)]
    toggle = True
    for _ in range(4):
        if mode is Mode.READ:
            steps.append(ScheduleStep(Mode.READ, t_cyc))
        else:
            toggle = not toggle
            steps.append(ScheduleStep(Mode.WRITE, t_cyc, data=toggle))
    steps.append(ScheduleStep(Mode.STANDBY, t_cyc))
    schedule = Schedule(steps, cond, volatile=False)
    tb.apply_waveforms(schedule.line_waveforms())
    tb.set_mtj_data(True)
    result = transient(
        tb.circuit, schedule.total_duration,
        ic=tb.initial_conditions(True),
        options=TransientOptions(dt_initial=min(20e-12, t_cyc / 200.0)),
    )
    cell = tb.nv_cell
    ratios = []
    for mtj in (cell.mtj_q(tb.circuit), cell.mtj_qb(tb.circuit)):
        trace = np.abs(_mtj_current_trace(result, mtj))
        ratios.append(float(trace.max()) / mtj.params.critical_current)
    return DisturbReport(
        mode=mode.value,
        peak_current_ratio=max(ratios),
        peak_progress=max(
            cell.mtj_q(tb.circuit).progress,
            cell.mtj_qb(tb.circuit).progress,
        ),
        flipped=len(result.events) > 0,
    )
