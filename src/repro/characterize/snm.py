"""Static-noise-margin (SNM) butterfly analysis.

The paper's Section II notes that the (N_FL, N_FD) = (1, 1) fin choice
minimises area at the cost of cell stability, quantified by the static
noise margin.  This module extracts hold- and read-mode SNM with the
classic butterfly-curve construction:

1. break the cross-coupled loop and sweep one inverter's input to get its
   voltage transfer curve (VTC), with the access transistor loading the
   output in read mode;
2. overlay the VTC with its mirror about the Q = QB diagonal;
3. the SNM is the side of the largest square nested in the smaller lobe,
   computed with the 45-degree coordinate rotation method.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import CharacterizationError
from ..analysis import dc_sweep
from ..circuit import Circuit, VoltageSource
from ..devices.finfet import FinFET, FinFETParams
from ..devices.ptm20 import NFET_20NM_HP, PFET_20NM_HP
from ..pg.modes import OperatingConditions


@dataclass
class ButterflyCurve:
    """A VTC and the derived noise-margin geometry."""

    vin: np.ndarray
    vout: np.ndarray
    snm: float
    lobe_margins: Tuple[float, float]
    mode: str  # "hold" or "read"


def _build_half_cell(cond: OperatingConditions, read_mode: bool,
                     nfl: int, nfd: int, nfp: int,
                     nfet: FinFETParams, pfet: FinFETParams) -> Circuit:
    vdd = cond.vdd
    circuit = Circuit(f"snm-half-cell-{'read' if read_mode else 'hold'}")
    circuit.add(VoltageSource("vdd", "vdd", "0", dc=vdd))
    circuit.add(VoltageSource("vin", "in", "0", dc=0.0))
    circuit.add(FinFET("pu", "out", "in", "vdd", pfet, nfl))
    circuit.add(FinFET("pd", "out", "in", "0", nfet, nfd))
    if read_mode:
        # Precharged bitline held at VDD through the asserted pass gate —
        # the worst-case disturbance of the low storage node.  Word-line
        # underdrive (if configured) weakens the pass gate and recovers
        # read margin, the paper's named bias-assist knob.
        circuit.add(VoltageSource("vbl", "bl", "0", dc=vdd))
        circuit.add(VoltageSource("vwl", "wl", "0", dc=cond.v_wl_read))
        circuit.add(FinFET("pg", "bl", "wl", "out", nfet, nfp))
    return circuit


def butterfly_curve(
    cond: Optional[OperatingConditions] = None,
    read_mode: bool = True,
    nfl: int = 1,
    nfd: int = 1,
    nfp: int = 1,
    nfet: FinFETParams = NFET_20NM_HP,
    pfet: FinFETParams = PFET_20NM_HP,
    points: int = 121,
) -> ButterflyCurve:
    """Trace the VTC and compute the butterfly SNM."""
    cond = cond or OperatingConditions()
    circuit = _build_half_cell(cond, read_mode, nfl, nfd, nfp, nfet, pfet)
    vin = np.linspace(0.0, cond.vdd, points)
    sweep = dc_sweep(circuit, "vin", vin)
    vout = sweep.voltage("out")
    snm, lobes = _butterfly_snm(vin, vout)
    return ButterflyCurve(
        vin=vin,
        vout=vout,
        snm=snm,
        lobe_margins=lobes,
        mode="read" if read_mode else "hold",
    )


def static_noise_margin(cond: Optional[OperatingConditions] = None,
                        read_mode: bool = True, **kwargs) -> float:
    """Convenience wrapper returning just the SNM in volts."""
    return butterfly_curve(cond, read_mode=read_mode, **kwargs).snm


def _butterfly_snm(vin: np.ndarray, vout: np.ndarray) -> Tuple[float, Tuple[float, float]]:
    """Symmetric-butterfly SNM: one VTC overlaid with its own mirror."""
    return _butterfly_snm_two(vin, vout, vout)


def _butterfly_snm_two(
    vin: np.ndarray,
    vout1: np.ndarray,
    vout2: np.ndarray,
) -> Tuple[float, Tuple[float, float]]:
    """General (asymmetric) butterfly SNM via Seevinck's 45-deg rotation.

    Curve A is inverter 1's VTC ``(x, f(x))``; curve B is inverter 2's
    VTC mirrored about the diagonal, ``(g(y), y)``.  In the anti-diagonal
    frame ``u = (x - y)/sqrt(2)``, ``v = (x + y)/sqrt(2)`` both curves
    are single-valued functions of ``u`` (A increasing in x, B's ``u``
    decreasing in y), so the eye separations reduce to the signed
    difference ``d(u) = vB(u) - vA(u)``: the two lobes are the maxima of
    ``+d`` and ``-d``, each divided by sqrt(2) to convert the nested
    square's diagonal into its side.  The cell SNM is the smaller lobe.

    With ``vout1 == vout2`` this reduces exactly to the classic
    symmetric construction (both lobes equal).
    """
    sqrt2 = np.sqrt(2.0)
    u_a = (vin - vout1) / sqrt2
    v_a = (vin + vout1) / sqrt2
    # Curve B: (g(y), y) parameterised by y = vin.
    u_b = (vout2 - vin) / sqrt2
    v_b = (vout2 + vin) / sqrt2
    if not np.all(np.diff(u_a) > 0) or not np.all(np.diff(u_b) < 0):
        raise CharacterizationError(
            "VTC is not inverting/monotone — cannot rotate the butterfly"
        )
    u_b = u_b[::-1]
    v_b = v_b[::-1]

    lo = max(u_a[0], u_b[0])
    hi = min(u_a[-1], u_b[-1])
    if hi <= lo:
        raise CharacterizationError(
            "butterfly lobes did not form — the cell is not bistable"
        )
    u_grid = np.linspace(lo, hi, 400)
    diff = np.interp(u_grid, u_b, v_b) - np.interp(u_grid, u_a, v_a)
    lobe1 = float(diff.max() / sqrt2)
    lobe2 = float(-diff.min() / sqrt2)
    if lobe1 <= 0 or lobe2 <= 0:
        raise CharacterizationError(
            "butterfly lobes did not form — the cell is not bistable"
        )
    return min(lobe1, lobe2), (lobe1, lobe2)
