"""Leakage-current extraction (paper Fig. 3(a)).

Sweeps the CTRL-line bias of the NV-SRAM cell in the normal operation
mode and reports the cell leakage current, together with the flat
reference line of the equivalent volatile 6T cell.  The paper's result —
a leakage minimum at a small positive V_CTRL (0.07 V), where the NV cell
becomes comparable to the 6T cell — emerges from two competing paths:

* at V_CTRL = 0 the off PS-FinFETs see the full storage-node voltage and
  leak through the MTJs into CTRL;
* raising V_CTRL reverse-biases the PS-FinFET gates (V_GS < 0) and chokes
  that path, but past the optimum CTRL itself back-injects current
  through the MTJ into the low storage node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..analysis import dc_sweep, operating_point
from ..errors import ConvergenceError
from ..recovery.partial import SkipRecord
from ..cells import PowerDomain
from ..devices.finfet import FinFETParams
from ..devices.mtj import MTJParams, MTJ_TABLE1
from ..devices.ptm20 import NFET_20NM_HP, PFET_20NM_HP
from ..pg.modes import Mode, OperatingConditions
from .testbench import SUPPLY_SOURCES, build_cell_testbench


@dataclass
class LeakageSweep:
    """Fig. 3(a) data: leakage vs V_CTRL plus the 6T reference.

    ``i_leak_nv`` is NaN at skipped points (see ``skips``); the optimum is
    taken over the converged points only.
    """

    v_ctrl: np.ndarray
    i_leak_nv: np.ndarray
    i_leak_6t: float
    v_ctrl_optimal: float
    i_leak_nv_min: float
    skips: List[SkipRecord] = field(default_factory=list)

    def rows(self):
        """(v_ctrl, i_nv, i_6t) tuples for tabular reports."""
        return [
            (float(v), float(i), self.i_leak_6t)
            for v, i in zip(self.v_ctrl, self.i_leak_nv)
        ]


def _cell_leakage_current(tb, sol) -> float:
    """Total static current drawn by the cell, referred to VDD."""
    power = sum(tb.circuit[name].delivered_power(sol) for name in SUPPLY_SOURCES)
    return max(power, 0.0) / tb.cond.vdd


def leakage_vs_vctrl(
    cond: Optional[OperatingConditions] = None,
    domain: Optional[PowerDomain] = None,
    v_ctrl_values: Optional[Sequence[float]] = None,
    data: bool = True,
    nfet: FinFETParams = NFET_20NM_HP,
    pfet: FinFETParams = PFET_20NM_HP,
    mtj_params: MTJParams = MTJ_TABLE1,
) -> LeakageSweep:
    """Reproduce Fig. 3(a): normal-mode leakage as a function of V_CTRL."""
    cond = cond or OperatingConditions()
    domain = domain or PowerDomain()
    if v_ctrl_values is None:
        v_ctrl_values = np.linspace(0.0, 0.30, 31)

    tb = build_cell_testbench("nv", cond, domain, nfet=nfet, pfet=pfet,
                              mtj_params=mtj_params)
    tb.apply_mode(Mode.STANDBY)
    ic = tb.initial_conditions(data)
    sweep = dc_sweep(tb.circuit, "vctrl", v_ctrl_values, ic=ic,
                     on_error="skip")
    i_nv = sweep.measure(lambda sol: _cell_leakage_current(tb, sol))

    tb6 = build_cell_testbench("6t", cond, domain, nfet=nfet, pfet=pfet)
    tb6.apply_mode(Mode.STANDBY)
    sol6 = operating_point(tb6.circuit, ic=tb6.initial_conditions(data))
    i_6t = _cell_leakage_current(tb6, sol6)

    values = np.asarray(list(v_ctrl_values), dtype=float)
    if np.all(np.isnan(i_nv)):
        raise ConvergenceError(
            "leakage sweep: every V_CTRL point failed to converge")
    best = int(np.nanargmin(i_nv))
    return LeakageSweep(
        v_ctrl=values,
        i_leak_nv=np.asarray(i_nv),
        i_leak_6t=i_6t,
        v_ctrl_optimal=float(values[best]),
        i_leak_nv_min=float(i_nv[best]),
        skips=list(sweep.skips),
    )
