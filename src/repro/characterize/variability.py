"""Monte-Carlo variability analysis: mismatch, store yield, SNM spread.

The paper evaluates a nominal cell; a production assessment must ask how
the design margins survive device variation.  This module samples
per-device parameter variations (threshold-voltage mismatch for the
FinFETs, critical-current and resistance spread for the MTJs) and
propagates them through the same DC analyses used for the nominal
design curves:

* :func:`store_yield_analysis` — does the two-step store still exceed
  the (sampled) MTJ critical current in every corner?  This is the
  statistical justification of the paper's 1.5 x Ic margin rule.
* :func:`read_snm_distribution` — spread of the read static noise
  margin with mismatched cross-coupled inverters (the asymmetric
  butterfly), quantifying the stability cost of the (1,1) fin design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..errors import CharacterizationError, ConvergenceError
from ..analysis import dc_sweep, operating_point
from ..recovery.partial import SkipRecord, run_point
from ..cells import PowerDomain
from ..circuit import Circuit, VoltageSource
from ..devices.finfet import FinFET, FinFETParams
from ..devices.mtj import MTJ, MTJState
from ..devices.ptm20 import NFET_20NM_HP, PFET_20NM_HP
from ..pg.modes import Mode, OperatingConditions
from .snm import _butterfly_snm_two
from .testbench import build_cell_testbench


@dataclass(frozen=True)
class VariationModel:
    """Statistical variation magnitudes (1-sigma).

    Attributes
    ----------
    sigma_vth:
        Threshold-voltage mismatch per device (volts).  ~25 mV is a
        typical Pelgrom-law value for a minimum (one-fin) 20 nm device.
    sigma_ispec_rel:
        Relative current-factor spread per device.
    sigma_ic_rel:
        Relative MTJ critical-current spread.
    sigma_r_rel:
        Relative MTJ resistance (RA product) spread.
    """

    sigma_vth: float = 0.025
    sigma_ispec_rel: float = 0.05
    sigma_ic_rel: float = 0.05
    sigma_r_rel: float = 0.04

    def sample_fet(self, params: FinFETParams,
                   rng: np.random.Generator) -> FinFETParams:
        """One mismatched instance of a FinFET card."""
        vth = max(params.vth0 + rng.normal(0.0, self.sigma_vth), 0.01)
        i_spec = params.i_spec * float(
            np.exp(rng.normal(0.0, self.sigma_ispec_rel))
        )
        return params.with_(vth0=vth, i_spec=i_spec)

    def sample_mtj(self, params, rng: np.random.Generator):
        """One varied instance of an MTJ card."""
        jc = params.jc * float(np.exp(rng.normal(0.0, self.sigma_ic_rel)))
        ra = params.ra_product * float(
            np.exp(rng.normal(0.0, self.sigma_r_rel))
        )
        return params.with_(jc=jc, ra_product=ra)


def _perturb_testbench(tb, variation: VariationModel,
                       rng: np.random.Generator) -> None:
    """Apply per-device sampled variation to every FinFET/MTJ in place."""
    for element in tb.circuit.elements():
        if isinstance(element, FinFET):
            element.params = variation.sample_fet(element.params, rng)
        elif isinstance(element, MTJ):
            element.params = variation.sample_mtj(element.params, rng)


def sample_rng(seed: int, index: int) -> np.random.Generator:
    """Per-sample generator seeded from ``(seed, index)``.

    Seeding each Monte-Carlo sample independently (instead of drawing
    from one sequential stream) makes the variates a function of the
    sample index alone — so a serial run, a parallel campaign and a
    ``--resume`` that re-executes only the missing samples all see
    identical draws, and their aggregate statistics are bit-identical.
    """
    return np.random.default_rng([seed, index])


def _store_margin_sample(cond: OperatingConditions, domain: PowerDomain,
                         variation: VariationModel,
                         rng: np.random.Generator) -> float:
    """Worst-case store margin of one sampled cell (min of H/L store)."""
    tb = build_cell_testbench("nv", cond, domain)
    _perturb_testbench(tb, variation, rng)
    cell = tb.nv_cell
    ic_map = tb.initial_conditions(True)      # Q high

    # H-store: Q-side MTJ still parallel, CTRL grounded.
    tb.apply_mode(Mode.STORE_H)
    cell.set_mtj_states(tb.circuit, MTJState.PARALLEL,
                        MTJState.ANTIPARALLEL)
    sol = operating_point(tb.circuit, ic=ic_map)
    mtj_q = cell.mtj_q(tb.circuit)
    margin_h = abs(mtj_q.current(sol)) / mtj_q.params.critical_current

    # L-store: QB-side MTJ antiparallel, CTRL at the store level.
    tb.apply_mode(Mode.STORE_L)
    cell.set_mtj_states(tb.circuit, MTJState.ANTIPARALLEL,
                        MTJState.ANTIPARALLEL)
    sol = operating_point(tb.circuit, ic=ic_map)
    mtj_qb = cell.mtj_qb(tb.circuit)
    margin_l = abs(mtj_qb.current(sol)) / mtj_qb.params.critical_current
    return min(margin_h, margin_l)


@dataclass
class StoreYieldResult:
    """Monte-Carlo store-margin distribution.

    Samples whose solves failed even through the recovery ladder carry a
    NaN margin and a :class:`~repro.recovery.partial.SkipRecord`; the
    yield figures count them as *failing* (a corner we could not verify
    is not a passing corner).
    """

    margins: np.ndarray          # worst-case I/Ic per sample (NaN=skipped)
    target_margin: float
    n_samples: int
    skips: List[SkipRecord] = field(default_factory=list)

    @property
    def n_failed(self) -> int:
        """Samples skipped after ladder exhaustion."""
        return len(self.skips)

    @property
    def switching_yield(self) -> float:
        """Fraction of samples whose store current exceeds Ic at all."""
        return float(np.mean(self.margins > 1.0))

    @property
    def margin_yield(self) -> float:
        """Fraction of samples meeting the full design margin."""
        return float(np.mean(self.margins >= self.target_margin))

    def percentile(self, q: float) -> float:
        return float(np.nanpercentile(self.margins, q))


def store_yield_campaign(
    cond: Optional[OperatingConditions] = None,
    domain: Optional[PowerDomain] = None,
    n_samples: int = 200,
    variation: VariationModel = VariationModel(),
    seed: int = 2015,
):
    """The :class:`~repro.exec.Campaign` behind ``store_yield_analysis``."""
    from ..exec import Campaign, make_task
    from ..exec.tasks import store_yield_sample_params

    cond = cond or OperatingConditions()
    domain = domain or PowerDomain()
    tasks = [
        make_task(store_yield_sample_params(i, seed, cond, domain, variation),
                  label=f"sample {i}")
        for i in range(n_samples)
    ]
    return Campaign(name="store-yield",
                    fn="repro.exec.tasks:store_yield_sample_task",
                    tasks=tasks)


def store_yield_analysis(
    cond: Optional[OperatingConditions] = None,
    domain: Optional[PowerDomain] = None,
    n_samples: int = 200,
    variation: VariationModel = VariationModel(),
    seed: int = 2015,
    workers: Optional[int] = None,
    journal=None,
) -> StoreYieldResult:
    """Monte-Carlo the two-step store against sampled device corners.

    For each sample, every FinFET and MTJ in the cell testbench receives
    an independent parameter draw; the H-store and L-store operating
    points are solved and the worst of the two current-over-(sampled)-Ic
    ratios is recorded.  Each sample seeds its own generator from
    ``(seed, index)`` (see :func:`sample_rng`), so the result is
    independent of execution order.

    With ``workers`` set, the samples run as a fault-tolerant
    :mod:`repro.exec` campaign (process isolation, retry, optional
    ``journal`` checkpointing) and produce the same margins array.
    """
    cond = cond or OperatingConditions()
    domain = domain or PowerDomain()
    if n_samples < 1:
        raise CharacterizationError("n_samples must be >= 1")

    if workers is not None:
        margins, skips = _run_variability_campaign(
            store_yield_campaign(cond, domain, n_samples, variation, seed),
            n_samples, "margin", workers, journal)
        return StoreYieldResult(
            margins=margins,
            target_margin=cond.store_margin,
            n_samples=n_samples,
            skips=skips,
        )

    margins = []
    skips: List[SkipRecord] = []
    for i in range(n_samples):
        rng = sample_rng(seed, i)
        value, skip = run_point(
            lambda: _store_margin_sample(cond, domain, variation, rng),
            index=i, label=f"sample {i}", stage="store_yield_analysis")
        margins.append(float("nan") if skip else value)
        if skip:
            skips.append(skip)

    return StoreYieldResult(
        margins=np.asarray(margins),
        target_margin=cond.store_margin,
        n_samples=n_samples,
        skips=skips,
    )


def _run_variability_campaign(campaign, n_samples: int, value_key: str,
                              workers: int, journal):
    """Run a per-sample campaign and reassemble the values array.

    Completed tasks contribute their ``value_key`` payload entry at
    their sample index; skipped tasks (deterministic analysis failures)
    and quarantined tasks (exhausted retries / poison) contribute NaN
    plus a :class:`~repro.recovery.partial.SkipRecord`, matching the
    serial path's "an unverified corner is a failing corner" accounting.
    """
    from ..exec import COMPLETED, SKIPPED, CampaignOptions, run_campaign

    options = CampaignOptions(workers=workers,
                              resume=journal is not None)
    result = run_campaign(campaign, journal=journal, options=options)

    values = np.full(n_samples, float("nan"))
    skips: List[SkipRecord] = []
    for task in campaign.tasks:
        outcome = result.outcome(task.task_id)
        if outcome is None:
            continue
        index = task.params["index"]
        if outcome.status == COMPLETED:
            values[index] = outcome.result[value_key]
        elif outcome.status == SKIPPED and outcome.skip:
            skip = SkipRecord.from_dict(outcome.skip)
            skip.index = index
            skips.append(skip)
        else:   # quarantined: crashed/hung through the retry budget
            last = outcome.failures[-1] if outcome.failures else {}
            skips.append(SkipRecord(
                index=index, label=task.label, stage=campaign.name,
                reason=last.get("detail", "quarantined"),
                error_type=last.get("kind", "quarantined"),
            ))
    skips.sort(key=lambda s: s.index)
    return values, skips


@dataclass
class SnmDistribution:
    """Monte-Carlo SNM distribution of the mismatched cell.

    Samples whose VTC sweeps failed to converge carry NaN and a
    :class:`~repro.recovery.partial.SkipRecord`; ``stability_yield``
    counts them as unstable (unverifiable corners don't pass).
    """

    snm: np.ndarray
    mode: str
    n_samples: int
    skips: List[SkipRecord] = field(default_factory=list)

    @property
    def n_failed(self) -> int:
        return len(self.skips)

    @property
    def mean(self) -> float:
        return float(np.nanmean(self.snm))

    @property
    def std(self) -> float:
        return float(np.nanstd(self.snm))

    @property
    def stability_yield(self) -> float:
        """Fraction of samples that remain bistable (SNM > 0)."""
        return float(np.mean(self.snm > 0.0))

    def percentile(self, q: float) -> float:
        return float(np.nanpercentile(self.snm, q))


def _mismatched_vtc(cond: OperatingConditions, read_mode: bool,
                    variation: VariationModel, rng: np.random.Generator,
                    points: int,
                    nfet: FinFETParams, pfet: FinFETParams) -> np.ndarray:
    """VTC of one half-cell with per-device sampled parameters."""
    circuit = Circuit("snm-mc-half-cell")
    circuit.add(VoltageSource("vdd", "vdd", "0", dc=cond.vdd))
    circuit.add(VoltageSource("vin", "in", "0", dc=0.0))
    circuit.add(FinFET("pu", "out", "in", "vdd",
                       variation.sample_fet(pfet, rng), 1))
    circuit.add(FinFET("pd", "out", "in", "0",
                       variation.sample_fet(nfet, rng), 1))
    if read_mode:
        circuit.add(VoltageSource("vbl", "bl", "0", dc=cond.vdd))
        circuit.add(VoltageSource("vwl", "wl", "0", dc=cond.v_wl_read))
        circuit.add(FinFET("pg", "bl", "wl", "out",
                           variation.sample_fet(nfet, rng), 1))
    vin = np.linspace(0.0, cond.vdd, points)
    return dc_sweep(circuit, "vin", vin).voltage("out")


def _snm_sample(cond: OperatingConditions, read_mode: bool,
                variation: VariationModel, rng: np.random.Generator,
                points: int, nfet: FinFETParams,
                pfet: FinFETParams) -> float:
    """Asymmetric-butterfly SNM of one mismatched sample.

    Raises :class:`~repro.errors.ConvergenceError` when a VTC sweep
    fails; a monostable corner (butterfly with no second eye) returns
    0.0 — stability lost, not an analysis failure.
    """
    vin = np.linspace(0.0, cond.vdd, points)
    vtc1 = _mismatched_vtc(cond, read_mode, variation, rng, points,
                           nfet, pfet)
    vtc2 = _mismatched_vtc(cond, read_mode, variation, rng, points,
                           nfet, pfet)
    try:
        snm, _ = _butterfly_snm_two(vin, vtc1, vtc2)
    except CharacterizationError:
        snm = 0.0   # monostable corner: stability lost
    return snm


def snm_campaign(
    cond: Optional[OperatingConditions] = None,
    n_samples: int = 100,
    variation: VariationModel = VariationModel(),
    read_mode: bool = True,
    points: int = 41,
    seed: int = 2015,
    nfet: FinFETParams = NFET_20NM_HP,
    pfet: FinFETParams = PFET_20NM_HP,
):
    """The :class:`~repro.exec.Campaign` behind ``read_snm_distribution``."""
    from ..exec import Campaign, make_task
    from ..exec.tasks import snm_sample_params

    cond = cond or OperatingConditions()
    tasks = [
        make_task(snm_sample_params(i, seed, cond, read_mode, points,
                                    variation, nfet, pfet),
                  label=f"sample {i}")
        for i in range(n_samples)
    ]
    return Campaign(name="snm",
                    fn="repro.exec.tasks:snm_sample_task",
                    tasks=tasks)


def read_snm_distribution(
    cond: Optional[OperatingConditions] = None,
    n_samples: int = 100,
    variation: VariationModel = VariationModel(),
    read_mode: bool = True,
    points: int = 41,
    seed: int = 2015,
    nfet: FinFETParams = NFET_20NM_HP,
    pfet: FinFETParams = PFET_20NM_HP,
    workers: Optional[int] = None,
    journal=None,
) -> SnmDistribution:
    """Monte-Carlo the (a)symmetric butterfly SNM under mismatch.

    Each sample draws *two* independent mismatched half-cells (the two
    cross-coupled inverters differ — that is what mismatch does to a
    real cell) and computes the asymmetric-butterfly SNM: the smaller of
    the two eye margins.  Samples are independently seeded (see
    :func:`sample_rng`), so serial, parallel (``workers``) and resumed
    runs produce identical distributions.
    """
    cond = cond or OperatingConditions()
    if n_samples < 1:
        raise CharacterizationError("n_samples must be >= 1")

    if workers is not None:
        values, skips = _run_variability_campaign(
            snm_campaign(cond, n_samples, variation, read_mode, points,
                         seed, nfet, pfet),
            n_samples, "snm", workers, journal)
        return SnmDistribution(
            snm=values,
            mode="read" if read_mode else "hold",
            n_samples=n_samples,
            skips=skips,
        )

    values = []
    skips: List[SkipRecord] = []
    for i in range(n_samples):
        rng = sample_rng(seed, i)
        try:
            values.append(_snm_sample(cond, read_mode, variation, rng,
                                      points, nfet, pfet))
        except ConvergenceError as err:
            skips.append(SkipRecord.from_error(
                err, index=i, label=f"sample {i}",
                stage="read_snm_distribution"))
            values.append(float("nan"))
    return SnmDistribution(
        snm=np.asarray(values),
        mode="read" if read_mode else "hold",
        n_samples=n_samples,
        skips=skips,
    )
