"""Minimum data-retention voltage of the bitcell (sleep-rail sizing).

The paper's sleep mode lowers the (virtual) rail to 0.7 V; the cell must
still hold its data there.  This analysis finds the **data-retention
voltage (DRV)** — the lowest rail at which the latch remains bistable
with a usable hold margin — by sweeping the rail downward and measuring
the hold-mode static noise margin at each point.

A margin threshold (default 50 mV) marks the practical retention limit;
the headroom of the chosen sleep voltage above the DRV quantifies how
conservative the paper's 0.7 V is.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import CharacterizationError, ConvergenceError
from ..devices.finfet import FinFETParams
from ..devices.ptm20 import NFET_20NM_HP, PFET_20NM_HP
from ..pg.modes import OperatingConditions
from .snm import butterfly_curve

#: Hold-SNM below which retention is considered unreliable (volts).
DEFAULT_MARGIN = 0.05


@dataclass
class RetentionSweep:
    """Hold margin vs rail voltage plus the derived retention limit."""

    rail: np.ndarray
    hold_snm: np.ndarray
    #: Lowest swept rail with hold SNM >= margin (None if none qualify).
    retention_voltage: Optional[float]
    margin: float
    sleep_rail: float

    @property
    def sleep_headroom(self) -> Optional[float]:
        """How far the sleep rail sits above the retention limit (V)."""
        if self.retention_voltage is None:
            return None
        return self.sleep_rail - self.retention_voltage

    def rows(self):
        return [(float(v), float(s)) for v, s in zip(self.rail,
                                                     self.hold_snm)]


def retention_voltage_sweep(
    cond: Optional[OperatingConditions] = None,
    rail_values: Optional[Sequence[float]] = None,
    margin: float = DEFAULT_MARGIN,
    nfet: FinFETParams = NFET_20NM_HP,
    pfet: FinFETParams = PFET_20NM_HP,
) -> RetentionSweep:
    """Sweep the retention rail downward and extract the DRV.

    The hold-mode butterfly is evaluated at each rail voltage; rails
    where the latch is no longer bistable contribute a zero margin.
    """
    cond = cond or OperatingConditions()
    if rail_values is None:
        rail_values = np.linspace(0.15, cond.vdd, 16)
    rails = np.asarray(sorted(rail_values), dtype=float)
    if rails[0] <= 0:
        raise CharacterizationError("rail values must be positive")

    margins = []
    for rail in rails:
        try:
            # Keep the conditions object self-consistent when probing
            # rails below the nominal sleep level.
            probe_cond = cond.with_(
                vdd=float(rail),
                v_sleep_rail=min(cond.v_sleep_rail, float(rail)),
            )
            curve = butterfly_curve(probe_cond, read_mode=False,
                                    nfet=nfet, pfet=pfet)
            margins.append(curve.snm)
        except (CharacterizationError, ConvergenceError):
            # No butterfly eye, or a rail so low the VTC sweep itself no
            # longer converges (ladder exhausted): retention lost either
            # way — a zero margin, not an aborted sweep.
            margins.append(0.0)
    margins_arr = np.asarray(margins)

    qualifying = np.nonzero(margins_arr >= margin)[0]
    retention = float(rails[qualifying[0]]) if qualifying.size else None
    return RetentionSweep(
        rail=rails,
        hold_snm=margins_arr,
        retention_voltage=retention,
        margin=margin,
        sleep_rail=cond.v_sleep_rail,
    )
