"""Power-switch sizing (paper Fig. 4): virtual-VDD vs N_FSW.

The header switch must be wide enough that the virtual rail barely sags
under load.  The store mode is the critical case: connecting the MTJs
drops the cell impedance, so VV_DD degrades fastest there with shrinking
N_FSW.  The paper chooses N_FSW = 7, where VV_DD retains 97 % of VDD
during the store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..analysis import operating_point
from ..recovery.partial import SkipRecord, run_point
from ..cells import PowerDomain
from ..devices.mtj import MTJState
from ..devices.finfet import FinFETParams
from ..devices.mtj import MTJParams, MTJ_TABLE1
from ..devices.ptm20 import NFET_20NM_HP, PFET_20NM_HP
from ..pg.modes import Mode, OperatingConditions
from .testbench import build_cell_testbench


@dataclass
class VvddSweep:
    """Fig. 4 data: virtual rail voltage vs power-switch fins per cell."""

    nfsw: np.ndarray
    vvdd_normal: np.ndarray
    vvdd_store: np.ndarray
    vdd: float
    skips: List[SkipRecord] = field(default_factory=list)  # NaN points

    def retention_fraction_store(self) -> np.ndarray:
        """VV_DD / V_DD during the store mode (NaN at skipped points)."""
        return self.vvdd_store / self.vdd

    def smallest_nfsw_for(self, fraction: float) -> Optional[int]:
        """Smallest N_FSW whose store-mode VV_DD >= fraction * VDD.

        Skipped (NaN) points never compare true, so the answer is always
        backed by a converged solve.
        """
        ok = np.nonzero(self.retention_fraction_store() >= fraction)[0]
        if ok.size == 0:
            return None
        return int(self.nfsw[ok[0]])

    def rows(self):
        return [
            (int(n), float(vn), float(vs))
            for n, vn, vs in zip(self.nfsw, self.vvdd_normal, self.vvdd_store)
        ]


def vvdd_vs_nfsw(
    cond: Optional[OperatingConditions] = None,
    domain: Optional[PowerDomain] = None,
    nfsw_values: Sequence[int] = tuple(range(1, 11)),
    nfet: FinFETParams = NFET_20NM_HP,
    pfet: FinFETParams = PFET_20NM_HP,
    mtj_params: MTJParams = MTJ_TABLE1,
) -> VvddSweep:
    """Reproduce Fig. 4: sweep the power-switch fin number.

    For each N_FSW the testbench is rebuilt (the fin number is structural)
    and the virtual-rail voltage is read from DC operating points in the
    normal mode and in the store mode (H-store step, the heavier load).
    """
    cond = cond or OperatingConditions()
    domain = domain or PowerDomain()
    v_normal = []
    v_store = []
    skips: List[SkipRecord] = []
    for i, nfsw in enumerate(nfsw_values):
        tb = build_cell_testbench("nv", cond, domain, nfsw=int(nfsw),
                                  nfet=nfet, pfet=pfet,
                                  mtj_params=mtj_params)
        ic = tb.initial_conditions(True)

        def normal_point():
            tb.apply_mode(Mode.STANDBY)
            return operating_point(tb.circuit, ic=ic).voltage("vvdd")

        def store_point():
            tb.apply_mode(Mode.STORE_H)
            tb.nv_cell.set_mtj_states(tb.circuit, MTJState.PARALLEL,
                                      MTJState.ANTIPARALLEL)
            return operating_point(tb.circuit, ic=ic).voltage("vvdd")

        value, skip = run_point(normal_point, index=i,
                                label=f"nfsw={int(nfsw)} (normal)",
                                stage="vvdd_vs_nfsw", nfsw=int(nfsw))
        v_normal.append(float("nan") if skip else value)
        if skip:
            skips.append(skip)

        value, skip = run_point(store_point, index=i,
                                label=f"nfsw={int(nfsw)} (store)",
                                stage="vvdd_vs_nfsw", nfsw=int(nfsw))
        v_store.append(float("nan") if skip else value)
        if skip:
            skips.append(skip)

    return VvddSweep(
        nfsw=np.asarray(list(nfsw_values), dtype=int),
        vvdd_normal=np.asarray(v_normal),
        vvdd_store=np.asarray(v_store),
        vdd=cond.vdd,
        skips=skips,
    )
