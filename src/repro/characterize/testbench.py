"""Single-cell transient/DC testbench shared by all characterisations.

The testbench wires one cell (NV-SRAM or 6T) to ideal control-line
sources through a header power switch, with explicit bitline capacitances
and precharge / write-driver switches:

::

    rail o--[power switch]--o vvdd --- cell --- bl/blb --o C_BL
      |                                            |
      +--[precharge switch]<-- prech               +--[write switch]<-- write_en
                                                        |
                                                     bl_drv source

Energy accounting sums the delivered power of every source in
``SUPPLY_SOURCES``; the SR and PG gate drivers carry no charge in this
netlist (peripheral driver energy is excluded, as in the paper), so
listing them is harmless but keeps the bookkeeping honest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import CharacterizationError
from ..circuit import (
    Capacitor,
    Circuit,
    VoltageControlledSwitch,
    VoltageSource,
)
from ..circuit.waveforms import Waveform
from ..devices.finfet import FinFETParams
from ..devices.mtj import MTJParams, MTJState, MTJ_TABLE1
from ..devices.ptm20 import NFET_20NM_HP, PFET_20NM_HP
from ..cells import PowerDomain, add_nvsram, add_power_switch, add_sram6t
from ..cells.nvsram import NvSramCell
from ..cells.sram6t import Sram6TCell
from ..pg.modes import Mode, OperatingConditions, bias_for_mode

#: Precharge-device on resistance (ohms).
_R_PRECHARGE = 4e3
#: Write-driver on resistance (ohms).
_R_WRITE_DRIVER = 1.5e3

#: Map schedule line names to testbench source element names.
LINE_SOURCES = {
    "rail": "vrail",
    "pg": "vpg",
    "wl": "vwl",
    "sr": "vsr",
    "ctrl": "vctrl",
    "bl": "vbl_drv",
    "blb": "vblb_drv",
    "prech": "vprech",
    "write_en": "vwren",
}

#: Sources whose delivered energy constitutes the cell energy.
SUPPLY_SOURCES = ("vrail", "vwl", "vctrl", "vbl_drv", "vblb_drv")


@dataclass
class CellTestbench:
    """A built testbench: circuit plus handles and bookkeeping names."""

    circuit: Circuit
    kind: str
    cell: object          # Sram6TCell or NvSramCell
    cond: OperatingConditions
    domain: PowerDomain

    @property
    def nv_cell(self) -> NvSramCell:
        if self.kind != "nv":
            raise CharacterizationError("testbench does not host an NV cell")
        return self.cell

    @property
    def core(self) -> Sram6TCell:
        return self.cell.core if self.kind == "nv" else self.cell

    # -- drive ----------------------------------------------------------
    def apply_mode(self, mode: Mode) -> None:
        """Set every source to the DC bias of ``mode``."""
        bias = bias_for_mode(mode, self.cond, volatile=self.kind == "6t")
        for line, level in bias.as_dict().items():
            self.circuit[LINE_SOURCES[line]].set_level(level)

    def apply_waveforms(self, waves: Dict[str, Waveform]) -> None:
        """Attach compiled schedule waveforms to the line sources."""
        for line, wave in waves.items():
            self.circuit[LINE_SOURCES[line]].set_waveform(wave)

    def initial_conditions(self, data: bool) -> Dict[str, float]:
        ic = self.core.initial_conditions(data, self.cond.vdd)
        ic["vvdd"] = self.cond.vdd
        return ic

    def set_mtj_data(self, data: bool) -> None:
        """Program the MTJ pair to encode ``data`` (NV cells only).

        Q-high is encoded as (MTJ_Q, MTJ_QB) = (AP, P); see
        :mod:`repro.cells.nvsram`.
        """
        cell = self.nv_cell
        if data:
            cell.set_mtj_states(self.circuit, MTJState.ANTIPARALLEL,
                                MTJState.PARALLEL)
        else:
            cell.set_mtj_states(self.circuit, MTJState.PARALLEL,
                                MTJState.ANTIPARALLEL)


def build_cell_testbench(
    kind: str,
    cond: Optional[OperatingConditions] = None,
    domain: Optional[PowerDomain] = None,
    nfet: FinFETParams = NFET_20NM_HP,
    pfet: FinFETParams = PFET_20NM_HP,
    mtj_params: MTJParams = MTJ_TABLE1,
    nfsw: Optional[int] = None,
) -> CellTestbench:
    """Build the single-cell testbench.

    Parameters
    ----------
    kind:
        ``"nv"`` for the NV-SRAM cell, ``"6t"`` for the volatile baseline.
    domain:
        Power-domain geometry; sets the bitline capacitance.
    nfsw:
        Power-switch fins per cell (defaults to ``cond.nfsw``).
    """
    if kind not in ("nv", "6t"):
        raise CharacterizationError(f"unknown cell kind: {kind}")
    cond = cond or OperatingConditions()
    domain = domain or PowerDomain()
    nfsw = cond.nfsw if nfsw is None else nfsw

    circuit = Circuit(f"{kind}-cell-testbench")
    vdd = cond.vdd

    # Control-line sources (levels are (re)assigned by apply_mode /
    # apply_waveforms before each analysis).
    circuit.add(VoltageSource("vrail", "rail", "0", dc=vdd))
    circuit.add(VoltageSource("vpg", "pg", "0", dc=0.0))
    circuit.add(VoltageSource("vwl", "wl", "0", dc=0.0))
    circuit.add(VoltageSource("vsr", "sr", "0", dc=0.0))
    circuit.add(VoltageSource("vctrl", "ctrl", "0", dc=0.0))
    circuit.add(VoltageSource("vbl_drv", "bl_drv", "0", dc=vdd))
    circuit.add(VoltageSource("vblb_drv", "blb_drv", "0", dc=vdd))
    circuit.add(VoltageSource("vprech", "prech", "0", dc=vdd))
    circuit.add(VoltageSource("vwren", "write_en", "0", dc=0.0))

    add_power_switch(circuit, "psw", "rail", "vvdd", "pg",
                     nfsw=nfsw, pfet=pfet)

    # Bitlines: capacitance set by the domain depth, precharge devices to
    # the rail, and write drivers behind enable switches.
    c_bl = domain.bitline_capacitance
    for bitline, driver in (("bl", "bl_drv"), ("blb", "blb_drv")):
        circuit.add(Capacitor(f"c_{bitline}", bitline, "0", c_bl))
        circuit.add(VoltageControlledSwitch(
            f"sw_prech_{bitline}", bitline, "rail", "prech", "0",
            r_on=_R_PRECHARGE, v_on=vdd, v_off=0.0,
        ))
        circuit.add(VoltageControlledSwitch(
            f"sw_write_{bitline}", bitline, driver, "write_en", "0",
            r_on=_R_WRITE_DRIVER, v_on=vdd, v_off=0.0,
        ))

    if kind == "nv":
        cell = add_nvsram(
            circuit, "cell", vvdd="vvdd", bl="bl", blb="blb", wl="wl",
            sr="sr", ctrl="ctrl", nfet=nfet, pfet=pfet,
            mtj_params=mtj_params,
        )
    else:
        cell = add_sram6t(
            circuit, "cell", vvdd="vvdd", bl="bl", blb="blb", wl="wl",
            nfet=nfet, pfet=pfet,
        )
    return CellTestbench(circuit=circuit, kind=kind, cell=cell,
                         cond=cond, domain=domain)
