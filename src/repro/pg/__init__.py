"""Power-gating architectures: modes, benchmark sequences, energy and BET.

This package is the paper's core contribution layer:

* :mod:`~repro.pg.modes` — operating modes and their bias conditions
  (Table I / Section III).
* :mod:`~repro.pg.scheduler` — turns a mode timeline into the per-line
  bias waveforms a transient testbench consumes.
* :mod:`~repro.pg.sequences` — the OSR / NVPG / NOF benchmark sequences of
  Fig. 5.
* :mod:`~repro.pg.energy` — composes characterised per-mode energies into
  the per-cell E_cyc of Figs. 7-8.
* :mod:`~repro.pg.bet` — break-even-time extraction (Figs. 8-9), including
  the store-free shutdown variant.
* :mod:`~repro.pg.domainsim` — a discrete-event simulation of the whole
  N-row domain that cross-validates the closed-form composition.
"""

from .modes import Mode, OperatingConditions, LineLevels, bias_for_mode
from .sequences import (
    Architecture,
    BenchmarkSpec,
    SequencePhase,
    benchmark_sequence,
)
from .energy import CellEnergyModel, CycleEnergyBreakdown
from .bet import break_even_time, bet_curve_crossing
from .domainsim import DomainSimResult, PowerDomainSimulator, RowState
from .registers import RegisterBankModel
from .hierarchy import CacheLevel, LevelReport, SystemModel
from .workload import (
    DomainTrace,
    Epoch,
    epoch_pairs,
    epochs_from_access_times,
    periodic_trace,
    poisson_burst_trace,
    zipf_domain_trace,
)

__all__ = [
    "Mode",
    "OperatingConditions",
    "LineLevels",
    "bias_for_mode",
    "Architecture",
    "BenchmarkSpec",
    "SequencePhase",
    "benchmark_sequence",
    "CellEnergyModel",
    "CycleEnergyBreakdown",
    "break_even_time",
    "bet_curve_crossing",
    "PowerDomainSimulator",
    "DomainSimResult",
    "RowState",
    "RegisterBankModel",
    "CacheLevel",
    "LevelReport",
    "SystemModel",
    "Epoch",
    "DomainTrace",
    "epochs_from_access_times",
    "epoch_pairs",
    "periodic_trace",
    "poisson_burst_trace",
    "zipf_domain_trace",
]
