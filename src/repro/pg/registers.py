"""Register-bank nonvolatile power gating (the NV-FF application).

The paper's NVPG architecture covers "caches, register files, and
registers"; arrays are handled by :class:`~repro.pg.energy.CellEnergyModel`
and this module covers the flip-flop side: a bank of B NV-FFs that clocks
while active, idles clock-gated, and — when an idle interval exceeds its
break-even time — stores all its bits to the MTJs in parallel and powers
off under super cutoff.

Unlike the SRAM domain there is no word-line serialisation: every FF has
its own PS-FinFET/MTJ branch, so the whole bank stores in one 2 x 10 ns
window and the BET is independent of the bank size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import math

from ..errors import SequenceError
from ..characterize.ff_runner import FlipFlopCharacterization
from .modes import OperatingConditions


@dataclass
class RegisterBankModel:
    """Energy model of a bank of NV flip-flops.

    Parameters
    ----------
    ff:
        Characterised NV-FF.
    num_ffs:
        Bank width B (bits of architectural state).
    """

    ff: FlipFlopCharacterization
    num_ffs: int = 1024

    def __post_init__(self):
        if self.num_ffs < 1:
            raise SequenceError("num_ffs must be >= 1")

    # -- running ----------------------------------------------------------
    def active_power(self, activity: float = 0.5) -> float:
        """Bank power while clocking (watts).

        ``activity`` is the fraction of cycles on which a given bit
        toggles; clock/internal-node energy is paid every cycle.
        """
        e_cycle = self.ff.e_clock(activity)
        return self.num_ffs * (
            e_cycle * self.ff.clock_frequency
        )

    def idle_power(self) -> float:
        """Bank power while clock-gated but powered (watts)."""
        return self.num_ffs * self.ff.p_normal

    def shutdown_power(self) -> float:
        """Bank power while powered off under super cutoff (watts)."""
        return self.num_ffs * self.ff.p_shutdown

    # -- power gating -------------------------------------------------------
    @property
    def gating_overhead(self) -> float:
        """Energy to enter + leave a shutdown (whole bank, joules)."""
        return self.num_ffs * (self.ff.e_store + self.ff.e_restore)

    @property
    def gating_dead_time(self) -> float:
        """Time spent storing + restoring around a shutdown (seconds)."""
        return self.ff.t_store + self.ff.t_restore

    def break_even_time(self) -> float:
        """Idle duration at which gating costs as much as idling.

        Solves ``overhead + P_off * t = P_idle * t``; independent of the
        bank width because all FFs store in parallel.
        """
        saving = self.ff.p_normal - self.ff.p_shutdown
        if saving <= 0:
            return math.inf
        return (self.ff.e_store + self.ff.e_restore) / saving

    def idle_energy(self, duration: float, gate: bool) -> float:
        """Bank energy over one idle interval (joules).

        ``gate=True`` pays the store/restore overhead and the shutdown
        leakage; ``gate=False`` just idles.  Intervals shorter than the
        store+restore dead time cannot be gated and fall back to idling.
        """
        if duration < 0:
            raise SequenceError("duration must be >= 0")
        if not gate or duration < self.gating_dead_time:
            return self.idle_power() * duration
        off_time = duration - self.gating_dead_time
        return self.gating_overhead + self.shutdown_power() * off_time

    def policy_energy(self, intervals: Iterable[float],
                      threshold: Optional[float] = None) -> float:
        """Total idle energy under a threshold-gating policy.

        Gates every interval longer than ``threshold`` (default: the
        break-even time — the optimal static policy).
        """
        threshold = self.break_even_time() if threshold is None else threshold
        return sum(
            self.idle_energy(t, gate=t > threshold) for t in intervals
        )

    def savings_vs_idle(self, intervals: Iterable[float]) -> float:
        """Fractional energy saved by BET gating vs never gating."""
        intervals = list(intervals)
        baseline = sum(self.idle_power() * t for t in intervals)
        if baseline <= 0:
            return 0.0
        return 1.0 - self.policy_energy(intervals) / baseline
