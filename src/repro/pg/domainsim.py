"""Discrete-event simulation of a whole power domain.

:class:`repro.pg.energy.CellEnergyModel` composes E_cyc with closed-form
arithmetic; this module computes the *same* quantity by brute force — a
discrete-event simulation that walks every row of the N x M domain
through the benchmark sequence, advancing a per-row state machine and
integrating each row's power over every interval.  The two must agree,
and the test suite asserts that they do; beyond validation, the event
timeline is useful in its own right for visualising domain schedules and
for experimenting with alternative controllers (e.g. parallel stores,
partial-domain wake-up) that have no closed form.

Row states and their per-cell power/energy sources:

=============  =====================================================
state           cost
=============  =====================================================
ACTIVE_IDLE     ``p_normal`` x duration (powered, not accessed)
ACCESS_READ     ``e_read`` per event (includes the cycle's static)
ACCESS_WRITE    ``e_write`` per event
SLEEP           ``p_sleep`` x duration
STORING         ``e_store`` per event (its 2 x 10 ns window)
OFF             ``p_shutdown`` x duration
RESTORING       ``e_restore`` per event
=============  =====================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import SequenceError
from ..cells.array import PowerDomain
from ..characterize.data import CellCharacterization
from .modes import OperatingConditions
from .sequences import Architecture, BenchmarkSpec


class RowState(enum.Enum):
    """Power state of one word line's cells."""

    ACTIVE_IDLE = "active_idle"
    SLEEP = "sleep"
    OFF = "off"


@dataclass(frozen=True)
class DomainEvent:
    """One logged domain action (for timelines and debugging)."""

    time: float
    row: int            # -1 = whole domain
    action: str
    duration: float = 0.0


@dataclass
class DomainSimResult:
    """Outcome of one simulated benchmark cycle."""

    total_energy: float            # joules, whole domain
    duration: float                # seconds, whole benchmark cycle
    num_cells: int
    breakdown: Dict[str, float] = field(default_factory=dict)
    events: List[DomainEvent] = field(default_factory=list)

    @property
    def energy_per_cell(self) -> float:
        return self.total_energy / self.num_cells

    def breakdown_per_cell(self) -> Dict[str, float]:
        return {k: v / self.num_cells for k, v in self.breakdown.items()}


class PowerDomainSimulator:
    """Walks an N-row domain through a Fig. 5 benchmark, event by event.

    Parameters
    ----------
    nv, volatile:
        Cell characterisations (the same inputs the analytic model uses).
    cond, domain:
        Operating conditions and domain geometry.
    log_events:
        Keep the full event list (O(n_rw x N) entries) — disable for
        large sweeps.
    """

    def __init__(self, nv: CellCharacterization,
                 volatile: CellCharacterization,
                 cond: OperatingConditions,
                 domain: PowerDomain,
                 log_events: bool = True):
        if nv.kind != "nv" or volatile.kind != "6t":
            raise SequenceError("characterisations passed in wrong order")
        self.nv = nv
        self.volatile = volatile
        self.cond = cond
        self.domain = domain
        self.log_events = log_events

    # -- core engine ------------------------------------------------------
    def run(self, spec: BenchmarkSpec) -> DomainSimResult:
        """Simulate one benchmark cycle of ``spec`` over the domain."""
        arch = spec.architecture
        char = self.volatile if arch is Architecture.OSR else self.nv
        n = self.domain.n_wordlines
        cells_per_row = self.domain.word_bits
        rho = self.cond.read_write_ratio
        if rho != int(rho):
            raise SequenceError(
                "the discrete-event simulator needs an integer "
                "read:write ratio"
            )
        reads_per_pass = int(rho)

        self._time = 0.0
        self._energy = 0.0
        self._breakdown: Dict[str, float] = {}
        self._events: List[DomainEvent] = []
        self._char = char
        self._cells_per_row = cells_per_row

        idle_state = self._idle_state(arch)
        row_power = {
            RowState.ACTIVE_IDLE: char.p_normal,
            RowState.SLEEP: char.p_sleep,
            RowState.OFF: char.p_shutdown,
        }

        def dwell_all(duration: float, state: RowState, label: str):
            """All N rows sit in ``state`` for ``duration``."""
            if duration <= 0:
                return
            power = row_power[state] * cells_per_row * n
            self._account(label, power * duration)
            self._log(-1, label, duration)
            self._time += duration

        def access_slot(row: int, kind: str, t_slot: float,
                        extras: Tuple[Tuple[str, float], ...]):
            """Row ``row`` performs an access; the others idle."""
            for label, energy in extras:
                self._account(label, energy * cells_per_row)
            idle_power = row_power[idle_state] * cells_per_row * (n - 1)
            self._account(f"idle_{idle_state.value}", idle_power * t_slot)
            self._log(row, kind, t_slot)
            self._time += t_slot

        t_cyc = self.cond.t_cycle

        for _ in range(spec.n_rw):
            # Access phase: every row read rho times, then written once,
            # in series.  (Energy is order-independent; this ordering
            # matches the paper's "all the bit cells are read and written
            # in series".)
            for row in range(n):
                for _ in range(reads_per_pass):
                    extras = [("read", char.e_read)]
                    slot = t_cyc
                    if arch is Architecture.NOF:
                        extras.append(("restore", char.e_restore))
                        slot += char.t_restore
                    access_slot(row, "read", slot, tuple(extras))
                extras = [("write", char.e_write)]
                slot = t_cyc
                if arch is Architecture.NOF:
                    extras.append(("restore", char.e_restore))
                    slot += char.t_restore
                    if not spec.store_free:
                        extras.append(("store", char.e_store))
                        slot += char.t_store
                access_slot(row, "write", slot, tuple(extras))
            # Short standby between passes.
            if arch is Architecture.NOF:
                dwell_all(spec.t_sl, RowState.OFF, "standby_off")
            else:
                dwell_all(spec.t_sl, RowState.SLEEP, "standby_sleep")

        # Long inactive period (with NVPG's store/restore bracket).
        if arch is Architecture.OSR:
            dwell_all(spec.t_sd, RowState.SLEEP, "long_sleep")
        else:
            if arch is Architecture.NVPG and not spec.store_free:
                # Rows store in series; the waiting rows stay powered.
                for row in range(n):
                    self._account("store",
                                  char.e_store * cells_per_row)
                    waiting = char.p_normal * cells_per_row * (n - 1)
                    self._account("idle_active_idle",
                                  waiting * char.t_store)
                    self._log(row, "store", char.t_store)
                    self._time += char.t_store
            dwell_all(spec.t_sd, RowState.OFF, "long_shutdown")
            # Whole-domain wake-up (rows restore in parallel).
            self._account("restore",
                          char.e_restore * cells_per_row * n)
            self._log(-1, "restore", char.t_restore)
            self._time += char.t_restore

        return DomainSimResult(
            total_energy=self._energy,
            duration=self._time,
            num_cells=self.domain.num_cells,
            breakdown=dict(self._breakdown),
            events=self._events,
        )

    # -- helpers ----------------------------------------------------------
    def _idle_state(self, arch: Architecture) -> RowState:
        """State of the N-1 rows while one row is accessed."""
        if arch is Architecture.NOF:
            return RowState.OFF     # fine-grained normally-off gating
        return RowState.ACTIVE_IDLE

    def _account(self, label: str, energy: float) -> None:
        self._energy += energy
        self._breakdown[label] = self._breakdown.get(label, 0.0) + energy

    def _log(self, row: int, action: str, duration: float) -> None:
        if self.log_events:
            self._events.append(
                DomainEvent(self._time, row, action, duration)
            )
