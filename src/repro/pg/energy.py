"""Per-cell E_cyc composition (paper Section IV, Figs. 7-8).

The paper post-processes its HSPICE runs into **E_cyc**: the energy per
cell over one benchmark cycle (n_cyc = 1) of the Fig. 5 sequences.  This
module performs the same composition from characterised per-mode numbers:

* the cell's own read/write/store/restore energies come from transient
  characterisation (:mod:`repro.characterize.runner`);
* idle intervals contribute static power x duration;
* array organisation enters through the serialisation factors of
  :class:`repro.cells.array.PowerDomain`: the N words of the domain are
  accessed in series (a cell waits, powered, while its N-1 neighbours are
  accessed) and stored in series (the NVPG store phase lasts N x t_store,
  the origin of the large-N penalty in Fig. 7(b)).

Long sleep/shutdown intervals (micro- to milliseconds) therefore never
need to be transient-simulated — exactly how such papers extrapolate
their circuit simulations to millisecond shutdowns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..errors import SequenceError
from ..cells.array import PowerDomain
from ..characterize.data import CellCharacterization
from .modes import OperatingConditions
from .sequences import Architecture, BenchmarkSpec


@dataclass(frozen=True)
class CycleEnergyBreakdown:
    """E_cyc split by activity (joules per cell per benchmark cycle)."""

    access: float = 0.0          # the cell's own read/write cycles
    idle_active: float = 0.0     # powered idle while other words accessed
    standby: float = 0.0         # short t_SL intervals (sleep or shutdown)
    store: float = 0.0           # MTJ store energy (incl. waiting rows)
    long_period: float = 0.0     # the t_SD interval (sleep or shutdown)
    restore: float = 0.0         # wake-up energy

    @property
    def total(self) -> float:
        return (self.access + self.idle_active + self.standby +
                self.store + self.long_period + self.restore)

    def as_dict(self) -> Dict[str, float]:
        return {
            "access": self.access,
            "idle_active": self.idle_active,
            "standby": self.standby,
            "store": self.store,
            "long_period": self.long_period,
            "restore": self.restore,
            "total": self.total,
        }


class CellEnergyModel:
    """Composes characterised energies into E_cyc for the three
    architectures over a given power domain.

    Parameters
    ----------
    nv:
        Characterisation of the NV-SRAM cell (used by NVPG and NOF).
    volatile:
        Characterisation of the 6T baseline (used by OSR).
    cond:
        Operating conditions (timings, read:write ratio).
    domain:
        Power-domain geometry; must match the characterisations'
        bitline loading.
    """

    def __init__(self, nv: CellCharacterization,
                 volatile: CellCharacterization,
                 cond: OperatingConditions,
                 domain: PowerDomain):
        if nv.kind != "nv" or volatile.kind != "6t":
            raise SequenceError("characterisations passed in wrong order")
        if nv.n_wordlines != domain.n_wordlines or \
                volatile.n_wordlines != domain.n_wordlines:
            raise SequenceError(
                "characterisation domain depth does not match the domain: "
                f"nv={nv.n_wordlines}, 6t={volatile.n_wordlines}, "
                f"domain={domain.n_wordlines}"
            )
        self.nv = nv
        self.volatile = volatile
        self.cond = cond
        self.domain = domain

    # -- public API -------------------------------------------------------
    def cycle_energy(self, spec: BenchmarkSpec) -> CycleEnergyBreakdown:
        """E_cyc of one benchmark cycle of ``spec`` (per cell)."""
        arch = spec.architecture
        if arch is Architecture.OSR:
            return self._osr(spec)
        if arch is Architecture.NVPG:
            return self._nvpg(spec)
        return self._nof(spec)

    def e_cyc(self, spec: BenchmarkSpec) -> float:
        """Scalar E_cyc (joules per cell per benchmark cycle)."""
        return self.cycle_energy(spec).total

    def effective_cycle_time(self, arch: Architecture) -> float:
        """Read/write cycle time as the workload experiences it.

        OSR and NVPG run at the nominal cycle time (the PS-FinFETs isolate
        the MTJs); NOF pays the per-cycle wake-up and write-back on top —
        the paper's "severe performance degradation".
        """
        t_cyc = self.cond.t_cycle
        if arch is Architecture.NOF:
            return t_cyc + self.nv.t_restore + self.nv.t_store
        return t_cyc

    # -- architecture compositions --------------------------------------------
    def _pass_counts(self):
        """Reads-per-pass ratio (each pass: rho reads + 1 write per word)."""
        return self.cond.read_write_ratio

    def _osr(self, spec: BenchmarkSpec) -> CycleEnergyBreakdown:
        c = self.volatile
        rho = self._pass_counts()
        n = self.domain.n_wordlines
        t_cyc = self.cond.t_cycle

        access = spec.n_rw * (rho * c.e_read + c.e_write)
        idle = spec.n_rw * c.p_normal * (n - 1) * (rho + 1.0) * t_cyc
        standby = spec.n_rw * c.p_sleep * spec.t_sl
        long_period = c.p_sleep * spec.t_sd
        return CycleEnergyBreakdown(
            access=access, idle_active=idle, standby=standby,
            long_period=long_period,
        )

    def _nvpg(self, spec: BenchmarkSpec) -> CycleEnergyBreakdown:
        c = self.nv
        rho = self._pass_counts()
        n = self.domain.n_wordlines
        t_cyc = self.cond.t_cycle

        access = spec.n_rw * (rho * c.e_read + c.e_write)
        idle = spec.n_rw * c.p_normal * (n - 1) * (rho + 1.0) * t_cyc
        standby = spec.n_rw * c.p_sleep * spec.t_sl
        if spec.store_free:
            store = 0.0
        else:
            # Word lines are stored in series; while the other N-1 rows
            # take their turn this cell waits at normal retention.
            store = c.e_store + c.p_normal * (n - 1) * c.t_store
        long_period = c.p_shutdown * spec.t_sd
        restore = c.e_restore
        return CycleEnergyBreakdown(
            access=access, idle_active=idle, standby=standby,
            store=store, long_period=long_period, restore=restore,
        )

    def _nof(self, spec: BenchmarkSpec) -> CycleEnergyBreakdown:
        c = self.nv
        rho = self._pass_counts()
        n = self.domain.n_wordlines
        t_cyc = self.cond.t_cycle

        store_each = 0.0 if spec.store_free else c.e_store
        t_store_each = 0.0 if spec.store_free else c.t_store
        # Every access wakes the word line; writes additionally write back
        # to the MTJs before the line shuts off again.
        t_read_slot = t_cyc + c.t_restore
        t_write_slot = t_cyc + c.t_restore + t_store_each

        access = spec.n_rw * (
            rho * (c.e_read + c.e_restore) + (c.e_write + c.e_restore)
        )
        store = spec.n_rw * store_each
        # While other words are accessed this cell is OFF (fine-grained
        # per-word-line gating) — the defining NOF property.
        idle = spec.n_rw * c.p_shutdown * (n - 1) * (
            rho * t_read_slot + t_write_slot
        )
        standby = spec.n_rw * c.p_shutdown * spec.t_sl
        long_period = c.p_shutdown * spec.t_sd
        restore = c.e_restore  # final wake-up after the long shutdown
        return CycleEnergyBreakdown(
            access=access, idle_active=idle, standby=standby,
            store=store, long_period=long_period, restore=restore,
        )

    # -- affine structure (used by the closed-form BET) ----------------------
    def e_cyc_affine(self, spec: BenchmarkSpec):
        """Return (E_cyc at t_SD = 0, dE_cyc/dt_SD).

        E_cyc is exactly affine in t_SD: the long period contributes
        static power x t_SD and nothing else depends on it.
        """
        base = self.e_cyc(
            BenchmarkSpec(
                architecture=spec.architecture, n_rw=spec.n_rw,
                t_sl=spec.t_sl, t_sd=0.0, store_free=spec.store_free,
            )
        )
        if spec.architecture is Architecture.OSR:
            slope = self.volatile.p_sleep
        else:
            slope = self.nv.p_shutdown
        return base, slope
