"""Workload modelling: from access traces to power-gating inputs.

The energy/policy models consume abstract quantities — idle intervals,
(active, idle) epochs, accesses per activation.  Real evaluations start
from an *access trace*.  This module bridges the two:

* :func:`epochs_from_access_times` — burst detection: merge accesses
  separated by less than a threshold into active epochs and report the
  idle gaps between them (the direct input to
  :class:`repro.pg.hierarchy.SystemModel` and the BET-gating policies);
* trace generators for the usual suspects — periodic duty cycles,
  Poisson bursts, and a Zipf-distributed address stream mapped onto
  power domains (locality: a few domains take most accesses, the rest
  idle long enough to gate — the paper's fine-grained-management
  scenario).

All generators take an explicit ``numpy`` random generator so results
are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import SequenceError


@dataclass(frozen=True)
class Epoch:
    """One active burst followed by its idle gap."""

    start: float
    active: float
    idle: float
    accesses: int

    @property
    def end(self) -> float:
        return self.start + self.active + self.idle


def epochs_from_access_times(
    times: Sequence[float],
    merge_gap: float,
    access_duration: float = 0.0,
    tail_idle: float = 0.0,
) -> List[Epoch]:
    """Group an access-time series into (active, idle) epochs.

    Accesses closer than ``merge_gap`` belong to the same burst; the
    burst's active span runs from its first access to its last (plus one
    ``access_duration``), and the idle gap extends to the next burst
    (``tail_idle`` after the final one).

    Raises on unsorted input — silent re-sorting would hide trace bugs.
    """
    if merge_gap <= 0:
        raise SequenceError("merge_gap must be positive")
    ts = list(times)
    if not ts:
        return []
    if any(b < a for a, b in zip(ts, ts[1:])):
        raise SequenceError("access times must be sorted")

    bursts: List[Tuple[float, float, int]] = []   # (start, end, count)
    start = ts[0]
    prev = ts[0]
    count = 1
    for t in ts[1:]:
        if t - prev <= merge_gap:
            prev = t
            count += 1
        else:
            bursts.append((start, prev + access_duration, count))
            start = prev = t
            count = 1
    bursts.append((start, prev + access_duration, count))

    epochs = []
    for i, (b_start, b_end, n) in enumerate(bursts):
        if i + 1 < len(bursts):
            idle = bursts[i + 1][0] - b_end
        else:
            idle = tail_idle
        epochs.append(Epoch(
            start=b_start,
            active=max(b_end - b_start, access_duration),
            idle=max(idle, 0.0),
            accesses=n,
        ))
    return epochs


def epoch_pairs(epochs: Sequence[Epoch]) -> List[Tuple[float, float]]:
    """The (active, idle) tuples the hierarchy/policy models take."""
    return [(e.active, e.idle) for e in epochs]


# ---------------------------------------------------------------------------
# trace generators
# ---------------------------------------------------------------------------

def periodic_trace(period: float, duty: float, total: float,
                   access_interval: float) -> List[float]:
    """Accesses every ``access_interval`` during the on-phase of a fixed
    duty cycle (the classic always-on-vs-gated textbook workload)."""
    if not (0.0 < duty < 1.0):
        raise SequenceError("duty must be in (0, 1)")
    if period <= 0 or total <= 0 or access_interval <= 0:
        raise SequenceError("durations must be positive")
    times: List[float] = []
    t = 0.0
    while t < total:
        burst_end = min(t + duty * period, total)
        times.extend(np.arange(t, burst_end, access_interval))
        t += period
    return times


def poisson_burst_trace(rng: np.random.Generator,
                        burst_rate: float,
                        accesses_per_burst: int,
                        access_interval: float,
                        total: float) -> List[float]:
    """Bursts arriving as a Poisson process, each a dense access run."""
    if burst_rate <= 0 or accesses_per_burst < 1:
        raise SequenceError("burst_rate and accesses_per_burst must be "
                            "positive")
    times: List[float] = []
    t = float(rng.exponential(1.0 / burst_rate))
    while t < total:
        burst = t + np.arange(accesses_per_burst) * access_interval
        times.extend(burst[burst < total])
        t += float(rng.exponential(1.0 / burst_rate))
    return sorted(times)


@dataclass
class DomainTrace:
    """Per-domain view of a shared address stream."""

    domain_accesses: Dict[int, List[float]] = field(default_factory=dict)

    def access_counts(self) -> Dict[int, int]:
        return {d: len(ts) for d, ts in self.domain_accesses.items()}

    def epochs(self, domain: int, merge_gap: float,
               **kwargs) -> List[Epoch]:
        return epochs_from_access_times(
            self.domain_accesses.get(domain, []), merge_gap, **kwargs
        )

    def coverage(self, num_domains: int, top: int) -> float:
        """Fraction of all accesses landing in the ``top`` hottest
        domains (the locality the paper's store-free argument needs)."""
        counts = sorted(self.access_counts().values(), reverse=True)
        total = sum(counts)
        if total == 0:
            return 0.0
        return sum(counts[:top]) / total


def zipf_domain_trace(rng: np.random.Generator,
                      num_domains: int,
                      num_accesses: int,
                      mean_interval: float,
                      alpha: float = 1.2) -> DomainTrace:
    """A Zipf-popular address stream spread over ``num_domains`` domains.

    Inter-access times are exponential with ``mean_interval``; each
    access lands in a domain drawn from a Zipf(alpha) popularity law.
    """
    if num_domains < 1 or num_accesses < 1:
        raise SequenceError("need at least one domain and one access")
    if alpha <= 1.0:
        raise SequenceError("alpha must exceed 1 for a proper Zipf law")
    ranks = np.arange(1, num_domains + 1, dtype=float)
    probs = ranks ** -alpha
    probs /= probs.sum()

    gaps = rng.exponential(mean_interval, size=num_accesses)
    times = np.cumsum(gaps)
    domains = rng.choice(num_domains, size=num_accesses, p=probs)

    trace = DomainTrace()
    for t, d in zip(times, domains):
        trace.domain_accesses.setdefault(int(d), []).append(float(t))
    return trace
