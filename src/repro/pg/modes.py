"""Operating modes and bias conditions (paper Table I and Section III).

Every mode of the NV-SRAM cell maps to a set of DC levels on the control
lines of the single-cell testbench:

========== ======= ====== ====== ====== =====================================
Mode        PG gate  WL     SR     CTRL   Notes
========== ======= ====== ====== ====== =====================================
NORMAL      0        pulse  0      0.07   V_CTRL = 0.07 V minimises leakage
SLEEP       0*       0      0      0.04   rail lowered to 0.7 V (retention)
STORE_H     0        0      0.65   0      step 1: H-level node -> MTJ (CIMS)
STORE_L     0        0      0.65   0.5    step 2: CTRL drives the L-side MTJ
SHUTDOWN    1.0      0      0      0      super cutoff (V_PG = 1.0 V) [20]
RESTORE     0        0      0.65   0      VVDD pull-up regenerates the data
========== ======= ====== ====== ====== =====================================

(* sleep is realised by lowering the rail itself to 0.7 V with the switch
on, which is electrically equivalent to a regulated retention rail.)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict

from ..errors import SequenceError


class Mode(enum.Enum):
    """Cell operating modes appearing in the benchmark sequences."""

    READ = "read"
    WRITE = "write"
    STANDBY = "standby"        # powered, idle, normal-mode biases
    SLEEP = "sleep"            # low-voltage retention (VVDD = 0.7 V)
    STORE_H = "store_h"        # store step 1 (H-level node)
    STORE_L = "store_l"        # store step 2 (L-level node)
    SHUTDOWN = "shutdown"      # super-cutoff power-off
    RESTORE = "restore"        # wake-up / nonvolatile recall


@dataclass(frozen=True)
class OperatingConditions:
    """All voltages, timings and margins of Table I in one place.

    The defaults are the paper's base configuration (300 MHz read/write,
    Jc = 5e6 A/cm^2 MTJs); Fig. 9(b) uses :meth:`fast_variant`.
    """

    vdd: float = 0.9
    #: SR-line voltage activating the PS-FinFETs (store/restore).
    v_sr: float = 0.65
    #: CTRL-line voltage during the L-store step.
    v_ctrl_store: float = 0.5
    #: CTRL-line bias minimising leakage in the normal operation mode.
    v_ctrl_normal: float = 0.07
    #: CTRL-line bias during the sleep (retention) mode.
    v_ctrl_sleep: float = 0.04
    #: Retention rail voltage during sleep.
    v_sleep_rail: float = 0.7
    #: Power-switch gate voltage for super-cutoff shutdown [20].
    v_pg_super: float = 1.0
    #: Normal-mode read/write frequency.
    frequency: float = 300e6
    #: Duration of each of the two store steps (H-store, L-store).
    t_store_step: float = 10e-9
    #: Required store-current margin over the MTJ critical current.
    store_margin: float = 1.5
    #: Wake-up (restore) window allotted before normal operation resumes.
    t_restore: float = 2e-9
    #: Fin number of the power switch per cell (Fig. 4 -> 7).
    nfsw: int = 7
    #: Word-line underdrive (volts below VDD) applied during reads — the
    #: bias-assist knob the paper names for stabilising the aggressive
    #: (1,1) fin design.  0 by default ("any bias assist technique ...
    #: is not employed for simplicity").
    wl_underdrive: float = 0.0
    #: Reads per write in one benchmark pass (paper mainly uses 1).
    read_write_ratio: float = 1.0

    def __post_init__(self):
        if self.frequency <= 0:
            raise SequenceError("frequency must be positive")
        if self.t_store_step <= 0 or self.t_restore <= 0:
            raise SequenceError("store/restore durations must be positive")
        if not (0 < self.v_sleep_rail <= self.vdd):
            raise SequenceError("sleep rail must be in (0, vdd]")
        if self.read_write_ratio <= 0:
            raise SequenceError("read_write_ratio must be positive")
        if not (0.0 <= self.wl_underdrive < self.vdd):
            raise SequenceError("wl_underdrive must be in [0, vdd)")

    @property
    def t_cycle(self) -> float:
        """Read/write cycle time (seconds)."""
        return 1.0 / self.frequency

    @property
    def v_wl_read(self) -> float:
        """Word-line high level during reads (underdrive applied)."""
        return self.vdd - self.wl_underdrive

    @property
    def t_store(self) -> float:
        """Total two-step store duration per word line."""
        return 2.0 * self.t_store_step

    def fast_variant(self) -> "OperatingConditions":
        """The Fig. 9(b) configuration: 1 GHz operation."""
        return replace(self, frequency=1e9)

    def with_(self, **kwargs) -> "OperatingConditions":
        """A copy with some fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class LineLevels:
    """DC bias level of every control line of the cell testbench (volts)."""

    rail: float       # main supply rail
    pg: float         # power-switch gate
    wl: float         # word line
    sr: float         # SR line (PS-FinFET gates)
    ctrl: float       # CTRL line (MTJ far ends)
    bl: float         # bitline (when source-driven)
    blb: float        # complementary bitline
    prech: float      # precharge enable (testbench switch control)
    write_en: float   # write-driver enable (testbench switch control)

    def as_dict(self) -> Dict[str, float]:
        return {
            "rail": self.rail,
            "pg": self.pg,
            "wl": self.wl,
            "sr": self.sr,
            "ctrl": self.ctrl,
            "bl": self.bl,
            "blb": self.blb,
            "prech": self.prech,
            "write_en": self.write_en,
        }


def bias_for_mode(mode: Mode, cond: OperatingConditions,
                  volatile: bool = False) -> LineLevels:
    """The quiescent line levels of ``mode``.

    READ/WRITE segments additionally pulse WL/precharge/write-enable on
    top of these quiescent levels — that activity is generated by
    :mod:`repro.pg.scheduler`, not encoded here.

    Parameters
    ----------
    volatile:
        True for the plain 6T cell: the SR/CTRL lines are absent, so their
        levels are forced to 0 in every mode.
    """
    vdd = cond.vdd
    base = dict(
        rail=vdd, pg=0.0, wl=0.0,
        sr=0.0, ctrl=cond.v_ctrl_normal,
        bl=vdd, blb=vdd, prech=vdd, write_en=0.0,
    )
    if mode in (Mode.READ, Mode.WRITE, Mode.STANDBY):
        pass  # normal-mode quiescent levels
    elif mode is Mode.SLEEP:
        base.update(rail=cond.v_sleep_rail, ctrl=cond.v_ctrl_sleep,
                    bl=cond.v_sleep_rail, blb=cond.v_sleep_rail,
                    prech=cond.v_sleep_rail)
    elif mode is Mode.STORE_H:
        base.update(sr=cond.v_sr, ctrl=0.0)
    elif mode is Mode.STORE_L:
        base.update(sr=cond.v_sr, ctrl=cond.v_ctrl_store)
    elif mode is Mode.SHUTDOWN:
        base.update(pg=cond.v_pg_super, ctrl=0.0, bl=0.0, blb=0.0, prech=0.0)
    elif mode is Mode.RESTORE:
        base.update(sr=cond.v_sr, ctrl=0.0, bl=0.0, blb=0.0, prech=0.0)
    else:  # pragma: no cover - exhaustive enum
        raise SequenceError(f"unknown mode {mode}")
    if volatile:
        base.update(sr=0.0, ctrl=0.0)
    return LineLevels(**base)
