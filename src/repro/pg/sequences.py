"""Benchmark sequences of the paper's Fig. 5.

Three architectures share one structure — ``n_RW`` repetitions of an
access pass followed by a long inactive period of duration ``t_SD`` — and
differ in how standby time is spent:

* **OSR** (Fig. 5(a), volatile 6T): each pass is read + write + short
  *sleep* ``t_SL``; the long period is spent in *sleep* too (the volatile
  cell cannot power off without losing data).
* **NVPG** (Fig. 5(b)): passes are identical to OSR (MTJs disconnected);
  after the last pass the cell *stores* to the MTJs (two steps), shuts
  down for ``t_SD`` under super cutoff, and *restores* on wake-up.
  With ``store_free`` the store is skipped (the MTJs already hold the
  data needed after wake-up — the paper's "store-free shutdown" [8]).
* **NOF** (Fig. 5(c)): the MTJs are engaged during normal operation, so
  each pass is wake-up (restore) + read + write + per-cycle store
  (write-back), after which the cell immediately shuts down for ``t_SL``
  (a short *shutdown* replaces the sleep); the long period is a shutdown.

These schedules describe a single cell's view; array-level serialisation
(N word lines stored in series etc.) is applied by
:class:`repro.pg.energy.CellEnergyModel`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import SequenceError
from .modes import Mode, OperatingConditions
from .scheduler import Schedule, ScheduleStep


class Architecture(enum.Enum):
    """The three compared architectures."""

    OSR = "osr"      # ordinary (volatile) SRAM
    NVPG = "nvpg"    # nonvolatile power-gating
    NOF = "nof"      # normally-off

    @property
    def is_volatile(self) -> bool:
        return self is Architecture.OSR


@dataclass(frozen=True)
class SequencePhase:
    """A named phase for reporting (maps onto Fig. 5's boxes)."""

    label: str
    mode: Mode
    duration: float


@dataclass(frozen=True)
class BenchmarkSpec:
    """Parameters of one benchmark sequence instance.

    Attributes
    ----------
    architecture:
        OSR, NVPG or NOF.
    n_rw:
        Number of read/write passes per benchmark cycle.
    t_sl:
        Short standby between passes: sleep (OSR/NVPG) or short shutdown
        (NOF), seconds.
    t_sd:
        Long inactive period: sleep for OSR, shutdown for NVPG/NOF.
    store_free:
        Skip the store before the long shutdown (NVPG and NOF).
    initial_data:
        Data held at the start; writes alternate from there.
    """

    architecture: Architecture
    n_rw: int = 1
    t_sl: float = 0.0
    t_sd: float = 0.0
    store_free: bool = False
    initial_data: bool = True

    def __post_init__(self):
        if self.n_rw < 1:
            raise SequenceError("n_rw must be >= 1")
        if self.t_sl < 0 or self.t_sd < 0:
            raise SequenceError("t_sl and t_sd must be >= 0")


def benchmark_sequence(spec: BenchmarkSpec,
                       cond: OperatingConditions) -> Schedule:
    """Build the single-cell :class:`~repro.pg.scheduler.Schedule` of Fig. 5.

    Zero-duration standby segments are elided so the compiled waveforms
    have no degenerate corners.
    """
    arch = spec.architecture
    t_cyc = cond.t_cycle
    steps: List[ScheduleStep] = []
    data = spec.initial_data

    def standby(duration: float, mode: Mode):
        if duration > 0:
            steps.append(ScheduleStep(mode, duration))

    for _ in range(spec.n_rw):
        if arch is Architecture.NOF:
            steps.append(ScheduleStep(Mode.RESTORE, cond.t_restore))
        steps.append(ScheduleStep(Mode.READ, t_cyc))
        data = not data
        steps.append(ScheduleStep(Mode.WRITE, t_cyc, data=data))
        if arch is Architecture.NOF:
            if not spec.store_free:
                steps.append(ScheduleStep(Mode.STORE_H, cond.t_store_step))
                steps.append(ScheduleStep(Mode.STORE_L, cond.t_store_step))
            standby(spec.t_sl, Mode.SHUTDOWN)
        else:
            standby(spec.t_sl, Mode.SLEEP)

    if arch is Architecture.OSR:
        standby(spec.t_sd, Mode.SLEEP)
    elif arch is Architecture.NVPG:
        if not spec.store_free:
            steps.append(ScheduleStep(Mode.STORE_H, cond.t_store_step))
            steps.append(ScheduleStep(Mode.STORE_L, cond.t_store_step))
        standby(spec.t_sd, Mode.SHUTDOWN)
        steps.append(ScheduleStep(Mode.RESTORE, cond.t_restore))
    else:  # NOF: already stored every cycle; just stay off, then wake.
        standby(spec.t_sd, Mode.SHUTDOWN)
        steps.append(ScheduleStep(Mode.RESTORE, cond.t_restore))

    return Schedule(steps, cond, volatile=arch.is_volatile)


def describe_sequence(spec: BenchmarkSpec, cond: OperatingConditions) -> str:
    """Human-readable timeline (the textual equivalent of Fig. 5)."""
    schedule = benchmark_sequence(spec, cond)
    lines = [
        f"{spec.architecture.value.upper()} benchmark sequence "
        f"(n_RW={spec.n_rw}, t_SL={spec.t_sl:g}s, t_SD={spec.t_sd:g}s)"
    ]
    for window in schedule.windows():
        label = window.mode.value
        if window.data is not None:
            label += f"[{'1' if window.data else '0'}]"
        lines.append(
            f"  {window.t_start * 1e9:10.2f} ns  +{window.duration * 1e9:10.3f} ns  {label}"
        )
    return "\n".join(lines)
