"""Break-even time (BET) extraction (paper Figs. 8-9).

The BET is the shutdown duration at which executing nonvolatile
power-gating costs exactly as much energy as the volatile baseline spends
sleeping through the same interval — i.e. the minimum energetically
meaningful shutdown period.  Graphically it is the crossing of the
E_cyc(t_SD) curves of the PG architecture and of OSR (Fig. 8).

Because E_cyc is affine in t_SD (every term except the long period is
independent of it), the crossing solves in closed form:

    BET = (E_pg(0) - E_osr(0)) / (P_sleep_OSR - P_shutdown_PG)

:func:`break_even_time` implements that, and
:func:`bet_curve_crossing` recovers the BET numerically from swept
curves — the cross-check used by the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import AnalysisError
from .energy import CellEnergyModel
from .sequences import Architecture, BenchmarkSpec


@dataclass(frozen=True)
class BetResult:
    """BET of one architecture/workload point.

    ``bet`` is 0.0 when the PG architecture already wins at t_SD = 0 and
    ``inf`` when it can never win (its shutdown leaks at least as much as
    the baseline's sleep).
    """

    architecture: Architecture
    n_rw: int
    bet: float
    overhead_energy: float       # E_pg(0) - E_osr(0)
    saving_power: float          # P_sleep_OSR - P_shutdown_PG

    @property
    def achievable(self) -> bool:
        return math.isfinite(self.bet)


def break_even_time(
    model: CellEnergyModel,
    architecture: Architecture = Architecture.NVPG,
    n_rw: int = 1,
    t_sl: float = 0.0,
    store_free: bool = False,
) -> BetResult:
    """Closed-form BET of ``architecture`` against the OSR baseline."""
    if architecture is Architecture.OSR:
        raise AnalysisError("BET is defined against the OSR baseline")
    pg_spec = BenchmarkSpec(architecture=architecture, n_rw=n_rw,
                            t_sl=t_sl, store_free=store_free)
    osr_spec = BenchmarkSpec(architecture=Architecture.OSR, n_rw=n_rw,
                             t_sl=t_sl)
    e_pg0, p_pg = model.e_cyc_affine(pg_spec)
    e_osr0, p_osr = model.e_cyc_affine(osr_spec)

    overhead = e_pg0 - e_osr0
    saving = p_osr - p_pg
    if overhead <= 0.0:
        bet = 0.0
    elif saving <= 0.0:
        bet = math.inf
    else:
        bet = overhead / saving
    return BetResult(
        architecture=architecture,
        n_rw=n_rw,
        bet=bet,
        overhead_energy=overhead,
        saving_power=saving,
    )


def bet_curve_crossing(
    t_sd: Sequence[float],
    e_pg: Sequence[float],
    e_osr: Sequence[float],
) -> Optional[float]:
    """Numerical BET from swept E_cyc(t_SD) curves.

    Returns the first t_SD where ``e_pg`` drops to/below ``e_osr``
    (linearly interpolated), or ``None`` if the curves never cross in the
    swept range.  Used to cross-validate :func:`break_even_time`.
    """
    t = np.asarray(list(t_sd), dtype=float)
    pg = np.asarray(list(e_pg), dtype=float)
    osr = np.asarray(list(e_osr), dtype=float)
    if t.ndim != 1 or t.size < 2 or pg.shape != t.shape or osr.shape != t.shape:
        raise AnalysisError("bet_curve_crossing: malformed inputs")
    diff = pg - osr
    if diff[0] <= 0.0:
        return float(t[0])
    below = np.nonzero(diff <= 0.0)[0]
    if below.size == 0:
        return None
    k = int(below[0])
    d0, d1 = diff[k - 1], diff[k]
    frac = d0 / (d0 - d1)
    return float(t[k - 1] + frac * (t[k] - t[k - 1]))
