"""System-level NVPG: a cache hierarchy of power-gated NV-SRAM domains.

The paper closes by arguing that NVPG "would be effective at achieving
fine-grained power management of logic systems in which lower and higher
level caches are organized with the NV-SRAM array and the nonvolatile
retention is performed for a part (power domain) of each level cache".
This module makes that argument executable:

* a :class:`CacheLevel` wraps one level's energy model with its access
  behaviour (domains per level, accesses per active epoch, whether
  store-free shutdown applies — upper levels are typically clean copies
  of lower ones, the paper's store-free case);
* a :class:`SystemModel` evaluates the whole hierarchy over a workload
  of (active, idle) epochs, gating each level's idle domains whenever
  the idle time clears that level's BET.

The output quantifies the paper's point: with per-level BETs spanning
two orders of magnitude (registers ~10 µs, small L1 domains ~tens of µs
store-free, big L2 domains ~hundreds of µs), a bursty workload lets the
upper levels power off during gaps that the lower levels must idle
through — exactly the fine-grained management the paper envisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import SequenceError
from ..cells.array import PowerDomain
from .bet import break_even_time
from .energy import CellEnergyModel
from .sequences import Architecture, BenchmarkSpec


@dataclass
class CacheLevel:
    """One cache level: an array of identical NVPG power domains.

    Parameters
    ----------
    name:
        Label for reports ("L1", "L2", ...).
    model:
        Characterised energy model of one domain of this level.
    num_domains:
        How many such domains the level comprises.
    n_rw_per_epoch:
        Benchmark passes each *active* domain performs per active epoch.
    active_fraction:
        Fraction of the level's domains touched during an active epoch
        (locality: an L2 mostly sleeps even while the core runs).
    store_free:
        Shutdowns skip the store (the level's data is clean — the
        paper's store-free case, typical for inclusive upper levels).
    """

    name: str
    model: CellEnergyModel
    num_domains: int = 1
    n_rw_per_epoch: int = 100
    active_fraction: float = 1.0
    store_free: bool = False

    def __post_init__(self):
        if self.num_domains < 1:
            raise SequenceError("num_domains must be >= 1")
        if not (0.0 < self.active_fraction <= 1.0):
            raise SequenceError("active_fraction must be in (0, 1]")
        if self.n_rw_per_epoch < 1:
            raise SequenceError("n_rw_per_epoch must be >= 1")

    @property
    def domain(self) -> PowerDomain:
        return self.model.domain

    @property
    def capacity_bytes(self) -> float:
        return self.num_domains * self.domain.size_bytes

    def bet(self) -> float:
        """Break-even time of one domain of this level."""
        return break_even_time(
            self.model, Architecture.NVPG,
            n_rw=self.n_rw_per_epoch, store_free=self.store_free,
        ).bet

    # -- epoch energies (per domain, joules) --------------------------------
    def _cells(self) -> int:
        return self.domain.num_cells

    def active_epoch_energy(self, duration: float) -> float:
        """One active domain over one active epoch.

        The domain performs its benchmark passes, then sleeps for the
        rest of the epoch (it stays powered while the core is running).
        """
        spec = BenchmarkSpec(Architecture.NVPG,
                             n_rw=self.n_rw_per_epoch, t_sl=0.0, t_sd=0.0,
                             store_free=True)
        # Active work, minus the store/restore bracket (no shutdown here).
        breakdown = self.model.cycle_energy(spec)
        busy = breakdown.access + breakdown.idle_active
        t_busy = (self.domain.access_pass_duration(self.model.cond.t_cycle)
                  * self.n_rw_per_epoch)
        slack = max(duration - t_busy, 0.0)
        per_cell = busy - breakdown.restore \
            + self.model.nv.p_sleep * slack
        return per_cell * self._cells()

    def idle_epoch_energy(self, duration: float, gate: bool) -> float:
        """One domain over one idle epoch, gated or sleeping."""
        nv = self.model.nv
        if not gate:
            return nv.p_sleep * duration * self._cells()
        store = 0.0 if self.store_free else (
            nv.e_store + nv.p_normal * (self.domain.n_wordlines - 1)
            * nv.t_store
        )
        overhead = store + nv.e_restore
        dead = (0.0 if self.store_free else
                self.domain.store_phase_duration(nv.t_store)) + nv.t_restore
        if duration <= dead:
            return nv.p_sleep * duration * self._cells()
        off = duration - dead
        return (overhead + nv.p_shutdown * off) * self._cells()

    def epoch_energy(self, active: float, idle: float) -> float:
        """Whole level over one (active, idle) epoch with BET gating."""
        n_active = max(1, round(self.active_fraction * self.num_domains))
        n_quiet = self.num_domains - n_active
        bet = self.bet()
        energy = n_active * self.active_epoch_energy(active)
        # Quiet domains sleep through the active phase...
        energy += n_quiet * self.idle_epoch_energy(active,
                                                   gate=active > bet)
        # ... and the whole level rides out the idle phase.
        energy += self.num_domains * self.idle_epoch_energy(
            idle, gate=idle > bet
        )
        return energy


@dataclass
class LevelReport:
    """Per-level outcome of a workload evaluation."""

    name: str
    capacity_bytes: float
    bet: float
    energy: float
    energy_never_gate: float

    @property
    def savings(self) -> float:
        if self.energy_never_gate <= 0:
            return 0.0
        return 1.0 - self.energy / self.energy_never_gate


@dataclass
class SystemModel:
    """A hierarchy of cache levels evaluated over epoch workloads."""

    levels: List[CacheLevel]

    def __post_init__(self):
        if not self.levels:
            raise SequenceError("SystemModel needs at least one level")
        names = [lvl.name for lvl in self.levels]
        if len(set(names)) != len(names):
            raise SequenceError("duplicate level names")

    def evaluate(self, epochs: Sequence[Tuple[float, float]]
                 ) -> List[LevelReport]:
        """Run the workload and report per-level energy and savings.

        ``epochs`` is a sequence of (active_duration, idle_duration)
        pairs in seconds.
        """
        if not epochs:
            raise SequenceError("workload needs at least one epoch")
        reports = []
        for level in self.levels:
            gated = sum(level.epoch_energy(a, i) for a, i in epochs)
            never = sum(
                level.active_epoch_energy(a) * max(
                    1, round(level.active_fraction * level.num_domains))
                + level.idle_epoch_energy(a, gate=False)
                * (level.num_domains - max(
                    1, round(level.active_fraction * level.num_domains)))
                + level.idle_epoch_energy(i, gate=False)
                * level.num_domains
                for a, i in epochs
            )
            reports.append(LevelReport(
                name=level.name,
                capacity_bytes=level.capacity_bytes,
                bet=level.bet(),
                energy=gated,
                energy_never_gate=never,
            ))
        return reports

    def total_savings(self, epochs: Sequence[Tuple[float, float]]) -> float:
        """System-wide fractional saving of BET gating vs never gating."""
        reports = self.evaluate(epochs)
        gated = sum(r.energy for r in reports)
        never = sum(r.energy_never_gate for r in reports)
        if never <= 0:
            return 0.0
        return 1.0 - gated / never
