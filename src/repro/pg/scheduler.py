"""Mode-timeline to bias-waveform compiler.

A :class:`Schedule` is an ordered list of :class:`ScheduleStep` (mode +
duration + optional write data).  :meth:`Schedule.line_waveforms` compiles
it into one piecewise-linear waveform per testbench control line — the
quiescent levels come from :func:`repro.pg.modes.bias_for_mode` and the
intra-cycle activity of READ/WRITE steps (precharge, word-line and
write-driver pulses) is generated here.

The resulting waveforms drive the single-cell transient testbenches used
for characterisation and for the Fig. 6 power traces; the per-step windows
(:meth:`Schedule.windows`) are what the energy bookkeeping integrates
over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import SequenceError
from ..circuit.waveforms import PiecewiseLinear, Waveform
from .modes import LineLevels, Mode, OperatingConditions, bias_for_mode

#: Fraction of a read cycle spent precharging before word-line assertion.
_READ_PRECHARGE_FRACTION = 0.40
#: Word-line assertion window inside a read cycle (fractions of t_cycle).
_READ_WL_WINDOW = (0.45, 0.95)
#: Write-driver window inside a write cycle.
_WRITE_DRIVER_WINDOW = (0.10, 0.95)
#: Word-line window inside a write cycle.
_WRITE_WL_WINDOW = (0.25, 0.90)


@dataclass(frozen=True)
class ScheduleStep:
    """One mode segment of a schedule."""

    mode: Mode
    duration: float
    #: Data value for WRITE steps (True = drive Q high).
    data: Optional[bool] = None

    def __post_init__(self):
        if self.duration < 0:
            raise SequenceError("step duration must be >= 0")
        if self.mode is Mode.WRITE and self.data is None:
            raise SequenceError("WRITE steps need a data value")


@dataclass(frozen=True)
class PhaseWindow:
    """Time window of one schedule step in the compiled timeline."""

    index: int
    mode: Mode
    t_start: float
    t_end: float
    data: Optional[bool] = None

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


class _PwlBuilder:
    """Accumulates (time, level) corners with finite-slope transitions."""

    def __init__(self, level0: float):
        self.points: List[Tuple[float, float]] = [(0.0, level0)]

    def set(self, t: float, level: float, ramp: float) -> None:
        """Ramp to ``level`` starting at ``t`` over ``ramp`` seconds."""
        last_t, last_level = self.points[-1]
        if level == last_level:
            return
        if t <= last_t:
            t = last_t + ramp * 1e-3
        self.points.append((t, last_level))
        self.points.append((t + ramp, level))

    def waveform(self) -> PiecewiseLinear:
        return PiecewiseLinear(self.points)


class Schedule:
    """An ordered mode timeline for one cell testbench."""

    #: Control lines every compiled schedule provides.
    LINES = ("rail", "pg", "wl", "sr", "ctrl", "bl", "blb", "prech", "write_en")

    def __init__(self, steps: List[ScheduleStep], cond: OperatingConditions,
                 volatile: bool = False):
        if not steps:
            raise SequenceError("schedule needs at least one step")
        self.steps = list(steps)
        self.cond = cond
        self.volatile = volatile

    @property
    def total_duration(self) -> float:
        return sum(step.duration for step in self.steps)

    def windows(self) -> List[PhaseWindow]:
        """Per-step time windows in the compiled timeline."""
        result = []
        t = 0.0
        for i, step in enumerate(self.steps):
            result.append(PhaseWindow(i, step.mode, t, t + step.duration, step.data))
            t += step.duration
        return result

    def windows_of(self, mode: Mode) -> List[PhaseWindow]:
        return [w for w in self.windows() if w.mode is mode]

    # -- compilation ---------------------------------------------------------
    def line_waveforms(self) -> Dict[str, Waveform]:
        """Compile the timeline into one waveform per control line."""
        cond = self.cond
        t_edge = min(100e-12, cond.t_cycle / 20.0)
        first_bias = bias_for_mode(self.steps[0].mode, cond, self.volatile)
        builders = {
            line: _PwlBuilder(getattr(first_bias, line)) for line in self.LINES
        }

        t = 0.0
        for step in self.steps:
            bias = bias_for_mode(step.mode, cond, self.volatile)
            for line in self.LINES:
                builders[line].set(t, getattr(bias, line), t_edge)
            if step.mode is Mode.READ:
                self._emit_read(builders, t, step.duration, bias, t_edge)
            elif step.mode is Mode.WRITE:
                self._emit_write(builders, t, step.duration, bias, t_edge,
                                 bool(step.data))
            t += step.duration

        # Park every line at its final quiescent level.
        final_bias = bias_for_mode(self.steps[-1].mode, cond, self.volatile)
        for line in self.LINES:
            builders[line].set(t, getattr(final_bias, line), t_edge)
        return {line: b.waveform() for line, b in builders.items()}

    def _emit_read(self, builders, t0: float, duration: float,
                   bias: LineLevels, t_edge: float) -> None:
        """Precharge-then-sense read activity."""
        vdd = self.cond.vdd
        t_pre_end = t0 + _READ_PRECHARGE_FRACTION * duration
        wl_on = t0 + _READ_WL_WINDOW[0] * duration
        wl_off = t0 + _READ_WL_WINDOW[1] * duration
        builders["prech"].set(t0, vdd, t_edge)
        builders["prech"].set(t_pre_end, 0.0, t_edge)
        # Reads may use word-line underdrive (bias assist) for stability.
        builders["wl"].set(wl_on, self.cond.v_wl_read, t_edge)
        builders["wl"].set(wl_off, 0.0, t_edge)
        # Re-enable precharge for the tail so the next cycle starts charged.
        builders["prech"].set(wl_off + 2 * t_edge, vdd, t_edge)

    def _emit_write(self, builders, t0: float, duration: float,
                    bias: LineLevels, t_edge: float, data: bool) -> None:
        """Write-driver + word-line activity."""
        vdd = self.cond.vdd
        drv_on = t0 + _WRITE_DRIVER_WINDOW[0] * duration
        drv_off = t0 + _WRITE_DRIVER_WINDOW[1] * duration
        wl_on = t0 + _WRITE_WL_WINDOW[0] * duration
        wl_off = t0 + _WRITE_WL_WINDOW[1] * duration
        bl_level = vdd if data else 0.0
        blb_level = 0.0 if data else vdd
        builders["prech"].set(t0, 0.0, t_edge)
        builders["bl"].set(drv_on, bl_level, t_edge)
        builders["blb"].set(drv_on, blb_level, t_edge)
        builders["write_en"].set(drv_on, vdd, t_edge)
        builders["wl"].set(wl_on, vdd, t_edge)
        builders["wl"].set(wl_off, 0.0, t_edge)
        builders["write_en"].set(drv_off, 0.0, t_edge)
        builders["bl"].set(drv_off + 2 * t_edge, vdd, t_edge)
        builders["blb"].set(drv_off + 2 * t_edge, vdd, t_edge)
        builders["prech"].set(drv_off + 4 * t_edge, vdd, t_edge)

    def __repr__(self) -> str:
        return (
            f"<Schedule {len(self.steps)} steps, "
            f"T={self.total_duration:g}s, volatile={self.volatile}>"
        )
