"""SI-prefixed quantity parsing and engineering-notation formatting.

SPICE decks and the paper's Table I express values like ``20n`` (20 nm),
``0.65`` (volts) or ``5e6`` (A/cm^2).  This module converts between such
strings and floats, and formats floats back into engineering notation for
the report tables produced by :mod:`repro.experiments.report`.

Examples
--------
>>> parse_quantity("10n")
1e-08
>>> parse_quantity("1.5u")
1.5e-06
>>> format_eng(2.34e-11, "J")
'23.40 pJ'
"""

from __future__ import annotations

import math
import re

from .errors import UnitError

#: SPICE-style multiplier suffixes.  ``meg`` must be matched before ``m``.
_SUFFIXES = [
    ("meg", 1e6),
    ("t", 1e12),
    ("g", 1e9),
    ("k", 1e3),
    ("m", 1e-3),
    ("u", 1e-6),
    ("µ", 1e-6),
    ("n", 1e-9),
    ("p", 1e-12),
    ("f", 1e-15),
    ("a", 1e-18),
]

_NUMBER_RE = re.compile(
    r"^\s*([+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)\s*([a-zA-Zµ]*)\s*$"
)

#: Prefixes used when formatting, from largest to smallest.
_ENG_PREFIXES = [
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
    (1e-12, "p"),
    (1e-15, "f"),
    (1e-18, "a"),
]


def parse_quantity(text: "str | float | int") -> float:
    """Parse a SPICE-style quantity into a float.

    Accepts plain numbers (``"0.9"``, ``1e-9``), numbers with SPICE
    multiplier suffixes (``"10n"``, ``"1.5meg"``), and passes through
    floats/ints unchanged.  Any trailing unit letters after the multiplier
    (e.g. ``"10ns"``, ``"2kOhm"``) are ignored, matching SPICE behaviour.

    Raises
    ------
    UnitError
        If the text cannot be interpreted as a number.
    """
    if isinstance(text, (int, float)):
        return float(text)
    match = _NUMBER_RE.match(text)
    if match is None:
        raise UnitError(f"cannot parse quantity: {text!r}")
    value = float(match.group(1))
    suffix = match.group(2).lower()
    if not suffix:
        return value
    for prefix, multiplier in _SUFFIXES:
        if suffix.startswith(prefix):
            return value * multiplier
    # Unknown leading letter: SPICE treats unrecognised suffixes as unit
    # names (e.g. "3V"), i.e. multiplier one.
    return value


def format_eng(value: float, unit: str = "", digits: int = 2) -> str:
    """Format ``value`` in engineering notation with an SI prefix.

    >>> format_eng(3.3e-9, "s")
    '3.30 ns'
    >>> format_eng(0.0, "W")
    '0.00 W'
    """
    if value != value:  # NaN
        return f"nan {unit}".strip()
    if math.isinf(value):
        sign = "-" if value < 0 else ""
        return f"{sign}inf {unit}".strip()
    if value == 0.0:
        return f"{0.0:.{digits}f} {unit}".strip()
    magnitude = abs(value)
    for index, (scale, prefix) in enumerate(_ENG_PREFIXES):
        if magnitude >= scale:
            # A value just under the next prefix boundary can *round* to
            # 1000 at the requested precision (999.95e-9 at 2 digits);
            # roll it over to the next prefix instead of printing
            # "1000.00 n".  The check uses the rendered string so the
            # decision always agrees with what would have been printed.
            if index > 0 and \
                    float(f"{magnitude / scale:.{digits}f}") >= 1000.0:
                scale, prefix = _ENG_PREFIXES[index - 1]
            return f"{value / scale:.{digits}f} {prefix}{unit}".strip()
    scale, prefix = _ENG_PREFIXES[-1]
    return f"{value / scale:.{digits}f} {prefix}{unit}".strip()


# Convenience unit constants so client code can write `10 * NS` readably.
FEMTO = 1e-15
PICO = 1e-12
NANO = 1e-9
MICRO = 1e-6
MILLI = 1e-3
KILO = 1e3
MEGA = 1e6
GIGA = 1e9

NS = 1e-9
US = 1e-6
MS = 1e-3
PS = 1e-12
FS = 1e-15

NM = 1e-9
UM = 1e-6

FJ = 1e-15
PJ = 1e-12
NJ = 1e-9

NW = 1e-9
UW = 1e-6
MW = 1e-3

NA = 1e-9
UA = 1e-6
MA = 1e-3

FF = 1e-15  # farads
AF = 1e-18

#: Boltzmann constant times room temperature over electron charge (volts).
THERMAL_VOLTAGE_300K = 0.025852


# ---------------------------------------------------------------------------
# physical dimensions
# ---------------------------------------------------------------------------
#
# The RV5xx units-dataflow lint (:mod:`repro.verify.rules_units`) seeds
# its analysis from this module: every quantity constant above carries a
# physical dimension, and every unit symbol accepted by
# :func:`format_eng` maps to one.  Dimensions are exponent 4-tuples over
# the SI base quantities this project needs: ``(mass, length, time,
# current)``.

#: Exponents over (kg, m, s, A).
DimExponents = "tuple"  # documentation alias; plain tuples are used

DIMENSIONLESS = (0, 0, 0, 0)
DIM_TIME = (0, 0, 1, 0)
DIM_FREQUENCY = (0, 0, -1, 0)
DIM_LENGTH = (0, 1, 0, 0)
DIM_ENERGY = (1, 2, -2, 0)
DIM_POWER = (1, 2, -3, 0)
DIM_CURRENT = (0, 0, 0, 1)
DIM_VOLTAGE = (1, 2, -3, -1)
DIM_CHARGE = (0, 0, 1, 1)
DIM_RESISTANCE = (1, 2, -3, -2)
DIM_CAPACITANCE = (-1, -2, 4, 2)

#: Human names for the dimensions above (diagnostics say "energy", not
#: "(1, 2, -2, 0)").
DIMENSION_NAMES = {
    DIMENSIONLESS: "dimensionless",
    DIM_TIME: "time",
    DIM_FREQUENCY: "frequency",
    DIM_LENGTH: "length",
    DIM_ENERGY: "energy",
    DIM_POWER: "power",
    DIM_CURRENT: "current",
    DIM_VOLTAGE: "voltage",
    DIM_CHARGE: "charge",
    DIM_RESISTANCE: "resistance",
    DIM_CAPACITANCE: "capacitance",
}

#: Dimension of each bare unit symbol used with :func:`format_eng`.
UNIT_DIMENSIONS = {
    "s": DIM_TIME,
    "Hz": DIM_FREQUENCY,
    "m": DIM_LENGTH,
    "J": DIM_ENERGY,
    "eV": DIM_ENERGY,
    "W": DIM_POWER,
    "A": DIM_CURRENT,
    "V": DIM_VOLTAGE,
    "C": DIM_CHARGE,
    "Ohm": DIM_RESISTANCE,
    "F": DIM_CAPACITANCE,
}

#: Dimension of every quantity constant this module exports, used to
#: seed the RV5xx dataflow (``10 * NS`` is a time, ``2 * PJ`` an energy).
CONSTANT_DIMENSIONS = {
    "FEMTO": DIMENSIONLESS, "PICO": DIMENSIONLESS, "NANO": DIMENSIONLESS,
    "MICRO": DIMENSIONLESS, "MILLI": DIMENSIONLESS, "KILO": DIMENSIONLESS,
    "MEGA": DIMENSIONLESS, "GIGA": DIMENSIONLESS,
    "NS": DIM_TIME, "US": DIM_TIME, "MS": DIM_TIME, "PS": DIM_TIME,
    "FS": DIM_TIME,
    "NM": DIM_LENGTH, "UM": DIM_LENGTH,
    "FJ": DIM_ENERGY, "PJ": DIM_ENERGY, "NJ": DIM_ENERGY,
    "NW": DIM_POWER, "UW": DIM_POWER, "MW": DIM_POWER,
    "NA": DIM_CURRENT, "UA": DIM_CURRENT, "MA": DIM_CURRENT,
    "FF": DIM_CAPACITANCE, "AF": DIM_CAPACITANCE,
    "THERMAL_VOLTAGE_300K": DIM_VOLTAGE,
}

#: SI prefixes accepted (and emitted) in front of a unit symbol.
_UNIT_PREFIXES = ("T", "G", "M", "k", "m", "u", "µ", "n", "p", "f", "a")


def dimension_of(unit: str):
    """Dimension tuple of a unit string like ``"J"``, ``"pJ"`` or ``"ns"``.

    Accepts an optional single SI prefix in front of a known symbol.
    Returns ``None`` for empty or unrecognised units — callers (the
    RV5xx lint) must treat that as "no information", never as an error.
    """
    unit = unit.strip()
    if not unit:
        return None
    if unit in UNIT_DIMENSIONS:
        return UNIT_DIMENSIONS[unit]
    if len(unit) >= 2 and unit[0] in _UNIT_PREFIXES:
        return UNIT_DIMENSIONS.get(unit[1:])
    return None


def dimension_name(dim) -> str:
    """Readable name of a dimension tuple (falls back to the exponents)."""
    if dim is None:
        return "unknown"
    name = DIMENSION_NAMES.get(tuple(dim))
    if name is not None:
        return name
    mass, length, time, current = dim
    return f"kg^{mass}·m^{length}·s^{time}·A^{current}"
