"""SI-prefixed quantity parsing and engineering-notation formatting.

SPICE decks and the paper's Table I express values like ``20n`` (20 nm),
``0.65`` (volts) or ``5e6`` (A/cm^2).  This module converts between such
strings and floats, and formats floats back into engineering notation for
the report tables produced by :mod:`repro.experiments.report`.

Examples
--------
>>> parse_quantity("10n")
1e-08
>>> parse_quantity("1.5u")
1.5e-06
>>> format_eng(2.34e-11, "J")
'23.40 pJ'
"""

from __future__ import annotations

import math
import re

from .errors import UnitError

#: SPICE-style multiplier suffixes.  ``meg`` must be matched before ``m``.
_SUFFIXES = [
    ("meg", 1e6),
    ("t", 1e12),
    ("g", 1e9),
    ("k", 1e3),
    ("m", 1e-3),
    ("u", 1e-6),
    ("µ", 1e-6),
    ("n", 1e-9),
    ("p", 1e-12),
    ("f", 1e-15),
    ("a", 1e-18),
]

_NUMBER_RE = re.compile(
    r"^\s*([+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)\s*([a-zA-Zµ]*)\s*$"
)

#: Prefixes used when formatting, from largest to smallest.
_ENG_PREFIXES = [
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
    (1e-12, "p"),
    (1e-15, "f"),
    (1e-18, "a"),
]


def parse_quantity(text: "str | float | int") -> float:
    """Parse a SPICE-style quantity into a float.

    Accepts plain numbers (``"0.9"``, ``1e-9``), numbers with SPICE
    multiplier suffixes (``"10n"``, ``"1.5meg"``), and passes through
    floats/ints unchanged.  Any trailing unit letters after the multiplier
    (e.g. ``"10ns"``, ``"2kOhm"``) are ignored, matching SPICE behaviour.

    Raises
    ------
    UnitError
        If the text cannot be interpreted as a number.
    """
    if isinstance(text, (int, float)):
        return float(text)
    match = _NUMBER_RE.match(text)
    if match is None:
        raise UnitError(f"cannot parse quantity: {text!r}")
    value = float(match.group(1))
    suffix = match.group(2).lower()
    if not suffix:
        return value
    for prefix, multiplier in _SUFFIXES:
        if suffix.startswith(prefix):
            return value * multiplier
    # Unknown leading letter: SPICE treats unrecognised suffixes as unit
    # names (e.g. "3V"), i.e. multiplier one.
    return value


def format_eng(value: float, unit: str = "", digits: int = 2) -> str:
    """Format ``value`` in engineering notation with an SI prefix.

    >>> format_eng(3.3e-9, "s")
    '3.30 ns'
    >>> format_eng(0.0, "W")
    '0.00 W'
    """
    if value != value:  # NaN
        return f"nan {unit}".strip()
    if math.isinf(value):
        sign = "-" if value < 0 else ""
        return f"{sign}inf {unit}".strip()
    if value == 0.0:
        return f"{0.0:.{digits}f} {unit}".strip()
    magnitude = abs(value)
    for index, (scale, prefix) in enumerate(_ENG_PREFIXES):
        if magnitude >= scale:
            # A value just under the next prefix boundary can *round* to
            # 1000 at the requested precision (999.95e-9 at 2 digits);
            # roll it over to the next prefix instead of printing
            # "1000.00 n".  The check uses the rendered string so the
            # decision always agrees with what would have been printed.
            if index > 0 and \
                    float(f"{magnitude / scale:.{digits}f}") >= 1000.0:
                scale, prefix = _ENG_PREFIXES[index - 1]
            return f"{value / scale:.{digits}f} {prefix}{unit}".strip()
    scale, prefix = _ENG_PREFIXES[-1]
    return f"{value / scale:.{digits}f} {prefix}{unit}".strip()


# Convenience unit constants so client code can write `10 * NS` readably.
FEMTO = 1e-15
PICO = 1e-12
NANO = 1e-9
MICRO = 1e-6
MILLI = 1e-3
KILO = 1e3
MEGA = 1e6
GIGA = 1e9

NS = 1e-9
US = 1e-6
MS = 1e-3
PS = 1e-12
FS = 1e-15

NM = 1e-9
UM = 1e-6

FJ = 1e-15
PJ = 1e-12
NJ = 1e-9

NW = 1e-9
UW = 1e-6
MW = 1e-3

NA = 1e-9
UA = 1e-6
MA = 1e-3

FF = 1e-15  # farads
AF = 1e-18

#: Boltzmann constant times room temperature over electron charge (volts).
THERMAL_VOLTAGE_300K = 0.025852
