"""Benches for the beyond-the-paper extensions (see DESIGN.md section 6).

Each publishes an artefact under results/ like the figure benches:

* NV-FF register-bank power gating (BET of register state),
* Monte-Carlo store yield / read-SNM spread under mismatch,
* the NOF access-disturb hazard vs NVPG's electrical isolation,
* the data-retention-voltage curve behind the 0.7 V sleep rail.
"""

from repro.cells import PowerDomain
from repro.experiments.report import render_table
from repro.pg.modes import Mode, OperatingConditions
from repro.units import format_eng

COND = OperatingConditions()


def bench_register_bank(benchmark, publish):
    from repro.characterize.ff_runner import characterize_nvff
    from repro.pg.registers import RegisterBankModel

    def compute():
        ff = characterize_nvff(COND)
        rows = []
        for bits in (64, 256, 1024, 4096):
            bank = RegisterBankModel(ff, num_ffs=bits)
            rows.append((
                bits,
                bank.idle_power(),
                bank.shutdown_power(),
                bank.gating_overhead,
                bank.break_even_time(),
            ))
        return ff, rows

    ff, rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    publish("ext_registers", render_table(
        ("bits", "idle [W]", "off [W]", "overhead [J]", "BET [s]"),
        rows,
        title="Extension: NV-FF register-bank power gating",
    ))
    bets = [bet for *_, bet in rows]
    # Parallel store: BET independent of bank width, and far below the
    # SRAM domain's (no N-row serialisation).
    assert max(bets) == min(bets)
    assert bets[0] < 50e-6


def bench_variability(benchmark, publish):
    from repro.characterize.variability import (
        read_snm_distribution,
        store_yield_analysis,
    )

    domain = PowerDomain(64, 32)

    def compute():
        yields = store_yield_analysis(COND, domain, n_samples=150)
        snm = read_snm_distribution(COND, n_samples=80)
        return yields, snm

    yields, snm = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        ("store switching yield (I > Ic)", f"{yields.switching_yield:.1%}"),
        ("store margin p1 [x Ic]", f"{yields.percentile(1):.2f}"),
        ("store margin p50 [x Ic]", f"{yields.percentile(50):.2f}"),
        ("read SNM mean", format_eng(snm.mean, "V")),
        ("read SNM sigma", format_eng(snm.std, "V")),
        ("read bistable yield", f"{snm.stability_yield:.1%}"),
    ]
    publish("ext_variability", render_table(
        ("metric", "value"), rows,
        title="Extension: Monte-Carlo variability (sigma_vth = 25 mV)",
    ))
    assert yields.switching_yield == 1.0
    assert snm.stability_yield > 0.9


def bench_access_disturb(benchmark, publish):
    from repro.characterize.disturb import (
        nof_access_disturb,
        nvpg_access_disturb,
    )

    domain = PowerDomain(64, 32)

    def compute():
        rows = []
        for mode in (Mode.READ, Mode.WRITE):
            nof = nof_access_disturb(mode, COND, domain)
            nvpg = nvpg_access_disturb(mode, COND, domain)
            rows.append((mode.value, nof.peak_current_ratio,
                         nof.peak_progress,
                         nvpg.peak_current_ratio))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    publish("ext_disturb", render_table(
        ("access", "NOF peak I/Ic", "NOF progress", "NVPG peak I/Ic"),
        rows,
        title="Extension: MTJ stress during accesses (NOF vs NVPG)",
    ))
    read_row = rows[0]
    assert read_row[1] > 0.3        # NOF reads genuinely stress the MTJs
    assert read_row[3] < 1e-2       # NVPG isolation is essentially total


def bench_retention_voltage(benchmark, publish):
    import numpy as np

    from repro.characterize.retention import retention_voltage_sweep

    result = benchmark.pedantic(
        lambda: retention_voltage_sweep(
            COND, rail_values=np.linspace(0.15, 0.9, 16)),
        rounds=1, iterations=1,
    )
    rows = [(rail, snm) for rail, snm in result.rows()]
    table = render_table(
        ("rail [V]", "hold SNM [V]"), rows,
        title="Extension: data-retention voltage sweep",
    )
    note = (
        f"  -> DRV = {result.retention_voltage:.3f} V; paper's 0.7 V "
        f"sleep rail has {result.sleep_headroom:.2f} V of headroom"
    )
    publish("ext_retention", table + "\n" + note)
    assert result.retention_voltage is not None
    assert result.sleep_headroom > 0.1
