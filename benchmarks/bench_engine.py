"""Simulator-engine performance benches.

Times the primitives everything else is built from, so regressions in
the MNA/Newton/transient stack are visible independent of the physics.
"""

from repro.analysis import operating_point, transient
from repro.analysis.transient import TransientOptions
from repro.characterize.runner import characterize_cell
from repro.characterize.testbench import build_cell_testbench
from repro.cells import PowerDomain
from repro.pg.modes import Mode, OperatingConditions
from repro.pg.scheduler import Schedule, ScheduleStep

DOMAIN = PowerDomain(512, 32)
COND = OperatingConditions()


def bench_operating_point_nv_cell(benchmark):
    tb = build_cell_testbench("nv", COND, DOMAIN)
    tb.apply_mode(Mode.STANDBY)
    ic = tb.initial_conditions(True)
    result = benchmark(lambda: operating_point(tb.circuit, ic=ic))
    assert result.voltage("vvdd") > 0.85


def bench_read_burst_transient(benchmark):
    def run():
        tb = build_cell_testbench("nv", COND, DOMAIN)
        schedule = Schedule(
            [ScheduleStep(Mode.STANDBY, COND.t_cycle),
             ScheduleStep(Mode.READ, COND.t_cycle),
             ScheduleStep(Mode.READ, COND.t_cycle)],
            COND,
        )
        tb.apply_waveforms(schedule.line_waveforms())
        return transient(tb.circuit, schedule.total_duration,
                         ic=tb.initial_conditions(True),
                         options=TransientOptions(dt_initial=20e-12))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(result) > 50


def bench_full_characterization_uncached(benchmark):
    """The end-to-end cost of characterising one NV cell from scratch."""
    result = benchmark.pedantic(
        lambda: characterize_cell("nv", COND, DOMAIN, cache_dir=None),
        rounds=1, iterations=1,
    )
    assert result.restore_ok
