"""Simulator-engine performance benches.

Times the primitives everything else is built from, so regressions in
the MNA/Newton/transient stack are visible independent of the physics.

``bench_trust_certification_overhead`` additionally measures what the
numerical-trust layer (:mod:`repro.analysis.trust`) costs on *clean*
solves — certified vs uncertified operating point and transient — and
writes the split to ``BENCH_engine.json`` at the repo root, so the
"certification is ≈free" claim is a tracked artefact, not an anecdote.
"""

import json
import math
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.exec.atomicio import atomic_write_text
from repro.analysis import operating_point, transient
from repro.analysis.dc import OperatingPointOptions
from repro.analysis.solver import NewtonOptions
from repro.analysis.transient import TransientOptions
from repro.analysis.trust import TrustOptions
from repro.characterize.runner import characterize_cell
from repro.characterize.testbench import build_cell_testbench
from repro.cells import PowerDomain
from repro.pg.modes import Mode, OperatingConditions
from repro.pg.scheduler import Schedule, ScheduleStep

_REPO = Path(__file__).resolve().parent.parent
DOMAIN = PowerDomain(512, 32)
COND = OperatingConditions()


def bench_operating_point_nv_cell(benchmark):
    tb = build_cell_testbench("nv", COND, DOMAIN)
    tb.apply_mode(Mode.STANDBY)
    ic = tb.initial_conditions(True)
    result = benchmark(lambda: operating_point(tb.circuit, ic=ic))
    assert result.voltage("vvdd") > 0.85


def bench_read_burst_transient(benchmark):
    def run():
        tb = build_cell_testbench("nv", COND, DOMAIN)
        schedule = Schedule(
            [ScheduleStep(Mode.STANDBY, COND.t_cycle),
             ScheduleStep(Mode.READ, COND.t_cycle),
             ScheduleStep(Mode.READ, COND.t_cycle)],
            COND,
        )
        tb.apply_waveforms(schedule.line_waveforms())
        return transient(tb.circuit, schedule.total_duration,
                         ic=tb.initial_conditions(True),
                         options=TransientOptions(dt_initial=20e-12))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(result) > 50


def bench_full_characterization_uncached(benchmark):
    """The end-to-end cost of characterising one NV cell from scratch."""
    result = benchmark.pedantic(
        lambda: characterize_cell("nv", COND, DOMAIN, cache_dir=None),
        rounds=1, iterations=1,
    )
    assert result.restore_ok


def _trust_op(certify):
    tb = build_cell_testbench("nv", COND, DOMAIN)
    tb.apply_mode(Mode.STANDBY)
    opts = OperatingPointOptions(
        newton=NewtonOptions(trust=TrustOptions(certify=certify)))
    return operating_point(tb.circuit, ic=tb.initial_conditions(True),
                           options=opts)


def _trust_tran(certify):
    tb = build_cell_testbench("nv", COND, DOMAIN)
    schedule = Schedule(
        [ScheduleStep(Mode.STANDBY, COND.t_cycle),
         ScheduleStep(Mode.READ, COND.t_cycle)],
        COND,
    )
    tb.apply_waveforms(schedule.line_waveforms())
    opts = TransientOptions(
        dt_initial=20e-12,
        newton=NewtonOptions(trust=TrustOptions(certify=certify)))
    return transient(tb.circuit, schedule.total_duration,
                     ic=tb.initial_conditions(True), options=opts)


def _best_of(fn, rounds):
    fn()                                      # warm caches / JIT imports
    times = []
    for _ in range(rounds):
        t0 = perf_counter()
        fn()
        times.append(perf_counter() - t0)
    return min(times)


def bench_trust_certification_overhead(benchmark, publish):
    """Certified vs uncertified clean solves → ``BENCH_engine.json``.

    Clean solves (healthy NV-cell standby/read deck) must pay ≈0 for
    per-solve certification: the residual is one matvec and the
    condition estimate is cached across the slowly-varying transient
    systems (``TrustOptions.condest_reuse_rtol``).  The measured split
    is written to ``BENCH_engine.json``; the assertion bounds the
    transient overhead loosely enough for CI noise while still catching
    an accidental O(n³)-per-step regression.
    """
    op_cert = _best_of(lambda: _trust_op(True), rounds=7)
    op_plain = _best_of(lambda: _trust_op(False), rounds=7)
    tran_cert = _best_of(lambda: _trust_tran(True), rounds=3)
    tran_plain = _best_of(lambda: _trust_tran(False), rounds=3)

    result = benchmark(lambda: _trust_tran(True))
    assert math.isfinite(result.residual_norm)
    assert math.isfinite(result.cond_estimate)
    assert result.stats["defended_steps"] == 0, \
        "clean read-burst deck should not trigger conditioning defenses"

    def pct(certified, plain):
        return 100.0 * (certified / plain - 1.0) if plain > 0 else float("nan")

    payload = {
        "schema": 1,
        "deck": "nv-cell standby+read (certified vs uncertified)",
        "operating_point": {
            "certified_ms": round(op_cert * 1e3, 4),
            "uncertified_ms": round(op_plain * 1e3, 4),
            "overhead_pct": round(pct(op_cert, op_plain), 1),
        },
        "read_burst_transient": {
            "certified_ms": round(tran_cert * 1e3, 4),
            "uncertified_ms": round(tran_plain * 1e3, 4),
            "overhead_pct": round(pct(tran_cert, tran_plain), 1),
            "accepted_steps": int(result.stats["accepted_steps"]),
        },
        "certification": {
            "worst_residual_norm_a": float(result.residual_norm),
            "worst_cond_estimate": float(result.cond_estimate),
            "defended_steps": int(result.stats["defended_steps"]),
        },
    }
    atomic_write_text(_REPO / "BENCH_engine.json",
                      json.dumps(payload, indent=2) + "\n")
    publish("trust_overhead", json.dumps(payload, indent=2))

    assert pct(tran_cert, tran_plain) < 25.0, (
        f"certification costs {pct(tran_cert, tran_plain):.1f}% on the "
        "clean transient — condest caching is not pulling its weight")
