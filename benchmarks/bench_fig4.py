"""Fig. 4 — virtual-VDD vs power-switch fin number."""

from repro.cells import PowerDomain
from repro.experiments import run_fig4


def bench_fig4(benchmark, ctx, publish):
    result = benchmark.pedantic(
        run_fig4,
        kwargs={"cond": ctx.cond, "domain": PowerDomain(512, 32)},
        rounds=1, iterations=1,
    )
    publish("fig4", result.render())

    sweep = result.sweep
    # Store mode sags more than normal mode, monotone recovery with fins.
    assert all(vs <= vn for _, vn, vs in sweep.rows())
    assert result.nfsw_for_target is not None
    assert result.nfsw_for_target <= 7      # paper's choice is sufficient
