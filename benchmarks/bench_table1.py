"""Table I — regenerate the device/circuit parameter table."""

from repro.experiments import run_table1


def bench_table1(benchmark, publish):
    result = benchmark(run_table1)
    publish("table1", result.render())
    # The derived MTJ constants of Table I must come out exactly.
    text = result.render()
    assert "6.37 kohm" in text
    assert "12.73 kohm" in text
    assert "15.71 uA" in text
