"""Recovery-ladder overhead benches.

The ladder's contract is "free when you don't need it": a clean solve
must cost the same with the ladder armed or disarmed, because no rung
runs until the plain attempt has already failed.  The rescue bench
prices a full escalation for scale.
"""

from repro.analysis import operating_point
from repro.analysis.dc import OperatingPointOptions
from repro.analysis.solver import NewtonOptions
from repro.cells import PowerDomain
from repro.characterize.testbench import build_cell_testbench
from repro.pg.modes import Mode, OperatingConditions
from repro.recovery import RecoveryOptions, recover_dc

DOMAIN = PowerDomain(512, 32)
COND = OperatingConditions()


def _nv_bench():
    tb = build_cell_testbench("nv", COND, DOMAIN)
    tb.apply_mode(Mode.STANDBY)
    return tb, tb.initial_conditions(True)


def bench_clean_op_ladder_enabled(benchmark):
    """NV operating point with the full ladder armed (the default)."""
    tb, ic = _nv_bench()
    sol = benchmark(lambda: operating_point(tb.circuit, ic=ic))
    # Clean solve: no rung may have fired, or the bench isn't measuring
    # the ladder-free fast path.
    assert sol.recovery_rung is None
    assert sol.voltage("vvdd") > 0.85


def bench_clean_op_ladder_disabled(benchmark):
    """Same solve with recovery off — the baseline the ladder must match."""
    tb, ic = _nv_bench()
    opts = OperatingPointOptions(recovery=RecoveryOptions(enabled=False))
    sol = benchmark(lambda: operating_point(tb.circuit, ic=ic, options=opts))
    assert sol.voltage("vvdd") > 0.85


def bench_ladder_rescue(benchmark):
    """Full price of rescuing an iteration-starved latch solve."""
    tb, ic = _nv_bench()
    starved = NewtonOptions(max_iterations=3)

    def run():
        tb.circuit.compile()
        return recover_dc(tb.circuit, newton=starved)

    result = benchmark(run)
    assert result.recovered
