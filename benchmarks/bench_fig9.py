"""Fig. 9 — BET vs domain depth N (base and fast configurations)."""

import numpy as np

from repro.experiments import run_fig9


def bench_fig9a(benchmark, ctx, publish):
    result = benchmark.pedantic(
        run_fig9, kwargs={"ctx": ctx, "panel": "a"}, rounds=1,
        iterations=1,
    )
    publish("fig9a", result.render())

    by_label = {s.label: s for s in result.series}
    base10 = by_label["n_RW=10"]
    # BET grows with N and with n_RW.
    assert np.all(np.diff(base10.bet) > 0)
    assert np.all(by_label["n_RW=1000"].bet > base10.bet)
    # Store-free shutdown cuts BET dramatically (to a few us at small N).
    free10 = by_label["n_RW=10 (store-free)"]
    assert np.all(free10.bet < base10.bet / 3)
    assert free10.bet[0] < 20e-6


def bench_fig9b(benchmark, ctx, publish):
    result_b = benchmark.pedantic(
        run_fig9, kwargs={"ctx": ctx, "panel": "b"}, rounds=1,
        iterations=1,
    )
    publish("fig9b", result_b.render())

    result_a = run_fig9(ctx, panel="a")
    bet_a = {s.label: s for s in result_a.series}["n_RW=10"].bet
    bet_b = {s.label: s for s in result_b.series}["n_RW=10"].bet
    # The 1 GHz / low-Jc configuration shortens BET substantially even
    # without store-free shutdown (paper: "much shorter BET and a larger
    # domain size").  The gain is largest at small N, where the store
    # energy (not the normal-phase leakage) dominates the overhead.
    assert np.all(bet_b < bet_a)
    assert bet_b[0] < bet_a[0] / 2
