"""Fig. 6 — benchmark-sequence power traces and static-power table."""

import numpy as np

from repro.cells import PowerDomain
from repro.experiments import run_fig6
from repro.experiments.report import series_block


def bench_fig6(benchmark, ctx, publish):
    result = benchmark.pedantic(
        run_fig6,
        kwargs={"ctx": ctx, "domain": PowerDomain(512, 32)},
        rounds=1, iterations=1,
    )
    text = result.render()
    # Also publish the downsampled power-vs-time series (panel a/b data).
    blocks = [
        series_block(f"P(t) {name}", trace.time[::20], trace.power[::20],
                     "s", "W")
        for name, trace in result.traces.items()
    ]
    publish("fig6", text + "\n\n" + "\n\n".join(blocks))

    osr = result.traces["osr"]
    nvpg = result.traces["nvpg"]
    nof = result.traces["nof"]
    # The NVPG/NOF sequences burn more energy than OSR over this short
    # benchmark (stores dominate), and the MTJ events are visible.
    assert nvpg.total_energy > osr.total_energy
    assert nof.total_energy > nvpg.total_energy
    assert len(nvpg.events) >= 2
    # Effective cycle: NVPG matches OSR; NOF is degraded (paper claim).
    assert result.effective_cycle["NVPG"] == result.effective_cycle["6T/OSR"]
    assert result.effective_cycle["NOF"] > 5 * result.effective_cycle["6T/OSR"]
