"""Fig. 7 — E_cyc vs n_RW for the three architectures.

Besides the rendered tables under ``benchmarks/results/``, each bench
contributes its sweep data to ``BENCH_fig7.json`` at the repo root — a
machine-readable record of the paper's central figure, merged across
whichever of the three benches ran.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.exec.atomicio import atomic_write_text
from repro.cells import PowerDomain
from repro.experiments import run_fig7a, run_fig7b, run_fig7c

_REPO = Path(__file__).resolve().parent.parent


def _sweep_payload(result):
    return [
        {
            "label": sweep.label,
            "n_rw": [int(n) for n in sweep.n_rw],
            "e_cyc_j": {arch: [float(v) for v in values]
                        for arch, values in sorted(sweep.e_cyc.items())},
        }
        for sweep in result.sweeps
    ]


@pytest.fixture(scope="module")
def fig7_json(request):
    """Collects per-figure sweeps; merged into BENCH_fig7.json at exit.

    Merging with any existing file keeps a partial run (``-k fig7b``)
    from discarding the other figures' previously recorded sweeps.
    """
    sections = {}

    def _write():
        if not sections:
            return
        path = _REPO / "BENCH_fig7.json"
        existing = {}
        if path.exists():
            try:
                existing = json.loads(path.read_text())
            except ValueError:
                existing = {}
        merged = {k: v for k, v in existing.items() if k != "schema"}
        merged.update(sections)
        payload = {"schema": 1}
        payload.update(sorted(merged.items()))
        atomic_write_text(path,
                          json.dumps(payload, indent=2) + "\n")

    request.addfinalizer(_write)
    return sections


def bench_fig7a(benchmark, ctx, publish, fig7_json):
    result = benchmark.pedantic(
        run_fig7a, kwargs={"ctx": ctx, "domain": PowerDomain(512, 32)},
        rounds=1, iterations=1,
    )
    publish("fig7a", result.render())
    fig7_json["fig7a"] = _sweep_payload(result)
    for sweep in result.sweeps:
        ratio = sweep.e_cyc["nvpg"] / sweep.e_cyc["osr"]
        assert ratio[-1] < 1.1          # NVPG -> OSR asymptotically
        assert np.all(np.diff(ratio) < 0)
        assert sweep.e_cyc["nof"][-1] > 2 * sweep.e_cyc["osr"][-1]


def bench_fig7b(benchmark, ctx, publish, fig7_json):
    result = benchmark.pedantic(
        run_fig7b, kwargs={"ctx": ctx}, rounds=1, iterations=1,
    )
    publish("fig7b", result.render())
    fig7_json["fig7b"] = _sweep_payload(result)
    # Large-N penalty at n_RW = 1 (paper: NVPG > NOF for N >= 256),
    # recovered by n_RW ~ 10.
    big = result.sweeps[-1]             # N = 2048
    assert big.e_cyc["nvpg"][0] > big.e_cyc["nof"][0]
    idx10 = list(big.n_rw).index(10)
    assert big.e_cyc["nvpg"][idx10] < big.e_cyc["nof"][idx10] * 1.2


def bench_fig7c(benchmark, ctx, publish, fig7_json):
    result = benchmark.pedantic(
        run_fig7c, kwargs={"ctx": ctx, "domain": PowerDomain(512, 32)},
        rounds=1, iterations=1,
    )
    publish("fig7c", result.render())
    fig7_json["fig7c"] = _sweep_payload(result)
    # For t_SD >= several 10 us NVPG beats OSR across the n_RW range.
    long_sweep = result.sweeps[-1]      # t_SD = 10 ms
    assert np.all(long_sweep.e_cyc["nvpg"] < long_sweep.e_cyc["osr"])
