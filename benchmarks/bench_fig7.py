"""Fig. 7 — E_cyc vs n_RW for the three architectures."""

import numpy as np

from repro.cells import PowerDomain
from repro.experiments import run_fig7a, run_fig7b, run_fig7c


def bench_fig7a(benchmark, ctx, publish):
    result = benchmark.pedantic(
        run_fig7a, kwargs={"ctx": ctx, "domain": PowerDomain(512, 32)},
        rounds=1, iterations=1,
    )
    publish("fig7a", result.render())
    for sweep in result.sweeps:
        ratio = sweep.e_cyc["nvpg"] / sweep.e_cyc["osr"]
        assert ratio[-1] < 1.1          # NVPG -> OSR asymptotically
        assert np.all(np.diff(ratio) < 0)
        assert sweep.e_cyc["nof"][-1] > 2 * sweep.e_cyc["osr"][-1]


def bench_fig7b(benchmark, ctx, publish):
    result = benchmark.pedantic(
        run_fig7b, kwargs={"ctx": ctx}, rounds=1, iterations=1,
    )
    publish("fig7b", result.render())
    # Large-N penalty at n_RW = 1 (paper: NVPG > NOF for N >= 256),
    # recovered by n_RW ~ 10.
    big = result.sweeps[-1]             # N = 2048
    assert big.e_cyc["nvpg"][0] > big.e_cyc["nof"][0]
    idx10 = list(big.n_rw).index(10)
    assert big.e_cyc["nvpg"][idx10] < big.e_cyc["nof"][idx10] * 1.2


def bench_fig7c(benchmark, ctx, publish):
    result = benchmark.pedantic(
        run_fig7c, kwargs={"ctx": ctx, "domain": PowerDomain(512, 32)},
        rounds=1, iterations=1,
    )
    publish("fig7c", result.render())
    # For t_SD >= several 10 us NVPG beats OSR across the n_RW range.
    long_sweep = result.sweeps[-1]      # t_SD = 10 ms
    assert np.all(long_sweep.e_cyc["nvpg"] < long_sweep.e_cyc["osr"])
