"""Serving-layer benches: request latency and coalescing leverage.

Boots the real server in-process (inline workers, demo route — the
physics is benched elsewhere; here we time the *serving* machinery)
and measures the three numbers the service contract advertises:

* **cold latency** — a novel request paying canonicalisation,
  admission, scheduling and one backend execution;
* **warm latency** — the identical request again, served from the
  in-memory memo without touching the executor;
* **coalescing factor** — K identical concurrent requests over one
  slow execution: K answers per backend run.

The split is written to ``BENCH_serve.json`` at the repo root and
gated by ``check_regression.py``: the coalescing factor and the
executions count are deterministic and compared exactly; raw
latencies are machine-dependent, so only the warm-path speedup ratio
is tracked, with a wide floor.
"""

import json
import statistics
import tempfile
import threading
from pathlib import Path
from time import perf_counter

from repro.exec.atomicio import atomic_write_text
from repro.serve import ServeClient, ServeOptions, ServerHandle

_REPO = Path(__file__).resolve().parent.parent

COALESCE_CLIENTS = 8


def _median_latency(fn, rounds):
    samples = []
    for _ in range(rounds):
        start = perf_counter()
        fn()
        samples.append(perf_counter() - start)
    return statistics.median(samples)


def bench_serve_latency_and_coalescing(benchmark, publish):
    """Cold vs warm request latency + coalescing → ``BENCH_serve.json``."""
    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as scratch:
        options = ServeOptions(
            extra_routes=("demo",),
            cache_dir=Path(scratch) / "cache",
            drain_settle_s=0.0,
        )
        with ServerHandle(options) as handle:
            client = ServeClient(port=handle.port)

            seq = iter(range(10_000))

            def cold():
                resp = client.task(
                    "demo", {"params": {"x": float(next(seq))}})
                assert resp.status == "ok"
                assert resp.body["served_by"] == "backend"

            warm_body = {"params": {"x": -1.0}}
            client.task("demo", warm_body)      # prime the memo

            def warm():
                resp = client.task("demo", warm_body)
                assert resp.status == "ok"
                assert resp.body["served_by"] == "memo"

            cold_s = _median_latency(cold, rounds=15)
            warm_s = _median_latency(warm, rounds=15)
            benchmark(warm)

            # K identical concurrent requests over one slow execution
            before = client.metrics()["backend"]["executions"]
            body = {"params": {"x": 77.0, "work": 0.4}}
            barrier = threading.Barrier(COALESCE_CLIENTS)
            statuses = []

            def coalesced():
                barrier.wait(timeout=10.0)
                statuses.append(
                    ServeClient(port=handle.port).task("demo", body).status)

            threads = [threading.Thread(target=coalesced)
                       for _ in range(COALESCE_CLIENTS)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=15.0)
            executions = (client.metrics()["backend"]["executions"]
                          - before)

    assert statuses == ["ok"] * COALESCE_CLIENTS
    assert executions == 1, (
        f"{COALESCE_CLIENTS} identical concurrent requests ran "
        f"{executions} backend executions — coalescing broke")

    payload = {
        "schema": 1,
        "route": "demo (inline workers; serving overhead only)",
        "cold": {"latency_ms": round(cold_s * 1e3, 3)},
        "warm": {
            "latency_ms": round(warm_s * 1e3, 3),
            "speedup": round(cold_s / warm_s, 2) if warm_s > 0 else 0.0,
        },
        "coalesce": {
            "clients": COALESCE_CLIENTS,
            "backend_executions": executions,
            "factor": round(COALESCE_CLIENTS / executions, 2),
        },
    }
    atomic_write_text(_REPO / "BENCH_serve.json",
                      json.dumps(payload, indent=2) + "\n")
    publish("serve_overhead", json.dumps(payload, indent=2))
