"""Static-analysis sweep — lint every shipped deck and cell bench.

Unlike the figure benchmarks this regenerates no paper artefact; it
times the :mod:`repro.verify` analyser over everything the repo ships
(the example SPICE decks plus the nv/6t/nvff/array testbenches) and
asserts the whole set is free of error-severity findings, archiving
the combined report under ``benchmarks/results/``.  A rule or cell
change that breaks the shipped netlists fails here by name.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cells import build_cell_array
from repro.characterize.ff_runner import _build_ff_bench
from repro.characterize.testbench import build_cell_testbench
from repro.devices.mtj import MTJ_TABLE1
from repro.devices.ptm20 import NFET_20NM_HP, PFET_20NM_HP
from repro.pg.modes import OperatingConditions
from repro.verify import (
    default_source_paths,
    verify_circuit,
    verify_deck_file,
    verify_source,
)
from repro.verify.emit import render_text

_REPO = Path(__file__).resolve().parent.parent
DECKS = sorted((_REPO / "examples" / "decks").glob("*.sp"))


def _bench_circuits():
    """(name, circuit) for every built-in testbench the repo ships."""
    yield "nv", build_cell_testbench("nv").circuit
    yield "6t", build_cell_testbench("6t").circuit
    cond = OperatingConditions()
    bench, _ = _build_ff_bench(cond, NFET_20NM_HP, PFET_20NM_HP,
                               MTJ_TABLE1)
    yield "nvff", bench
    yield "array", build_cell_array(2, 2, lint=False).circuit


def _lint_everything():
    reports = []
    for path in DECKS:
        reports.append((f"deck:{path.name}", verify_deck_file(path)))
    for name, circuit in _bench_circuits():
        reports.append((f"cell:{name}", verify_circuit(circuit,
                                                       target=name)))
    return reports


@pytest.mark.lint
def bench_lint_shipped_artifacts(benchmark, publish):
    assert DECKS, "no example decks found — shipped decks moved?"
    reports = benchmark(_lint_everything)
    publish("lint", "\n\n".join(render_text(report)
                                for _target, report in reports))
    offenders = {target: [str(d) for d in report.errors()]
                 for target, report in reports if report.has_errors}
    assert not offenders, f"shipped netlists have lint errors: {offenders}"


@pytest.mark.lint
def bench_lint_source_tree(benchmark, publish):
    """Time the RV4xx self-lint over the full shipped ``src/repro`` tree."""
    roots = default_source_paths()
    assert roots, "shipped source tree not found — package layout moved?"
    report = benchmark(verify_source, roots)
    publish("lint_source", render_text(report))
    assert not report.has_errors, (
        "shipped source has RV4xx lint errors: "
        f"{[str(d) for d in report.errors()]}")
