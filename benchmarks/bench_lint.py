"""Static-analysis sweep — lint every shipped deck and cell bench.

Unlike the figure benchmarks this regenerates no paper artefact; it
times the :mod:`repro.verify` analyser over everything the repo ships
(the example SPICE decks plus the nv/6t/nvff/array testbenches) and
asserts the whole set is free of error-severity findings, archiving
the combined report under ``benchmarks/results/``.  A rule or cell
change that breaks the shipped netlists fails here by name.

``bench_lint_source_tree`` additionally measures the incremental
whole-program engine: one cold run (empty cache — parse, summarise,
fixpoint, all bands) against warm reruns (cache hits — no parsing),
writing the cold/warm split to ``BENCH_lint.json`` at the repo root
and asserting the warm path earns its complexity (>= 5x).
"""

from __future__ import annotations

import json
from pathlib import Path
from time import perf_counter

import pytest

from repro.cells import build_cell_array
from repro.exec.atomicio import atomic_write_text
from repro.characterize.ff_runner import _build_ff_bench
from repro.characterize.testbench import build_cell_testbench
from repro.devices.mtj import MTJ_TABLE1
from repro.devices.ptm20 import NFET_20NM_HP, PFET_20NM_HP
from repro.pg.modes import OperatingConditions
from repro.verify import (
    default_source_paths,
    verify_circuit,
    verify_deck_file,
    verify_source,
)
from repro.verify.emit import render_text

_REPO = Path(__file__).resolve().parent.parent
DECKS = sorted((_REPO / "examples" / "decks").glob("*.sp"))


def _bench_circuits():
    """(name, circuit) for every built-in testbench the repo ships."""
    yield "nv", build_cell_testbench("nv").circuit
    yield "6t", build_cell_testbench("6t").circuit
    cond = OperatingConditions()
    bench, _ = _build_ff_bench(cond, NFET_20NM_HP, PFET_20NM_HP,
                               MTJ_TABLE1)
    yield "nvff", bench
    yield "array", build_cell_array(2, 2, lint=False).circuit


def _lint_everything():
    reports = []
    for path in DECKS:
        reports.append((f"deck:{path.name}", verify_deck_file(path)))
    for name, circuit in _bench_circuits():
        reports.append((f"cell:{name}", verify_circuit(circuit,
                                                       target=name)))
    return reports


@pytest.mark.lint
def bench_lint_shipped_artifacts(benchmark, publish):
    assert DECKS, "no example decks found — shipped decks moved?"
    reports = benchmark(_lint_everything)
    publish("lint", "\n\n".join(render_text(report)
                                for _target, report in reports))
    offenders = {target: [str(d) for d in report.errors()]
                 for target, report in reports if report.has_errors}
    assert not offenders, f"shipped netlists have lint errors: {offenders}"


@pytest.mark.lint
def bench_lint_source_tree(benchmark, publish, tmp_path):
    """Cold vs warm whole-program self-lint over ``src/repro``.

    The warm path must reproduce the cold report bit-for-bit while
    parsing nothing; ``BENCH_lint.json`` records both timings so the
    cache's speedup is a tracked artefact, not an anecdote.
    """
    from repro.exec.registry import task_function_refs
    from repro.verify.source import iter_source_files

    from repro.verify.config import effective_config

    roots = default_source_paths()
    assert roots, "shipped source tree not found — package layout moved?"
    refs = tuple(task_function_refs())
    cache = tmp_path / "lint-cache"

    t0 = perf_counter()
    cold_report = verify_source(roots, cache_dir=cache,
                                extra_task_refs=refs)
    cold_s = perf_counter() - t0

    # Marginal cost of the RV8xx array-semantics band: a second cold
    # run with the band disabled (its own cache — the policy hash
    # differs anyway), so the shape-lattice work is a tracked number.
    no_rv8 = effective_config(cli_disable=frozenset(
        {"RV800", "RV801", "RV802", "RV803", "RV804"}))
    t0 = perf_counter()
    verify_source(roots, config=no_rv8,
                  cache_dir=tmp_path / "lint-cache-no-rv8",
                  extra_task_refs=refs)
    cold_no_rv8_s = perf_counter() - t0

    # Same split for the RV9xx concurrency/crash-safety band (effect
    # signatures are still collected — they live in the summaries —
    # so this prices the rule evaluation, not the collection).
    no_rv9 = effective_config(cli_disable=frozenset(
        {"RV900", "RV901", "RV902", "RV903", "RV904", "RV905"}))
    t0 = perf_counter()
    verify_source(roots, config=no_rv9,
                  cache_dir=tmp_path / "lint-cache-no-rv9",
                  extra_task_refs=refs)
    cold_no_rv9_s = perf_counter() - t0
    t0 = perf_counter()
    verify_source(roots, config=no_rv9,
                  cache_dir=tmp_path / "lint-cache-no-rv9",
                  extra_task_refs=refs)
    warm_no_rv9_s = perf_counter() - t0

    def warm():
        return verify_source(roots, cache_dir=cache, extra_task_refs=refs)

    warm_times = []
    for _ in range(3):
        t0 = perf_counter()
        warm_report = warm()
        warm_times.append(perf_counter() - t0)
    warm_s = min(warm_times)
    benchmark(warm)

    def key(d):
        return (d.code, d.target, d.location.line if d.location else 0,
                d.message)

    assert sorted(map(key, warm_report)) == sorted(map(key, cold_report)), \
        "warm lint run diverged from the cold run"
    noisy = cold_report.errors() + cold_report.warnings()
    assert not noisy, ("shipped source has lint errors/warnings: "
                       f"{[str(d) for d in noisy]}")

    by_band = {}
    for diag in cold_report:
        band = f"RV{diag.code[2]}xx"
        by_band[band] = by_band.get(band, 0) + 1
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    payload = {
        "schema": 3,
        "modules": sum(1 for _ in iter_source_files(roots)),
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup": round(speedup, 1),
        "rv8xx_band": {
            "cold_s_without": round(cold_no_rv8_s, 4),
            "cold_marginal_s": round(max(0.0, cold_s - cold_no_rv8_s),
                                     4),
            "findings": sum(1 for d in cold_report
                            if d.code.startswith("RV8")),
        },
        "rv9xx_band": {
            "cold_s_without": round(cold_no_rv9_s, 4),
            "cold_marginal_s": round(max(0.0, cold_s - cold_no_rv9_s),
                                     4),
            "warm_s_without": round(warm_no_rv9_s, 4),
            "warm_marginal_s": round(max(0.0, warm_s - warm_no_rv9_s),
                                     4),
            "findings": sum(1 for d in cold_report
                            if d.code.startswith("RV9")),
        },
        "diagnostics": {
            "total": len(cold_report),
            "by_band": dict(sorted(by_band.items())),
        },
    }
    atomic_write_text(_REPO / "BENCH_lint.json",
                      json.dumps(payload, indent=2) + "\n")
    publish("lint_source",
            f"cold {cold_s:.3f} s / warm {warm_s:.3f} s "
            f"({speedup:.1f}x)\n\n" + render_text(cold_report))
    assert speedup >= 5.0, (
        f"warm lint is only {speedup:.1f}x faster than cold "
        f"({warm_s:.3f} s vs {cold_s:.3f} s) — the incremental cache "
        "is not pulling its weight")
