"""Fig. 5 — benchmark sequence diagrams (textual timelines)."""

from repro.experiments import run_fig5


def bench_fig5(benchmark, publish):
    result = benchmark(run_fig5)
    publish("fig5", result.render())
    osr, nvpg, nof = result.durations
    assert nof > nvpg > osr   # store/restore overheads lengthen passes
