"""Benchmark regression gate: fresh BENCH_*.json vs the committed copy.

The benches write four artefacts at the repo root — ``BENCH_engine
.json`` (numerical-trust overhead), ``BENCH_lint.json`` (incremental
lint cold/warm split), ``BENCH_fig7.json`` (the paper's energy
sweeps) and ``BENCH_serve.json`` (serving-layer latency/coalescing).
The committed copies are the *expected* numbers; CI stashes
them before regenerating and then runs::

    python benchmarks/check_regression.py --baseline-dir bench-baseline

Every metric is compared under a per-metric policy, because the three
files mix two very different kinds of number:

* **Deterministic** metrics (module counts, finding counts, solver
  residuals, the Fig. 7 energy curves) must match (exact, or to a
  tight relative tolerance for floats crossing libm versions).
* **Timing** metrics (cold/warm seconds, certified milliseconds) are
  machine-dependent and are *not* compared directly; only the ratios
  derived from them (overhead percentages, cache speedup) are, with
  wide tolerances.

A metric present in the fresh file but absent from the baseline is
reported as *new* and passes (a PR adding a metric regenerates the
committed copy in the same change); a baseline metric missing from the
fresh file fails — benches silently dropping coverage is itself a
regression.  Exit status 0/1; ``--strict-missing`` also fails when a
whole baseline file was never regenerated.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

_REPO = Path(__file__).resolve().parent.parent

#: (metric path, policy, tolerance).  Policies:
#: ``exact``      — values must be equal.
#: ``abs``        — |fresh - base| <= tol.
#: ``rel``        — |fresh - base| <= tol * max(|base|, tiny).
#: ``min-ratio``  — fresh >= tol * base (larger is better; may improve
#:                  freely, may not collapse).
#: ``max-growth`` — fresh <= tol * max(base, tiny) (smaller is better).
#: ``deep-rel``   — recursive numeric compare of an entire subtree.
SPECS: Dict[str, List[Tuple[str, str, float]]] = {
    "BENCH_engine.json": [
        ("schema", "exact", 0.0),
        ("operating_point.overhead_pct", "abs", 30.0),
        ("read_burst_transient.overhead_pct", "abs", 30.0),
        ("read_burst_transient.accepted_steps", "rel", 0.25),
        ("certification.worst_residual_norm_a", "max-growth", 1e3),
        ("certification.defended_steps", "exact", 0.0),
    ],
    "BENCH_lint.json": [
        ("schema", "exact", 0.0),
        ("modules", "exact", 0.0),
        ("speedup", "min-ratio", 0.4),
        ("rv8xx_band.findings", "exact", 0.0),
        ("rv9xx_band.findings", "exact", 0.0),
        ("diagnostics.total", "exact", 0.0),
    ],
    "BENCH_fig7.json": [
        ("schema", "exact", 0.0),
        ("fig7a", "deep-rel", 1e-6),
        ("fig7b", "deep-rel", 1e-6),
        ("fig7c", "deep-rel", 1e-6),
    ],
    "BENCH_serve.json": [
        ("schema", "exact", 0.0),
        # the serve contract: K clients, one execution, factor K
        ("coalesce.clients", "exact", 0.0),
        ("coalesce.backend_executions", "exact", 0.0),
        ("coalesce.factor", "exact", 0.0),
        # raw latencies are machine noise; the memo-path speedup ratio
        # may improve freely but must not collapse
        ("warm.speedup", "min-ratio", 0.2),
    ],
}

_TINY = 1e-300


def _lookup(payload: Dict[str, Any], dotted: str) -> Tuple[bool, Any]:
    node: Any = payload
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return False, None
        node = node[part]
    return True, node


def _deep_mismatch(fresh: Any, base: Any, rtol: float,
                   crumb: str = "") -> Optional[str]:
    """First numeric/structural divergence in a JSON subtree, or None."""
    if isinstance(base, dict) and isinstance(fresh, dict):
        for key in base:
            if key not in fresh:
                return f"{crumb}.{key}: missing"
            found = _deep_mismatch(fresh[key], base[key], rtol,
                                   f"{crumb}.{key}")
            if found:
                return found
        return None
    if isinstance(base, list) and isinstance(fresh, list):
        if len(base) != len(fresh):
            return f"{crumb}: length {len(fresh)} != {len(base)}"
        for i, (f, b) in enumerate(zip(fresh, base)):
            found = _deep_mismatch(f, b, rtol, f"{crumb}[{i}]")
            if found:
                return found
        return None
    if isinstance(base, (int, float)) and not isinstance(base, bool) \
            and isinstance(fresh, (int, float)) \
            and not isinstance(fresh, bool):
        if abs(fresh - base) <= rtol * max(abs(base), _TINY):
            return None
        return f"{crumb}: {fresh} vs {base}"
    if fresh != base:
        return f"{crumb}: {fresh!r} != {base!r}"
    return None


def _check_metric(policy: str, tol: float, fresh: Any,
                  base: Any) -> Optional[str]:
    """Failure description, or None when within policy."""
    if policy == "deep-rel":
        return _deep_mismatch(fresh, base, tol)
    if policy == "exact":
        return None if fresh == base else f"{fresh!r} != {base!r}"
    try:
        f, b = float(fresh), float(base)
    except (TypeError, ValueError):
        return f"non-numeric: {fresh!r} vs {base!r}"
    if policy == "abs":
        return None if abs(f - b) <= tol \
            else f"{f} vs {b} (|Δ| > {tol})"
    if policy == "rel":
        return None if abs(f - b) <= tol * max(abs(b), _TINY) \
            else f"{f} vs {b} (rel > {tol})"
    if policy == "min-ratio":
        return None if f >= tol * b \
            else f"{f} < {tol} x {b}"
    if policy == "max-growth":
        return None if f <= tol * max(b, _TINY) \
            else f"{f} > {tol} x {b}"
    raise ValueError(f"unknown policy {policy!r}")


def compare_file(name: str, fresh: Dict[str, Any],
                 base: Dict[str, Any]) -> Iterator[Dict[str, Any]]:
    """Per-metric verdicts for one benchmark artefact."""
    for dotted, policy, tol in SPECS[name]:
        have_base, base_val = _lookup(base, dotted)
        have_fresh, fresh_val = _lookup(fresh, dotted)
        if not have_base and not have_fresh:
            continue
        if not have_base:
            yield {"file": name, "metric": dotted, "status": "new",
                   "detail": f"baseline has no {dotted}"}
            continue
        if not have_fresh:
            yield {"file": name, "metric": dotted, "status": "FAIL",
                   "detail": "metric vanished from the fresh run"}
            continue
        problem = _check_metric(policy, tol, fresh_val, base_val)
        if problem is None:
            yield {"file": name, "metric": dotted, "status": "ok",
                   "detail": f"{policy}"}
        else:
            yield {"file": name, "metric": dotted, "status": "FAIL",
                   "detail": problem}


def run_checks(baseline_dir: Path, fresh_dir: Path,
               strict_missing: bool = False) -> Tuple[bool, List[Dict]]:
    """Compare every known artefact present in both directories."""
    rows: List[Dict[str, Any]] = []
    compared = 0
    for name in sorted(SPECS):
        base_path = baseline_dir / name
        fresh_path = fresh_dir / name
        if not base_path.exists():
            rows.append({"file": name, "metric": "-", "status": "new",
                         "detail": "no committed baseline yet"})
            continue
        if not fresh_path.exists():
            status = "FAIL" if strict_missing else "skip"
            rows.append({"file": name, "metric": "-", "status": status,
                         "detail": "not regenerated this run"})
            continue
        try:
            base = json.loads(base_path.read_text())
            fresh = json.loads(fresh_path.read_text())
        except ValueError as err:
            rows.append({"file": name, "metric": "-", "status": "FAIL",
                         "detail": f"unreadable: {err}"})
            continue
        compared += 1
        rows.extend(compare_file(name, fresh, base))
    ok = compared > 0 and not any(r["status"] == "FAIL" for r in rows)
    if compared == 0:
        rows.append({"file": "-", "metric": "-", "status": "FAIL",
                     "detail": "no artefact was compared at all"})
    return ok, rows


def render(rows: List[Dict[str, Any]], ok: bool) -> str:
    lines = [f"bench regression gate ({'PASS' if ok else 'FAIL'})"]
    for row in rows:
        lines.append(f"  {row['status']:<4s} {row['file']:<18s} "
                     f"{row['metric']:<40s} {row['detail']}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="compare fresh BENCH_*.json against committed "
                    "baselines with per-metric tolerances")
    parser.add_argument("--baseline-dir", default=None, metavar="DIR",
                        help="directory holding the committed copies "
                             "(default: the git HEAD versions are "
                             "expected to be stashed there by CI)")
    parser.add_argument("--fresh-dir", default=str(_REPO), metavar="DIR",
                        help="directory holding the regenerated files "
                             "(default: repo root)")
    parser.add_argument("--strict-missing", action="store_true",
                        help="fail when a baselined artefact was not "
                             "regenerated this run")
    args = parser.parse_args(argv)
    if args.baseline_dir is None:
        parser.error("--baseline-dir is required")
    ok, rows = run_checks(Path(args.baseline_dir), Path(args.fresh_dir),
                          strict_missing=args.strict_missing)
    print(render(rows, ok))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
