"""Campaign-executor overhead and speedup benches.

The executor's contract is "cheap when you don't need it": routing a
sweep through the campaign machinery inline (``workers=0``) must cost
within a few percent of the plain serial loop, because the engine adds
only classification, journaling hooks and bookkeeping around each task.
With real spawn workers the fixed cost is the per-worker interpreter
start + import (~1 s), so parallel pays off once the work dwarfs the
warmup — measured here on a small Fig. 7-style characterisation sweep.
"""

import time

from repro.cells import PowerDomain
from repro.characterize.variability import (
    VariationModel,
    _store_margin_sample,
    sample_rng,
    store_yield_analysis,
    store_yield_campaign,
)
from repro.exec import CampaignOptions, run_campaign
from repro.pg.modes import OperatingConditions

COND = OperatingConditions()
DOMAIN = PowerDomain(64, 32)
N_SAMPLES = 12
SEED = 2015
VARIATION = VariationModel()


def _serial_loop():
    """The pre-campaign baseline: a bare loop over the MC samples."""
    return [
        _store_margin_sample(COND, DOMAIN, VARIATION, sample_rng(SEED, i))
        for i in range(N_SAMPLES)
    ]


def bench_serial_loop(benchmark):
    """Baseline: the plain serial Monte-Carlo loop."""
    margins = benchmark(_serial_loop)
    assert len(margins) == N_SAMPLES


def bench_inline_campaign(benchmark):
    """Same sweep through the executor inline; overhead target < 5 %."""
    campaign = store_yield_campaign(COND, DOMAIN, n_samples=N_SAMPLES,
                                    seed=SEED)
    result = benchmark(
        lambda: run_campaign(campaign, options=CampaignOptions(workers=0)))
    assert result.counts()["completed"] == N_SAMPLES


def bench_parallel_campaign(benchmark):
    """Two spawn workers on the same sweep: the fixed isolation cost.

    On a warm-cache 12-sample sweep the ~1 s/worker spawn warmup
    (interpreter start + numpy/scipy imports) dominates, so this bench
    measures the price of process isolation, not a speedup —
    :func:`bench_parallel_speedup` covers the work-dominated regime.
    """
    result = benchmark(
        lambda: store_yield_analysis(COND, DOMAIN, n_samples=N_SAMPLES,
                                     seed=SEED, workers=2))
    assert result.n_failed == 0


def bench_parallel_speedup(capsys):
    """Work-dominated sweep: 2 workers must beat the serial wall-clock.

    12 tasks x 0.5 s each give the workers enough work to amortise
    their spawn warmup; anything short of a real speedup here means the
    pool is serialising.
    """
    from repro.exec.registry import build_campaign

    campaign = build_campaign("demo", tasks=12, work=0.5)
    inline, t_inline = _timed(
        lambda: run_campaign(campaign, options=CampaignOptions(workers=0)))
    parallel, t_parallel = _timed(
        lambda: run_campaign(campaign, options=CampaignOptions(workers=2)))

    assert inline.counts()["completed"] == 12
    assert parallel.counts()["completed"] == 12
    with capsys.disabled():
        print("\ndemo campaign, 12 tasks x 0.5 s:")
        print(f"  inline (workers=0): {t_inline:8.3f} s")
        print(f"  2 spawn workers:    {t_parallel:8.3f} s "
              f"({t_inline / t_parallel:.2f}x speedup incl. warmup)")
    assert t_parallel < t_inline, (
        f"no parallel speedup: {t_parallel:.2f}s vs {t_inline:.2f}s serial")


def _timed(fn):
    t0 = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - t0


def bench_overhead_report(capsys):
    """One-shot comparison table: serial vs inline vs 2 workers.

    Single-run jitter on this ~60 ms workload (GC, scheduler) is far
    larger than the executor's true per-task cost, so serial and inline
    runs are interleaved and compared on their best-of-N floors.
    """
    campaign = store_yield_campaign(COND, DOMAIN, n_samples=N_SAMPLES,
                                    seed=SEED)
    _serial_loop()  # warm the solver caches before timing anything
    serial, t_serial = _timed(_serial_loop)
    inline, t_inline = _timed(
        lambda: run_campaign(campaign, options=CampaignOptions(workers=0)))
    for _ in range(4):
        _, dt = _timed(_serial_loop)
        t_serial = min(t_serial, dt)
        _, dt = _timed(
            lambda: run_campaign(campaign, options=CampaignOptions(workers=0)))
        t_inline = min(t_inline, dt)

    t0 = time.perf_counter()
    parallel = store_yield_analysis(COND, DOMAIN, n_samples=N_SAMPLES,
                                    seed=SEED, workers=2)
    t_parallel = time.perf_counter() - t0

    overhead = (t_inline - t_serial) / t_serial
    with capsys.disabled():
        print(f"\ncampaign executor, {N_SAMPLES}-sample store-yield sweep:")
        print(f"  serial loop:      {t_serial:8.3f} s")
        print(f"  inline campaign:  {t_inline:8.3f} s "
              f"({overhead:+.1%} vs serial)")
        print(f"  2 spawn workers:  {t_parallel:8.3f} s "
              f"({t_serial / t_parallel:.2f}x speedup incl. warmup)")

    # the executor itself must stay in the noise at workers=0 (the 5 %
    # target leaves headroom for timer jitter on a loaded CI box)
    assert overhead < 0.05, f"inline campaign overhead {overhead:.1%}"
    assert inline.counts()["completed"] == N_SAMPLES
    # bit-identical results regardless of the execution strategy
    assert list(parallel.margins) == serial
