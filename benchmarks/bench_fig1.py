"""Fig. 1 — conceptual power timelines rendered from simulated numbers."""

from repro.experiments import run_fig1
from repro.pg.sequences import Architecture


def bench_fig1(benchmark, ctx, publish):
    result = benchmark.pedantic(
        run_fig1, kwargs={"ctx": ctx}, rounds=1, iterations=1,
    )
    publish("fig1", result.render())

    by_arch = {tl.architecture: tl for tl in result.timelines}
    nvpg = by_arch[Architecture.NVPG]
    nof = by_arch[Architecture.NOF]
    # The conceptual claims of Fig. 1, now quantified: NOF's average
    # power over the benchmark exceeds NVPG's (per-cycle store bursts),
    # and both timelines bottom out at the shutdown level while NVPG's
    # store spike is its single highest plateau.
    assert nof.average_power() > nvpg.average_power()
    assert max(nvpg.labels, key=lambda m: 0) is not None
    store_level = max(
        lvl for lvl, lab in zip(nvpg.levels, nvpg.labels)
        if lab.startswith("store")
    )
    assert store_level == max(nvpg.levels)
