"""Shared fixtures for the benchmark harness.

Each ``bench_figN.py`` regenerates one of the paper's tables/figures,
prints the same rows/series the paper reports (run with ``-s`` to see
them inline) and archives the rendered text under
``benchmarks/results/`` so a benchmark run leaves a durable record.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

_REPO = Path(__file__).resolve().parent.parent
os.environ.setdefault("REPRO_CACHE_DIR", str(_REPO / ".repro-cache"))

from repro.cells import PowerDomain                   # noqa: E402
from repro.experiments import ExperimentContext       # noqa: E402

RESULTS_DIR = Path(__file__).resolve().parent / "results"


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    return ExperimentContext()


@pytest.fixture(scope="session")
def domain() -> PowerDomain:
    """The paper's reference domain: N = 512 word lines x 32 bits."""
    return PowerDomain(n_wordlines=512, word_bits=32)


@pytest.fixture(scope="session")
def publish():
    """Print a rendered experiment table and archive it to results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)

    def _publish(name: str, text: str) -> None:
        print(f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{text}\n")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _publish
