"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper, but quantifications of trade-offs the paper
discusses in prose:

* store-duration vs required current margin ("a shorter store time needs
  a higher store current");
* the read:write repetition ratio ("10 times or more ... features remain
  unchanged");
* the V_CTRL leakage-control knob (what Fig. 3(a)'s optimum is worth).
"""

import numpy as np

from repro.cells import PowerDomain
from repro.devices.mtj import MTJ_TABLE1
from repro.experiments.report import render_table
from repro.pg.bet import break_even_time
from repro.pg.modes import Mode, OperatingConditions
from repro.pg.sequences import Architecture, BenchmarkSpec

DOMAIN = PowerDomain(512, 32)


def bench_store_time_current_tradeoff(benchmark, publish):
    """The CIMS switching-time law: required overdrive vs store window."""

    def compute():
        ic = MTJ_TABLE1.critical_current
        rows = []
        for window in (20e-9, 10e-9, 5e-9, 2e-9, 1e-9):
            # Smallest overdrive whose switching time fits the window.
            overdrives = np.linspace(1.01, 10.0, 2000)
            fits = [
                od for od in overdrives
                if MTJ_TABLE1.switching_time(od * ic) <= window
            ]
            rows.append((window * 1e9, fits[0] if fits else float("nan")))
        return rows

    rows = benchmark(compute)
    publish("ablation_store_time", render_table(
        ("store window [ns]", "required I/Ic"), rows,
        title="Ablation: store duration vs required current margin",
    ))
    margins = [m for _, m in rows]
    assert all(m2 > m1 for m1, m2 in zip(margins, margins[1:]))
    # The paper's 10 ns / 1.5x design point is consistent.
    assert margins[1] < 1.5


def bench_read_write_ratio(benchmark, ctx, publish):
    """E_cyc ratios vs the read:write repetition ratio."""

    def compute():
        rows = []
        for rho in (1.0, 3.0, 10.0, 30.0):
            model = ctx.energy_model(DOMAIN,
                                     cond=ctx.cond.with_(read_write_ratio=rho))
            nvpg = model.e_cyc(BenchmarkSpec(Architecture.NVPG, n_rw=1000,
                                             t_sl=100e-9))
            nof = model.e_cyc(BenchmarkSpec(Architecture.NOF, n_rw=1000,
                                            t_sl=100e-9))
            osr = model.e_cyc(BenchmarkSpec(Architecture.OSR, n_rw=1000,
                                            t_sl=100e-9))
            rows.append((rho, nvpg / osr, nof / osr))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    publish("ablation_rw_ratio", render_table(
        ("reads per write", "NVPG/OSR", "NOF/OSR"), rows,
        title="Ablation: read:write repetition ratio (n_RW = 1000)",
    ))
    for _, nvpg_ratio, nof_ratio in rows:
        assert nvpg_ratio < 1.1          # NVPG stays at parity
        assert nof_ratio > 1.3           # NOF stays clearly worse


def bench_vctrl_leakage_knob(benchmark, ctx, publish):
    """What the Fig. 3(a) V_CTRL optimum buys in BET terms."""
    from repro.analysis import operating_point
    from repro.characterize.testbench import (
        SUPPLY_SOURCES,
        build_cell_testbench,
    )

    def compute():
        rows = []
        for v_ctrl in (0.0, 0.04, 0.07, 0.15, 0.30):
            tb = build_cell_testbench(
                "nv", ctx.cond.with_(v_ctrl_normal=v_ctrl), DOMAIN,
            )
            tb.apply_mode(Mode.STANDBY)
            sol = operating_point(tb.circuit,
                                  ic=tb.initial_conditions(True))
            power = sum(tb.circuit[s].delivered_power(sol)
                        for s in SUPPLY_SOURCES)
            rows.append((v_ctrl, power))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    publish("ablation_vctrl", render_table(
        ("V_CTRL [V]", "static power [W]"), rows,
        title="Ablation: normal-mode static power vs V_CTRL",
    ))
    powers = dict(rows)
    # V_CTRL = 0 is clearly the worst point; the Table I choice of 0.07 V
    # sits on the flat bottom of the valley (within 5 % of the minimum).
    assert max(powers, key=powers.get) == 0.0
    assert powers[0.07] < powers[0.0] * 0.9
    assert powers[0.07] < min(powers.values()) * 1.05


def bench_temperature(benchmark, publish):
    """BET vs die temperature: leakage savings grow much faster than the
    (re-derived) store biases cost, so hot silicon breaks even sooner."""
    from repro.characterize.store import derive_store_biases
    from repro.devices.mtj import MTJ_TABLE1
    from repro.devices.ptm20 import NFET_20NM_HP, PFET_20NM_HP
    from repro.experiments import ExperimentContext

    def compute():
        rows = []
        for kelvin in (300.0, 350.0, 400.0):
            nfet = NFET_20NM_HP.at_temperature(kelvin)
            pfet = PFET_20NM_HP.at_temperature(kelvin)
            mtj = MTJ_TABLE1.at_temperature(kelvin)
            # Hot corners weaken the store drive: re-derive the biases
            # from the Fig. 3 methodology for each temperature.
            cond = derive_store_biases(
                OperatingConditions(), PowerDomain(32, 32),
                nfet=nfet, pfet=pfet, mtj_params=mtj,
            )
            ctx_t = ExperimentContext(cond=cond, nfet=nfet, pfet=pfet,
                                      mtj_params=mtj)
            model = ctx_t.energy_model(PowerDomain(128, 32))
            bet = break_even_time(model, Architecture.NVPG, n_rw=10,
                                  t_sl=100e-9).bet
            rows.append((kelvin, cond.v_sr, model.volatile.p_sleep, bet))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    publish("ablation_temperature", render_table(
        ("T [K]", "derived V_SR [V]", "6T sleep power [W]", "BET [s]"),
        rows,
        title="Ablation: BET vs die temperature (N = 128, n_RW = 10)",
    ))
    bets = [bet for *_rest, bet in rows]
    sleeps = [p for _, _, p, _ in rows]
    assert sleeps[2] > 10 * sleeps[0]   # leakage explodes when hot
    assert bets[2] < bets[0] / 2        # ... so gating pays off sooner


def bench_nfsw_bet_sensitivity(benchmark, ctx, publish):
    """BET sensitivity to the power-switch width (bigger switch = more
    shutdown leakage, slightly longer BET)."""

    def compute():
        rows = []
        for nfsw in (2, 7, 14):
            model = ctx.energy_model(DOMAIN,
                                     cond=ctx.cond.with_(nfsw=nfsw))
            bet = break_even_time(model, Architecture.NVPG, n_rw=10,
                                  t_sl=100e-9).bet
            rows.append((nfsw, bet))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    publish("ablation_nfsw", render_table(
        ("N_FSW", "BET [s]"), rows,
        title="Ablation: BET vs power-switch fin number (n_RW = 10)",
    ))
    bets = [b for _, b in rows]
    assert all(b > 0 for b in bets)
