"""Fig. 8 — E_cyc vs t_SD and the break-even-time crossover."""

import numpy as np

from repro.cells import PowerDomain
from repro.experiments import run_fig8
from repro.experiments.report import series_block
from repro.pg.sequences import Architecture


def bench_fig8(benchmark, ctx, publish):
    result = benchmark.pedantic(
        run_fig8, kwargs={"ctx": ctx, "domain": PowerDomain(512, 32)},
        rounds=1, iterations=1,
    )
    blocks = [
        series_block(
            f"E_cyc/E_cyc(OSR) vs t_SD [{c.architecture.value}, "
            f"n_RW={c.n_rw}]",
            c.t_sd[::6], c.e_cyc_normalised[::6], "s", "",
        )
        for c in result.curves
    ]
    publish("fig8", result.render() + "\n\n" + "\n\n".join(blocks))

    for curve in result.curves:
        # Normalised curves start above 1 and decay (shutdown saves).
        assert curve.e_cyc_normalised[0] > 1.0
        assert curve.e_cyc_normalised[-1] < curve.e_cyc_normalised[0]
        if curve.bet_numeric is not None:
            assert np.isclose(curve.bet_numeric,
                              curve.bet_closed_form.bet, rtol=0.05)
        if curve.architecture is Architecture.NVPG:
            # NVPG BET ~ several 10 us (paper headline).
            assert 1e-5 < curve.bet_closed_form.bet < 1e-3
