"""Fig. 3 — leakage vs V_CTRL and store-current design curves."""

from repro.cells import PowerDomain
from repro.experiments import run_fig3


def bench_fig3(benchmark, ctx, publish):
    result = benchmark.pedantic(
        run_fig3,
        kwargs={"cond": ctx.cond, "domain": PowerDomain(512, 32),
                "points": 31},
        rounds=1, iterations=1,
    )
    publish("fig3", result.render())

    # Shape assertions matching the paper's panels.
    leak = result.leakage
    assert leak.i_leak_nv_min < leak.i_leak_nv[0]       # interior minimum
    assert 0.02 <= leak.v_ctrl_optimal <= 0.15          # ~0.07 V
    assert result.store_h.bias_at_margin is not None    # 1.5 x Ic reachable
    assert result.store_l.bias_at_margin is not None
